//! `ddm` — command-line driver for the dead-data-member detector.
//!
//! Run `ddm --help` for the flag list; the usage text is generated from
//! the single [`FLAGS`] table below, so the help, the docs, and the
//! parser cannot drift apart.

use dead_data_members::analysis::{
    eliminate_with, explain, render_analysis, serve, AnalysisConfig, AnalysisPipeline, Engine,
    ProjectPipeline, ServeOptions, SizeofPolicy,
};
use dead_data_members::callgraph::Algorithm;
use dead_data_members::dynamic::{profile_trace, Interpreter, RunConfig};
use dead_data_members::telemetry::{EventClass, Telemetry};
use std::path::PathBuf;
use std::process::ExitCode;

/// The flag table: `(flag, value placeholder, help)`. Every flag the
/// parser accepts has exactly one row here, and the `--help` text is
/// rendered from it.
const FLAGS: &[(&str, &str, &str)] = &[
    (
        "--callgraph",
        "<rta|pta|cha|everything>",
        "call-graph builder (default rta)",
    ),
    (
        "--engine",
        "<summary|walk>",
        "analysis engine: walk-once summaries (default) or the re-walking reference",
    ),
    (
        "--jobs",
        "<N>",
        "shard the liveness scan across N worker threads (deterministic; default 1)",
    ),
    (
        "--library",
        "<Class,Class,...>",
        "classes whose source is unavailable (§3.3)",
    ),
    (
        "--sizeof-conservative",
        "",
        "treat sizeof conservatively (§3.2; default: ignore)",
    ),
    (
        "--unsafe-downcasts",
        "",
        "treat down-casts as unsafe (default: assume verified)",
    ),
    ("--run", "", "execute the program and print its output"),
    (
        "--profile",
        "",
        "execute and print the Table-2 style heap profile",
    ),
    (
        "--eliminate",
        "<out.cpp>",
        "write transformed source with dead members removed",
    ),
    ("--layout", "", "print the object layout of every class"),
    (
        "--stats",
        "",
        "print phase spans, deterministic counters, and execution stats to stderr",
    ),
    (
        "--trace-out",
        "<trace.json>",
        "write a Chrome trace-event JSON of the run (one lane per worker)",
    ),
    (
        "--stats-json",
        "<stats.json>",
        "write the machine-readable twin of --stats (schema ddm-stats/1)",
    ),
    (
        "--log-out",
        "<log.ndjson>",
        "write the flight-recorder event log as NDJSON (one decision per line)",
    ),
    (
        "--log-filter",
        "<det|obs|all>",
        "event classes --log-out writes (default all; det lines are byte-stable)",
    ),
    (
        "--metrics-out",
        "<metrics.json>",
        "write the metrics registry (schema ddm-metrics/1, pow2 histogram buckets)",
    ),
    (
        "--explain",
        "<Class::member>",
        "print why the member is live/dead/unclassifiable instead of the report",
    ),
    (
        "--cache-dir",
        "<dir>",
        "persist per-TU summary modules; warm runs re-analyse only changed files",
    ),
    ("--help", "", "show this help"),
];

/// The usage text, rendered from [`FLAGS`].
fn usage() -> String {
    let mut out = String::from(
        "usage: ddm <file.cpp> [more.cpp ...] [options]\n       \
         ddm serve [--cache-dir <dir>] [--jobs <N>] [options]\n\n\
         serve mode reads line-delimited JSON requests on stdin (analyze, notify,\n\
         report, explain, stats, epoch, shutdown) and answers one line per request;\n\
         see the README's \"Server mode\" section for the protocol.\n\noptions:\n",
    );
    let width = FLAGS
        .iter()
        .map(|(name, arg, _)| name.len() + if arg.is_empty() { 0 } else { arg.len() + 1 })
        .max()
        .unwrap_or(0);
    for (name, arg, help) in FLAGS {
        let left = if arg.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {arg}")
        };
        out.push_str(&format!("  {left:<width$}   {help}\n"));
    }
    out
}

struct Options {
    /// `ddm serve`: long-running daemon mode (no positional files).
    serve: bool,
    files: Vec<String>,
    algorithm: Algorithm,
    engine: Engine,
    jobs: usize,
    library: Vec<String>,
    sizeof_conservative: bool,
    unsafe_downcasts: bool,
    run: bool,
    profile: bool,
    layout: bool,
    eliminate_to: Option<String>,
    stats: bool,
    trace_out: Option<String>,
    stats_json: Option<String>,
    log_out: Option<String>,
    /// `None` = both classes; `Some(class)` = that class only.
    log_filter: Option<EventClass>,
    metrics_out: Option<String>,
    explain_spec: Option<String>,
    cache_dir: Option<String>,
}

/// Consumes the value of a value-taking flag. A following argument that
/// looks like another flag is *not* swallowed as the value — so
/// `ddm a.cpp --trace-out --stats` fails loudly instead of writing a
/// trace file literally named `--stats`.
fn take_value(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with('-') => Ok(v),
        _ => Err(format!("{flag} needs a value")),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        serve: false,
        files: Vec::new(),
        algorithm: Algorithm::Rta,
        engine: Engine::default(),
        jobs: 1,
        library: Vec::new(),
        sizeof_conservative: false,
        unsafe_downcasts: false,
        run: false,
        profile: false,
        layout: false,
        eliminate_to: None,
        stats: false,
        trace_out: None,
        stats_json: None,
        log_out: None,
        log_filter: None,
        metrics_out: None,
        explain_spec: None,
        cache_dir: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--callgraph" => {
                let v = take_value(&mut args, "--callgraph")?;
                opts.algorithm = match v.as_str() {
                    "rta" => Algorithm::Rta,
                    "pta" => Algorithm::Pta,
                    "cha" => Algorithm::Cha,
                    "everything" => Algorithm::Everything,
                    other => return Err(format!("unknown call-graph builder `{other}`")),
                };
            }
            "--engine" => {
                let v = take_value(&mut args, "--engine")?;
                opts.engine = match v.as_str() {
                    "summary" => Engine::Summary,
                    "walk" => Engine::Walk,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--jobs" => {
                let v = take_value(&mut args, "--jobs")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs needs a positive integer, got `{v}`"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--library" => {
                let v = take_value(&mut args, "--library")?;
                opts.library
                    .extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--sizeof-conservative" => opts.sizeof_conservative = true,
            "--unsafe-downcasts" => opts.unsafe_downcasts = true,
            "--run" => opts.run = true,
            "--profile" => opts.profile = true,
            "--layout" => opts.layout = true,
            "--eliminate" => {
                opts.eliminate_to = Some(take_value(&mut args, "--eliminate")?);
            }
            "--stats" => opts.stats = true,
            "--trace-out" => {
                opts.trace_out = Some(take_value(&mut args, "--trace-out")?);
            }
            "--stats-json" => {
                opts.stats_json = Some(take_value(&mut args, "--stats-json")?);
            }
            "--log-out" => {
                opts.log_out = Some(take_value(&mut args, "--log-out")?);
            }
            "--log-filter" => {
                let v = take_value(&mut args, "--log-filter")?;
                opts.log_filter = match v.as_str() {
                    "det" => Some(EventClass::Deterministic),
                    "obs" => Some(EventClass::Observational),
                    "all" => None,
                    other => {
                        return Err(format!(
                            "unknown event class `{other}` (valid classes: det, obs, all)"
                        ))
                    }
                };
            }
            "--metrics-out" => {
                opts.metrics_out = Some(take_value(&mut args, "--metrics-out")?);
            }
            "--explain" => {
                opts.explain_spec = Some(take_value(&mut args, "--explain")?);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(take_value(&mut args, "--cache-dir")?);
            }
            "--help" | "-h" => return Err("help".to_string()),
            "serve" if !opts.serve && opts.files.is_empty() => opts.serve = true,
            other if !other.starts_with('-') => {
                opts.files.push(other.to_string());
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if opts.serve {
        if !opts.files.is_empty() {
            return Err(format!(
                "serve mode takes no input files (got `{}`); send them in an analyze request",
                opts.files[0]
            ));
        }
        for (flag, on) in [
            ("--run", opts.run),
            ("--profile", opts.profile),
            ("--eliminate", opts.eliminate_to.is_some()),
            ("--explain", opts.explain_spec.is_some()),
            ("--layout", opts.layout),
            ("--stats", opts.stats),
            ("--stats-json", opts.stats_json.is_some()),
            ("--trace-out", opts.trace_out.is_some()),
            ("--metrics-out", opts.metrics_out.is_some()),
        ] {
            if on {
                return Err(format!(
                    "{flag} is a one-shot flag; in serve mode use the protocol instead"
                ));
            }
        }
        return Ok(opts);
    }
    if opts.files.is_empty() {
        return Err("no input file given".to_string());
    }
    if opts.files.len() > 1 || opts.cache_dir.is_some() {
        for (flag, on) in [
            ("--run", opts.run),
            ("--profile", opts.profile),
            ("--eliminate", opts.eliminate_to.is_some()),
        ] {
            if on {
                return Err(format!(
                    "{flag} needs single-file mode (one input, no --cache-dir)"
                ));
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.serve {
        return run_serve(&opts);
    }

    // Telemetry is only collected when something will consume it; the
    // disabled handle adds no allocation to the analysis hot paths. The
    // flight recorder and the metrics registry are further gated on
    // their own consumers (the trace exporter renders recorded events as
    // instants, so --trace-out also turns the recorder on).
    let record_events = opts.log_out.is_some() || opts.trace_out.is_some();
    let record_metrics = opts.metrics_out.is_some();
    let telemetry = if opts.stats
        || opts.stats_json.is_some()
        || opts.trace_out.is_some()
        || record_events
        || record_metrics
    {
        Telemetry::configured(record_events, record_metrics)
    } else {
        Telemetry::disabled()
    };

    let code = run(&opts, &telemetry);

    // The trace exporter renders recorded events as instants, so it must
    // render before the log drain clears the recorder. The drain folds
    // any overflow into the events_dropped stat (and ends the NDJSON
    // with a log_truncated record when events were lost); the sync does
    // the same folding when there is no log sink, so every stats
    // rendering below sees the final drop count.
    let trace_payload = opts.trace_out.as_ref().map(|_| telemetry.chrome_trace_json());
    let log_payload = opts
        .log_out
        .as_ref()
        .map(|_| telemetry.drain_events_ndjson(opts.log_filter));
    telemetry.sync_events_dropped();

    if opts.stats {
        eprint!("{}", telemetry.render_stats());
    }
    for (path, contents) in [
        (opts.trace_out.as_ref(), trace_payload),
        (opts.stats_json.as_ref(), opts.stats_json.as_ref().map(|_| telemetry.render_stats_json())),
        (opts.log_out.as_ref(), log_payload),
        (opts.metrics_out.as_ref(), opts.metrics_out.as_ref().map(|_| telemetry.metrics_json())),
    ] {
        let (Some(path), Some(contents)) = (path, contents) else {
            continue;
        };
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

/// `ddm serve`: hand stdin/stdout to the daemon loop. Each epoch builds
/// with its own telemetry handle inside [`serve`], so no handle is
/// created here; `--log-out` (drained per epoch) and `--log-filter` are
/// forwarded through [`ServeOptions`].
fn run_serve(opts: &Options) -> ExitCode {
    let serve_opts = ServeOptions {
        config: analysis_config(opts),
        algorithm: opts.algorithm,
        jobs: opts.jobs,
        engine: opts.engine,
        cache_dir: opts.cache_dir.as_ref().map(PathBuf::from),
        log_out: opts.log_out.as_ref().map(PathBuf::from),
        log_filter: opts.log_filter,
    };
    match serve(&serve_opts, std::io::stdin().lock(), std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn analysis_config(opts: &Options) -> AnalysisConfig {
    AnalysisConfig {
        sizeof_policy: if opts.sizeof_conservative {
            SizeofPolicy::Conservative
        } else {
            SizeofPolicy::Ignore
        },
        assume_safe_downcasts: !opts.unsafe_downcasts,
        library_classes: opts.library.iter().cloned().collect(),
    }
}

/// Multi-file (or cached) mode: the batch front end with the persistent
/// summary cache.
fn run_project(opts: &Options, telemetry: &Telemetry) -> ExitCode {
    let mut inputs = Vec::with_capacity(opts.files.len());
    for file in &opts.files {
        match std::fs::read_to_string(file) {
            Ok(s) => inputs.push((file.clone(), s)),
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let project = match ProjectPipeline::run(
        &inputs,
        analysis_config(opts),
        opts.algorithm,
        opts.jobs,
        opts.engine,
        opts.cache_dir.as_deref().map(std::path::Path::new),
        telemetry,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(spec) = &opts.explain_spec {
        match explain(project.program(), project.callgraph(), project.liveness(), spec) {
            Ok(text) => {
                print!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let report_span = telemetry.span(dead_data_members::telemetry::LANE_MAIN, || {
        "report".to_string()
    });
    let report = project.report();
    print!(
        "{}",
        render_analysis(
            project.program(),
            project.callgraph(),
            project.liveness(),
            &report,
            opts.layout,
        )
    );
    drop(report_span);

    ExitCode::SUCCESS
}

fn run(opts: &Options, telemetry: &Telemetry) -> ExitCode {
    if opts.files.len() > 1 || opts.cache_dir.is_some() {
        return run_project(opts, telemetry);
    }
    let file = &opts.files[0];
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };

    let pipeline = match AnalysisPipeline::with_config_telemetry(
        &source,
        analysis_config(opts),
        opts.algorithm,
        opts.jobs,
        opts.engine,
        telemetry,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(spec) = &opts.explain_spec {
        // Provenance instead of the report.
        match explain(pipeline.program(), pipeline.callgraph(), pipeline.liveness(), spec) {
            Ok(text) => {
                print!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let report_span = telemetry.span(dead_data_members::telemetry::LANE_MAIN, || {
        "report".to_string()
    });
    let report = pipeline.report();
    print!(
        "{}",
        render_analysis(
            pipeline.program(),
            pipeline.callgraph(),
            pipeline.liveness(),
            &report,
            opts.layout,
        )
    );
    drop(report_span);

    if opts.run || opts.profile {
        match Interpreter::new(pipeline.program()).run(&RunConfig::default()) {
            Ok(exec) => {
                if opts.run {
                    print!("{}", exec.output);
                    println!("[exit code {}]", exec.exit_code);
                }
                if opts.profile {
                    let p = profile_trace(pipeline.program(), &exec.trace, pipeline.liveness());
                    println!("objects allocated:        {}", p.objects_allocated);
                    println!("object space:             {} bytes", p.object_space);
                    println!(
                        "dead data member space:   {} bytes ({:.1}%)",
                        p.dead_member_space,
                        p.dead_space_percentage()
                    );
                    println!("high water mark:          {} bytes", p.high_water_mark);
                    println!(
                        "high water mark w/o dead: {} bytes ({:.1}% reduction)",
                        p.high_water_mark_without_dead,
                        p.high_water_mark_reduction()
                    );
                }
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(out) = &opts.eliminate_to {
        let result = eliminate_with(&pipeline, telemetry);
        if let Err(e) = std::fs::write(out, &result.source) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "eliminated {} dead member(s) -> {out}",
            result.removed.len()
        );
        for name in &result.removed {
            println!("  removed {name}");
        }
        for (name, why) in &result.kept {
            println!("  kept    {name} ({why})");
        }
    }

    ExitCode::SUCCESS
}
