//! `ddm` — command-line driver for the dead-data-member detector.
//!
//! Run `ddm --help` for the flag list; the usage text is generated from
//! the single [`FLAGS`] table below, so the help, the docs, and the
//! parser cannot drift apart.

use dead_data_members::analysis::{
    eliminate, explain, AnalysisConfig, AnalysisPipeline, Engine, SizeofPolicy,
};
use dead_data_members::callgraph::Algorithm;
use dead_data_members::dynamic::{profile_trace, Interpreter, RunConfig};
use dead_data_members::telemetry::Telemetry;
use std::process::ExitCode;

/// The flag table: `(flag, value placeholder, help)`. Every flag the
/// parser accepts has exactly one row here, and the `--help` text is
/// rendered from it.
const FLAGS: &[(&str, &str, &str)] = &[
    (
        "--callgraph",
        "<rta|pta|cha|everything>",
        "call-graph builder (default rta)",
    ),
    (
        "--engine",
        "<summary|walk>",
        "analysis engine: walk-once summaries (default) or the re-walking reference",
    ),
    (
        "--jobs",
        "<N>",
        "shard the liveness scan across N worker threads (deterministic; default 1)",
    ),
    (
        "--library",
        "<Class,Class,...>",
        "classes whose source is unavailable (§3.3)",
    ),
    (
        "--sizeof-conservative",
        "",
        "treat sizeof conservatively (§3.2; default: ignore)",
    ),
    (
        "--unsafe-downcasts",
        "",
        "treat down-casts as unsafe (default: assume verified)",
    ),
    ("--run", "", "execute the program and print its output"),
    (
        "--profile",
        "",
        "execute and print the Table-2 style heap profile",
    ),
    (
        "--eliminate",
        "<out.cpp>",
        "write transformed source with dead members removed",
    ),
    ("--layout", "", "print the object layout of every class"),
    (
        "--stats",
        "",
        "print phase spans, deterministic counters, and execution stats to stderr",
    ),
    (
        "--trace-out",
        "<trace.json>",
        "write a Chrome trace-event JSON of the run (one lane per worker)",
    ),
    (
        "--explain",
        "<Class::member>",
        "print why the member is live/dead/unclassifiable instead of the report",
    ),
    ("--help", "", "show this help"),
];

/// The usage text, rendered from [`FLAGS`].
fn usage() -> String {
    let mut out = String::from("usage: ddm <file.cpp> [options]\n\noptions:\n");
    let width = FLAGS
        .iter()
        .map(|(name, arg, _)| name.len() + if arg.is_empty() { 0 } else { arg.len() + 1 })
        .max()
        .unwrap_or(0);
    for (name, arg, help) in FLAGS {
        let left = if arg.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {arg}")
        };
        out.push_str(&format!("  {left:<width$}   {help}\n"));
    }
    out
}

struct Options {
    file: String,
    algorithm: Algorithm,
    engine: Engine,
    jobs: usize,
    library: Vec<String>,
    sizeof_conservative: bool,
    unsafe_downcasts: bool,
    run: bool,
    profile: bool,
    layout: bool,
    eliminate_to: Option<String>,
    stats: bool,
    trace_out: Option<String>,
    explain_spec: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        algorithm: Algorithm::Rta,
        engine: Engine::default(),
        jobs: 1,
        library: Vec::new(),
        sizeof_conservative: false,
        unsafe_downcasts: false,
        run: false,
        profile: false,
        layout: false,
        eliminate_to: None,
        stats: false,
        trace_out: None,
        explain_spec: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--callgraph" => {
                let v = args.next().ok_or("--callgraph needs a value")?;
                opts.algorithm = match v.as_str() {
                    "rta" => Algorithm::Rta,
                    "pta" => Algorithm::Pta,
                    "cha" => Algorithm::Cha,
                    "everything" => Algorithm::Everything,
                    other => return Err(format!("unknown call-graph builder `{other}`")),
                };
            }
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                opts.engine = match v.as_str() {
                    "summary" => Engine::Summary,
                    "walk" => Engine::Walk,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs needs a positive integer, got `{v}`"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--library" => {
                let v = args.next().ok_or("--library needs a value")?;
                opts.library
                    .extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--sizeof-conservative" => opts.sizeof_conservative = true,
            "--unsafe-downcasts" => opts.unsafe_downcasts = true,
            "--run" => opts.run = true,
            "--profile" => opts.profile = true,
            "--layout" => opts.layout = true,
            "--eliminate" => {
                opts.eliminate_to = Some(args.next().ok_or("--eliminate needs a path")?);
            }
            "--stats" => opts.stats = true,
            "--trace-out" => {
                opts.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--explain" => {
                opts.explain_spec =
                    Some(args.next().ok_or("--explain needs a Class::member spec")?);
            }
            "--help" | "-h" => return Err("help".to_string()),
            other if opts.file.is_empty() && !other.starts_with('-') => {
                opts.file = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err("no input file given".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    // Telemetry is only collected when something will consume it; the
    // disabled handle adds no allocation to the analysis hot paths.
    let telemetry = if opts.stats || opts.trace_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    let code = run(&opts, &telemetry);

    if opts.stats {
        eprint!("{}", telemetry.render_stats());
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, telemetry.chrome_trace_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

fn run(opts: &Options, telemetry: &Telemetry) -> ExitCode {
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };

    let config = AnalysisConfig {
        sizeof_policy: if opts.sizeof_conservative {
            SizeofPolicy::Conservative
        } else {
            SizeofPolicy::Ignore
        },
        assume_safe_downcasts: !opts.unsafe_downcasts,
        library_classes: opts.library.iter().cloned().collect(),
    };
    let pipeline = match AnalysisPipeline::with_config_telemetry(
        &source,
        config,
        opts.algorithm,
        opts.jobs,
        opts.engine,
        telemetry,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(spec) = &opts.explain_spec {
        // Provenance instead of the report.
        match explain(pipeline.program(), pipeline.callgraph(), pipeline.liveness(), spec) {
            Ok(text) => {
                print!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let report_span = telemetry.span(dead_data_members::telemetry::LANE_MAIN, || {
        "report".to_string()
    });
    let report = pipeline.report();
    println!("{report}");
    println!(
        "call graph ({}): {} reachable functions, {} edges",
        pipeline.callgraph().algorithm(),
        pipeline.callgraph().reachable_count(),
        pipeline.callgraph().edge_count()
    );
    drop(report_span);

    if opts.layout {
        use dead_data_members::hierarchy::LayoutEngine;
        let layouts = LayoutEngine::new(pipeline.program());
        for (cid, class) in pipeline.program().classes() {
            let layout = layouts.layout(cid);
            println!(
                "layout {} : size {} align {}{}{}",
                class.name,
                layout.size,
                layout.align,
                if layout.has_vptr { ", vptr" } else { "" },
                if layout.overhead > 0 {
                    format!(", {} overhead bytes", layout.overhead)
                } else {
                    String::new()
                }
            );
            for slot in &layout.fields {
                let owner = &pipeline.program().class(slot.member.class).name;
                let member = &pipeline.program().class(slot.member.class).members
                    [slot.member.index as usize];
                let marker = if pipeline.liveness().is_dead(slot.member) {
                    " [DEAD]"
                } else {
                    ""
                };
                println!(
                    "    +{:<4} {:<4} {}::{}{}",
                    slot.offset, slot.size, owner, member.name, marker
                );
            }
        }
    }

    if opts.run || opts.profile {
        match Interpreter::new(pipeline.program()).run(&RunConfig::default()) {
            Ok(exec) => {
                if opts.run {
                    print!("{}", exec.output);
                    println!("[exit code {}]", exec.exit_code);
                }
                if opts.profile {
                    let p = profile_trace(pipeline.program(), &exec.trace, pipeline.liveness());
                    println!("objects allocated:        {}", p.objects_allocated);
                    println!("object space:             {} bytes", p.object_space);
                    println!(
                        "dead data member space:   {} bytes ({:.1}%)",
                        p.dead_member_space,
                        p.dead_space_percentage()
                    );
                    println!("high water mark:          {} bytes", p.high_water_mark);
                    println!(
                        "high water mark w/o dead: {} bytes ({:.1}% reduction)",
                        p.high_water_mark_without_dead,
                        p.high_water_mark_reduction()
                    );
                }
            }
            Err(e) => {
                eprintln!("runtime error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(out) = &opts.eliminate_to {
        let result = eliminate(&pipeline);
        if let Err(e) = std::fs::write(out, &result.source) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "eliminated {} dead member(s) -> {out}",
            result.removed.len()
        );
        for name in &result.removed {
            println!("  removed {name}");
        }
        for (name, why) in &result.kept {
            println!("  kept    {name} ({why})");
        }
    }

    ExitCode::SUCCESS
}
