//! # dead-data-members
//!
//! A whole-program analysis that detects *dead data members* in C++
//! applications — a from-scratch Rust reproduction of Peter F. Sweeney and
//! Frank Tip, *A Study of Dead Data Members in C++ Applications*
//! (PLDI 1998).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`cppfront`] — lexer, parser and AST for the analysed C++ subset;
//! * [`hierarchy`] — resolved program model, member lookup, object layout;
//! * [`callgraph`] — Everything/CHA/RTA call-graph construction;
//! * [`analysis`] — the paper's dead-data-member detection algorithm;
//! * [`dynamic`] — interpreter and heap profiler for the dynamic
//!   measurements (object space, dead-member space, high-water marks);
//! * [`benchmarks`] — the benchmark suite reproducing the paper's Table 1;
//! * [`telemetry`] — phase spans, deterministic counters, Chrome-trace
//!   export for observing analysis runs.
//!
//! # Examples
//!
//! ```
//! use dead_data_members::prelude::*;
//!
//! let source = r#"
//!     class Point {
//!     public:
//!         int x;
//!         int y;
//!         int tag;              // written, never read: dead
//!         Point(int px, int py) : x(px), y(py) { tag = 0; }
//!         int sum() { return x + y; }
//!     };
//!     int main() { Point p(3, 4); return p.sum(); }
//! "#;
//! let analysis = AnalysisPipeline::from_source(source)?;
//! let report = analysis.report();
//! assert_eq!(report.dead_member_names(), vec!["Point::tag"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ddm_benchmarks as benchmarks;
pub use ddm_callgraph as callgraph;
pub use ddm_core as analysis;
pub use ddm_cppfront as cppfront;
pub use ddm_dynamic as dynamic;
pub use ddm_hierarchy as hierarchy;
pub use ddm_telemetry as telemetry;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
    pub use ddm_core::{
        explain, AnalysisConfig, AnalysisPipeline, DeadMemberAnalysis, Engine, Liveness, Origin,
        Report, SizeofPolicy,
    };
    pub use ddm_cppfront::{parse, TranslationUnit};
    pub use ddm_dynamic::{HeapProfile, Interpreter, RunConfig};
    pub use ddm_hierarchy::{
        body_walk_count, ClassId, FuncId, LayoutEngine, MemberLookup, MemberRef, Program,
        ProgramSummary,
    };
    pub use ddm_telemetry::{Counters, ExecStats, Telemetry};
}
