//! Parse-time diagnostics.

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// A lexical or syntactic error with the source span where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    kind: ParseErrorKind,
    span: Span,
}

impl ParseError {
    /// Creates an error of `kind` at `span`.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }

    /// The specific failure.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// Where in the source the failure occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with `file:line:col` using a source map.
    pub fn render(&self, map: &SourceMap) -> String {
        let pos = map.lookup(self.span.lo);
        format!("{}:{}: error: {}", map.name(), pos, self.kind)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl Error for ParseError {}

/// The specific kinds of parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A `/* ... ` comment that never closes.
    UnterminatedComment,
    /// A string or character literal that never closes.
    UnterminatedLiteral,
    /// An escape sequence the lexer does not recognise.
    InvalidEscape(char),
    /// A numeric literal that does not fit or cannot be parsed.
    InvalidNumber(String),
    /// A character the lexer does not recognise at all.
    UnexpectedChar(char),
    /// The parser expected one construct and found another.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it actually found.
        found: String,
    },
    /// A name was redefined (e.g. two classes with the same name).
    Duplicate(String),
    /// A construct the subset deliberately does not support.
    Unsupported(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ParseErrorKind::UnterminatedLiteral => write!(f, "unterminated literal"),
            ParseErrorKind::InvalidEscape(c) => write!(f, "invalid escape sequence `\\{c}`"),
            ParseErrorKind::InvalidNumber(s) => write!(f, "invalid numeric literal `{s}`"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::Duplicate(name) => write!(f, "duplicate definition of `{name}`"),
            ParseErrorKind::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_location_and_message() {
        let map = SourceMap::new("f.cpp", "int x\nbad");
        let err = ParseError::new(ParseErrorKind::UnexpectedChar('$'), Span::new(6, 7));
        assert_eq!(
            err.render(&map),
            "f.cpp:2:1: error: unexpected character `$`"
        );
    }

    #[test]
    fn display_mentions_span() {
        let err = ParseError::new(ParseErrorKind::UnterminatedComment, Span::new(3, 5));
        let text = err.to_string();
        assert!(text.contains("unterminated block comment"));
        assert!(text.contains("3..5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ParseError::new(
            ParseErrorKind::Duplicate("A".into()),
            Span::dummy(),
        ));
    }
}
