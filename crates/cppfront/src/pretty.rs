//! Pretty-printer: renders an AST back to parseable source.
//!
//! Used by round-trip tests (`parse(print(parse(s)))` must equal
//! `parse(s)`) and by the random program generator to emit its output.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole translation unit as compilable subset source.
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for e in &tu.enums {
        p.print_enum(e);
    }
    for c in &tu.classes {
        p.print_class(c);
    }
    for g in &tu.globals {
        p.print_global(g);
    }
    for f in &tu.functions {
        p.print_function(f, None);
    }
    p.out
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(e);
    p.out
}

/// Renders a single statement.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(s);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn print_enum(&mut self, e: &EnumDecl) {
        let variants = e
            .variants
            .iter()
            .map(|(n, v)| format!("{n} = {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        self.line(&format!("enum {} {{ {} }};", e.name, variants));
    }

    fn print_class(&mut self, c: &ClassDecl) {
        let mut head = format!("{} {}", c.kind, c.name);
        if !c.bases.is_empty() {
            head.push_str(" : ");
            let bases = c
                .bases
                .iter()
                .map(|b| {
                    let v = if b.is_virtual { "virtual " } else { "" };
                    format!("{}{} {}", v, b.access, b.name)
                })
                .collect::<Vec<_>>()
                .join(", ");
            head.push_str(&bases);
        }
        head.push_str(" {");
        self.line(&head);
        self.indent += 1;
        let mut current = match c.kind {
            ClassKind::Class => Access::Private,
            _ => Access::Public,
        };
        for m in &c.data_members {
            if m.access != current {
                self.indent -= 1;
                self.line(&format!("{}:", m.access));
                self.indent += 1;
                current = m.access;
            }
            self.line(&format!("{};", declare(&m.ty, &m.name)));
        }
        if !c.methods.is_empty() && current != Access::Public {
            self.indent -= 1;
            self.line("public:");
            self.indent += 1;
        }
        for m in &c.methods {
            self.print_function(m, Some(c));
        }
        self.indent -= 1;
        self.line("};");
    }

    fn print_global(&mut self, g: &GlobalDecl) {
        match &g.init {
            Some(init) => {
                let init = print_expr(init);
                self.line(&format!("{} = {};", declare(&g.ty, &g.name), init))
            }
            None => self.line(&format!("{};", declare(&g.ty, &g.name))),
        }
    }

    fn print_function(&mut self, f: &FunctionDecl, _class: Option<&ClassDecl>) {
        let params = f
            .params
            .iter()
            .map(|p| declare(&p.ty, &p.name))
            .collect::<Vec<_>>()
            .join(", ");
        let mut head = match f.kind {
            FunctionKind::Constructor => format!("{}({params})", f.name),
            FunctionKind::Destructor => format!("{}()", f.name),
            _ => {
                let v = if f.is_virtual { "virtual " } else { "" };
                format!("{v}{} {}({params})", f.ret, f.name)
            }
        };
        if f.kind == FunctionKind::Destructor && f.is_virtual {
            head = format!("virtual {head}");
        }
        if !f.inits.is_empty() {
            let inits = f
                .inits
                .iter()
                .map(|i| {
                    let args = i.args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                    format!("{}({args})", i.name)
                })
                .collect::<Vec<_>>()
                .join(", ");
            head.push_str(&format!(" : {inits}"));
        }
        match &f.body {
            None => {
                if f.is_virtual && f.kind == FunctionKind::Method {
                    self.line(&format!("{head} = 0;"));
                } else {
                    self.line(&format!("{head};"));
                }
            }
            Some(body) => {
                self.line(&format!("{head} {{"));
                self.indent += 1;
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                let text = print_expr(e);
                self.line(&format!("{text};"));
            }
            StmtKind::Decl(d) => self.local_decl(d),
            StmtKind::If { cond, then, els } => {
                let c = print_expr(cond);
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.body(then);
                self.indent -= 1;
                match els {
                    Some(e) => {
                        self.line("} else {");
                        self.indent += 1;
                        self.body(e);
                        self.indent -= 1;
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            StmtKind::While { cond, body } => {
                let c = print_expr(cond);
                self.line(&format!("while ({c}) {{"));
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.line("do {");
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                let c = print_expr(cond);
                self.line(&format!("}} while ({c});"));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut head = String::from("for (");
                match init {
                    Some(i) => {
                        let mut ip = Printer::default();
                        ip.stmt(i);
                        head.push_str(ip.out.trim_end_matches('\n').trim());
                    }
                    None => head.push(';'),
                }
                head.push(' ');
                if let Some(c) = cond {
                    head.push_str(&print_expr(c));
                }
                head.push_str("; ");
                if let Some(st) = step {
                    head.push_str(&print_expr(st));
                }
                head.push_str(") {");
                self.line(&head);
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Switch { scrutinee, arms } => {
                let sc = print_expr(scrutinee);
                self.line(&format!("switch ({sc}) {{"));
                self.indent += 1;
                for arm in arms {
                    self.indent -= 1;
                    match &arm.value {
                        Some(v) => {
                            let vv = print_expr(v);
                            self.line(&format!("case {vv}:"));
                        }
                        None => self.line("default:"),
                    }
                    self.indent += 1;
                    for st in &arm.stmts {
                        self.stmt(st);
                    }
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => {
                let text = print_expr(e);
                self.line(&format!("return {text};"));
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Block(b) => {
                self.line("{");
                self.indent += 1;
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Empty => self.line(";"),
        }
    }

    /// Prints a loop/branch body; a `Block` statement is flattened so the
    /// printer is a fixpoint (re-printing a reparse yields identical text).
    fn body(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => {
                for inner in &b.stmts {
                    self.stmt(inner);
                }
            }
            _ => self.stmt(s),
        }
    }

    fn local_decl(&mut self, d: &LocalDecl) {
        let head = declare(&d.ty, &d.name);
        match &d.init {
            LocalInit::Default => self.line(&format!("{head};")),
            LocalInit::Expr(e) => {
                let text = print_expr(e);
                self.line(&format!("{head} = {text};"));
            }
            LocalInit::Ctor(args) => {
                let args = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                self.line(&format!("{head}({args});"));
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::BoolLit(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::CharLit(c) => {
                let escaped = match c {
                    '\n' => "\\n".to_string(),
                    '\t' => "\\t".to_string(),
                    '\r' => "\\r".to_string(),
                    '\0' => "\\0".to_string(),
                    '\'' => "\\'".to_string(),
                    '\\' => "\\\\".to_string(),
                    other => other.to_string(),
                };
                let _ = write!(self.out, "'{escaped}'");
            }
            ExprKind::StrLit(s) => {
                let escaped = s
                    .chars()
                    .map(|c| match c {
                        '\n' => "\\n".to_string(),
                        '\t' => "\\t".to_string(),
                        '"' => "\\\"".to_string(),
                        '\\' => "\\\\".to_string(),
                        other => other.to_string(),
                    })
                    .collect::<String>();
                let _ = write!(self.out, "\"{escaped}\"");
            }
            ExprKind::Null => self.out.push_str("nullptr"),
            ExprKind::This => self.out.push_str("this"),
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Member {
                base,
                arrow,
                qualifier,
                name,
            } => {
                self.paren(base);
                self.out.push_str(if *arrow { "->" } else { "." });
                if let Some(q) = qualifier {
                    let _ = write!(self.out, "{q}::");
                }
                self.out.push_str(name);
            }
            ExprKind::Index { base, index } => {
                self.paren(base);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Call { callee, args } => {
                self.paren(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Unary { op, expr } => {
                let text = match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Plus => "+",
                    UnaryOp::Not => "!",
                    UnaryOp::BitNot => "~",
                    UnaryOp::Deref => "*",
                    UnaryOp::AddrOf => "&",
                    UnaryOp::PreInc => "++",
                    UnaryOp::PreDec => "--",
                };
                self.out.push_str(text);
                self.paren(expr);
            }
            ExprKind::Postfix { op, expr } => {
                self.paren(expr);
                self.out.push_str(match op {
                    PostfixOp::PostInc => "++",
                    PostfixOp::PostDec => "--",
                });
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.paren(lhs);
                let text = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Rem => "%",
                    BinaryOp::Shl => "<<",
                    BinaryOp::Shr => ">>",
                    BinaryOp::Lt => "<",
                    BinaryOp::Gt => ">",
                    BinaryOp::Le => "<=",
                    BinaryOp::Ge => ">=",
                    BinaryOp::Eq => "==",
                    BinaryOp::Ne => "!=",
                    BinaryOp::BitAnd => "&",
                    BinaryOp::BitOr => "|",
                    BinaryOp::BitXor => "^",
                    BinaryOp::LogAnd => "&&",
                    BinaryOp::LogOr => "||",
                };
                let _ = write!(self.out, " {text} ");
                self.paren(rhs);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.paren(lhs);
                let text = match op {
                    AssignOp::Assign => "=",
                    AssignOp::AddAssign => "+=",
                    AssignOp::SubAssign => "-=",
                    AssignOp::MulAssign => "*=",
                    AssignOp::DivAssign => "/=",
                    AssignOp::RemAssign => "%=",
                    AssignOp::AndAssign => "&=",
                    AssignOp::OrAssign => "|=",
                    AssignOp::XorAssign => "^=",
                    AssignOp::ShlAssign => "<<=",
                    AssignOp::ShrAssign => ">>=",
                };
                let _ = write!(self.out, " {text} ");
                self.expr(rhs);
            }
            ExprKind::Cond { cond, then, els } => {
                self.paren(cond);
                self.out.push_str(" ? ");
                self.expr(then);
                self.out.push_str(" : ");
                self.expr(els);
            }
            ExprKind::Cast { style, ty, expr } => match style {
                CastStyle::CStyle => {
                    let _ = write!(self.out, "({ty})");
                    self.paren(expr);
                }
                named => {
                    let kw = match named {
                        CastStyle::Static => "static_cast",
                        CastStyle::Reinterpret => "reinterpret_cast",
                        CastStyle::Const => "const_cast",
                        CastStyle::Dynamic => "dynamic_cast",
                        CastStyle::CStyle => unreachable!("handled above"),
                    };
                    let _ = write!(self.out, "{kw}<{ty}>(");
                    self.expr(expr);
                    self.out.push(')');
                }
            },
            ExprKind::New {
                ty,
                args,
                array_len,
            } => match array_len {
                Some(len) => {
                    let _ = write!(self.out, "new {ty}[");
                    self.expr(len);
                    self.out.push(']');
                }
                None => {
                    let _ = write!(self.out, "new {ty}(");
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.expr(a);
                    }
                    self.out.push(')');
                }
            },
            ExprKind::Delete { expr, is_array } => {
                self.out
                    .push_str(if *is_array { "delete[] " } else { "delete " });
                self.paren(expr);
            }
            ExprKind::SizeofType(ty) => {
                let _ = write!(self.out, "sizeof({ty})");
            }
            ExprKind::SizeofExpr(e) => {
                self.out.push_str("sizeof");
                self.out.push('(');
                self.expr(e);
                self.out.push(')');
            }
            ExprKind::PtrToMember { class, member } => {
                let _ = write!(self.out, "&{class}::{member}");
            }
            ExprKind::PtrMemApply { base, arrow, ptr } => {
                self.paren(base);
                self.out.push_str(if *arrow { "->*" } else { ".*" });
                self.paren(ptr);
            }
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs);
                self.out.push_str(", ");
                self.expr(rhs);
            }
        }
    }

    /// Prints a subexpression, parenthesizing anything that is not atomic.
    /// Over-parenthesizing keeps the printer trivially correct; the
    /// round-trip test compares ASTs, not text.
    fn paren(&mut self, e: &Expr) {
        let atomic = matches!(
            e.kind,
            ExprKind::IntLit(_)
                | ExprKind::FloatLit(_)
                | ExprKind::BoolLit(_)
                | ExprKind::CharLit(_)
                | ExprKind::StrLit(_)
                | ExprKind::Null
                | ExprKind::This
                | ExprKind::Ident(_)
                | ExprKind::Member { .. }
                | ExprKind::Index { .. }
                | ExprKind::Call { .. }
                | ExprKind::PtrToMember { .. }
        );
        if atomic {
            self.expr(e);
        } else {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        }
    }
}

/// Renders `ty name` the way C++ spells declarations (arrays and function
/// pointers need the name embedded in the type).
pub fn declare(ty: &Type, name: &str) -> String {
    match &ty.kind {
        TypeKind::Array(elem, n) => format!("{} {name}[{n}]", elem),
        TypeKind::Pointer(inner) => {
            if let TypeKind::Function(ft) = &inner.kind {
                let params = ft
                    .params
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                return format!("{} (*{name})({params})", ft.ret);
            }
            format!("{ty} {name}")
        }
        _ => format!("{ty} {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let tu1 = parse(src).expect("first parse");
        let printed = print_unit(&tu1);
        let tu2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Compare structure, ignoring spans, by printing both again.
        assert_eq!(
            printed,
            print_unit(&tu2),
            "printer not a fixpoint:\n{printed}"
        );
        assert_eq!(tu1.classes.len(), tu2.classes.len());
        assert_eq!(tu1.functions.len(), tu2.functions.len());
        assert_eq!(tu1.data_member_count(), tu2.data_member_count());
    }

    #[test]
    fn round_trips_classes_and_functions() {
        round_trip(
            "class A { public: int x; virtual int f() { return x; } };\n\
             class B : public virtual A { public: double y; B(int v) : y(1.5) { x = v; } };\n\
             int main() { B b(3); return b.f(); }",
        );
    }

    #[test]
    fn round_trips_expressions() {
        round_trip(
            "struct P { int v; };\n\
             int main() {\n\
               P* p = new P();\n\
               int a = (1 + 2) * 3 % 4;\n\
               a += p->v > 0 ? -a : ~a;\n\
               int P::* pm = &P::v;\n\
               a = p->*pm + sizeof(P);\n\
               delete p;\n\
               return a;\n\
             }",
        );
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "int main() {\n\
               int t = 0;\n\
               for (int i = 0; i < 4; i++) { t += i; }\n\
               while (t > 0) { t--; if (t == 2) break; else continue; }\n\
               do { t++; } while (t < 2);\n\
               return t;\n\
             }",
        );
    }

    #[test]
    fn round_trips_unions_and_enums() {
        round_trip(
            "enum Color { Red = 0, Green = 1, Blue = 2 };\n\
             union U { int i; float f; };\n\
             int main() { U u; u.i = Red; return u.i; }",
        );
    }

    #[test]
    fn declare_handles_arrays_and_fn_pointers() {
        let arr = Type::plain(TypeKind::Array(Box::new(Type::int()), 5));
        assert_eq!(declare(&arr, "xs"), "int xs[5]");
        let fnty = Type::plain(TypeKind::Function(Box::new(FnType {
            ret: Type::int(),
            params: vec![Type::int(), Type::int()],
        })))
        .pointer_to();
        assert_eq!(declare(&fnty, "fp"), "int (*fp)(int, int)");
        assert_eq!(declare(&Type::int().pointer_to(), "p"), "int* p");
    }

    #[test]
    fn prints_casts() {
        round_trip(
            "struct A { int x; }; struct B : public A { int y; };\n\
             int main() { A* a = new B(); B* b = (B*)a; B* c = static_cast<B*>(a); return 0; }",
        );
    }
}

#[cfg(test)]
mod switch_pretty_tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn switch_round_trips_through_the_printer() {
        let src = "int main() {\n\
                     int x = 2;\n\
                     switch (x + 1) {\n\
                       case 1:\n\
                         x = 10;\n\
                         break;\n\
                       case 2:\n\
                       default:\n\
                         x = 30;\n\
                     }\n\
                     return x;\n\
                   }";
        let tu1 = parse(src).expect("parse");
        let printed = print_unit(&tu1);
        let tu2 = parse(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        assert_eq!(printed, print_unit(&tu2), "printer must be a fixpoint");
        assert_eq!(tu1.functions.len(), tu2.functions.len());
    }
}
