//! Hand-written lexer for the C++ subset.

use crate::diag::{ParseError, ParseErrorKind};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Converts source text into a token stream.
///
/// The lexer is a plain maximal-munch scanner. It strips `//` and `/* */`
/// comments and produces a final [`TokenKind::Eof`] token.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input, returning all tokens (ending with `Eof`).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for unterminated comments/literals and
    /// unrecognised characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.bytes.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.bytes.len() {
                            return Err(ParseError::new(
                                ParseErrorKind::UnterminatedComment,
                                Span::new(start, start + 2),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let lo = self.pos as u32;
        if self.pos >= self.bytes.len() {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(lo, lo),
            });
        }
        let c = self.peek();
        let kind = if c.is_ascii_alphabetic() || c == b'_' {
            self.lex_ident_or_keyword()
        } else if c.is_ascii_digit() {
            self.lex_number(lo)?
        } else if c == b'\'' {
            self.lex_char(lo)?
        } else if c == b'"' {
            self.lex_string(lo)?
        } else {
            self.lex_punct(lo)?
        };
        Ok(Token {
            kind,
            span: Span::new(lo, self.pos as u32),
        })
    }

    fn lex_ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_number(&mut self, lo: u32) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            let text = &self.src[hex_start..self.pos];
            let value = i64::from_str_radix(text, 16).map_err(|_| {
                ParseError::new(
                    ParseErrorKind::InvalidNumber(text.to_string()),
                    Span::new(lo, self.pos as u32),
                )
            })?;
            self.eat_int_suffix();
            return Ok(TokenKind::IntLit(value));
        }
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let mut look = self.pos + 1;
            if self.bytes.get(look) == Some(&b'+') || self.bytes.get(look) == Some(&b'-') {
                look += 1;
            }
            if self.bytes.get(look).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                self.pos = look;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            if self.peek() == b'f' || self.peek() == b'F' {
                self.pos += 1;
            }
            let value: f64 = text.parse().map_err(|_| {
                ParseError::new(
                    ParseErrorKind::InvalidNumber(text.to_string()),
                    Span::new(lo, self.pos as u32),
                )
            })?;
            Ok(TokenKind::FloatLit(value))
        } else {
            let value: i64 = text.parse().map_err(|_| {
                ParseError::new(
                    ParseErrorKind::InvalidNumber(text.to_string()),
                    Span::new(lo, self.pos as u32),
                )
            })?;
            self.eat_int_suffix();
            Ok(TokenKind::IntLit(value))
        }
    }

    fn eat_int_suffix(&mut self) {
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.pos += 1;
        }
    }

    fn lex_escape(&mut self, lo: u32) -> Result<char, ParseError> {
        // Caller consumed the backslash.
        let c = self.bump();
        Ok(match c {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::InvalidEscape(c as char),
                    Span::new(lo, self.pos as u32),
                ))
            }
        })
    }

    fn lex_char(&mut self, lo: u32) -> Result<TokenKind, ParseError> {
        self.pos += 1; // opening quote
        let c = match self.peek() {
            0 => {
                return Err(ParseError::new(
                    ParseErrorKind::UnterminatedLiteral,
                    Span::new(lo, self.pos as u32),
                ))
            }
            b'\\' => {
                self.pos += 1;
                self.lex_escape(lo)?
            }
            _ => self.bump() as char,
        };
        if self.peek() != b'\'' {
            return Err(ParseError::new(
                ParseErrorKind::UnterminatedLiteral,
                Span::new(lo, self.pos as u32),
            ));
        }
        self.pos += 1;
        Ok(TokenKind::CharLit(c))
    }

    fn lex_string(&mut self, lo: u32) -> Result<TokenKind, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => {
                    return Err(ParseError::new(
                        ParseErrorKind::UnterminatedLiteral,
                        Span::new(lo, self.pos as u32),
                    ))
                }
                b'"' => {
                    self.pos += 1;
                    return Ok(TokenKind::StrLit(out));
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.lex_escape(lo)?);
                }
                _ => out.push(self.bump() as char),
            }
        }
    }

    fn lex_punct(&mut self, lo: u32) -> Result<TokenKind, ParseError> {
        use Punct::*;
        let (p, len) = match (self.peek(), self.peek2(), self.peek3()) {
            (b'<', b'<', b'=') => (ShlEq, 3),
            (b'>', b'>', b'=') => (ShrEq, 3),
            (b'-', b'>', b'*') => (ArrowStar, 3),
            (b'-', b'>', _) => (Arrow, 2),
            (b'.', b'*', _) => (DotStar, 2),
            (b':', b':', _) => (ColonColon, 2),
            (b'+', b'+', _) => (PlusPlus, 2),
            (b'-', b'-', _) => (MinusMinus, 2),
            (b'&', b'&', _) => (AmpAmp, 2),
            (b'|', b'|', _) => (PipePipe, 2),
            (b'<', b'<', _) => (Shl, 2),
            (b'>', b'>', _) => (Shr, 2),
            (b'<', b'=', _) => (Le, 2),
            (b'>', b'=', _) => (Ge, 2),
            (b'=', b'=', _) => (EqEq, 2),
            (b'!', b'=', _) => (NotEq, 2),
            (b'+', b'=', _) => (PlusEq, 2),
            (b'-', b'=', _) => (MinusEq, 2),
            (b'*', b'=', _) => (StarEq, 2),
            (b'/', b'=', _) => (SlashEq, 2),
            (b'%', b'=', _) => (PercentEq, 2),
            (b'&', b'=', _) => (AmpEq, 2),
            (b'|', b'=', _) => (PipeEq, 2),
            (b'^', b'=', _) => (CaretEq, 2),
            (b'(', ..) => (LParen, 1),
            (b')', ..) => (RParen, 1),
            (b'{', ..) => (LBrace, 1),
            (b'}', ..) => (RBrace, 1),
            (b'[', ..) => (LBracket, 1),
            (b']', ..) => (RBracket, 1),
            (b';', ..) => (Semi, 1),
            (b',', ..) => (Comma, 1),
            (b'.', ..) => (Dot, 1),
            (b':', ..) => (Colon, 1),
            (b'?', ..) => (Question, 1),
            (b'+', ..) => (Plus, 1),
            (b'-', ..) => (Minus, 1),
            (b'*', ..) => (Star, 1),
            (b'/', ..) => (Slash, 1),
            (b'%', ..) => (Percent, 1),
            (b'&', ..) => (Amp, 1),
            (b'|', ..) => (Pipe, 1),
            (b'^', ..) => (Caret, 1),
            (b'~', ..) => (Tilde, 1),
            (b'!', ..) => (Bang, 1),
            (b'<', ..) => (Lt, 1),
            (b'>', ..) => (Gt, 1),
            (b'=', ..) => (Eq, 1),
            (other, ..) => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(other as char),
                    Span::new(lo, lo + 1),
                ))
            }
        };
        self.pos += len;
        Ok(TokenKind::Punct(p))
    }
}

/// Convenience wrapper: lexes `src` into tokens.
///
/// # Errors
///
/// Propagates any lexical error (see [`Lexer::tokenize`]).
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lex failure")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("class Foo"),
            vec![
                TokenKind::Keyword(Keyword::Class),
                TokenKind::Ident("Foo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_integers_and_floats() {
        assert_eq!(
            kinds("42 0x1F 3.5 1e3 2.5e-2 7L"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::IntLit(31),
                TokenKind::FloatLit(3.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.025),
                TokenKind::IntLit(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_not_confused_with_float() {
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Dot),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_char_and_string_escapes() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\tthere""#),
            vec![
                TokenKind::CharLit('a'),
                TokenKind::CharLit('\n'),
                TokenKind::StrLit("hi\tthere".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("->* -> .* :: <<= << <= <"),
            vec![
                TokenKind::Punct(Punct::ArrowStar),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Punct(Punct::DotStar),
                TokenKind::Punct(Punct::ColonColon),
                TokenKind::Punct(Punct::ShlEq),
                TokenKind::Punct(Punct::Shl),
                TokenKind::Punct(Punct::Le),
                TokenKind::Punct(Punct::Lt),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n/* block\nmore */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("'x").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(tokenize("int $x;").is_err());
    }

    #[test]
    fn spans_cover_token_text() {
        let toks = tokenize("abc 42").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn empty_input_yields_eof_only() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t"), vec![TokenKind::Eof]);
    }
}
