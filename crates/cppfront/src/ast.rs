//! Abstract syntax tree for the C++ subset.
//!
//! The tree is a plain boxed structure: a [`TranslationUnit`] owns all
//! classes, enums, global variables and free functions. Every node carries
//! a [`Span`] so later phases can report locations.

use crate::span::Span;
use std::fmt;

/// A parsed source file: the root of the AST.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// All class, struct and union definitions, in source order.
    pub classes: Vec<ClassDecl>,
    /// All enum definitions, in source order.
    pub enums: Vec<EnumDecl>,
    /// All global variable definitions, in source order.
    pub globals: Vec<GlobalDecl>,
    /// All free functions (including `main`), in source order.
    pub functions: Vec<FunctionDecl>,
}

impl TranslationUnit {
    /// Finds a class definition by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Finds a free function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of data members declared across all classes.
    pub fn data_member_count(&self) -> usize {
        self.classes.iter().map(|c| c.data_members.len()).sum()
    }
}

/// Whether a user-defined type was introduced with `class`, `struct` or `union`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassKind {
    /// `class C { ... };`
    Class,
    /// `struct S { ... };`
    Struct,
    /// `union U { ... };`
    Union,
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClassKind::Class => "class",
            ClassKind::Struct => "struct",
            ClassKind::Union => "union",
        })
    }
}

/// C++ member access levels. Parsed and recorded but not enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// `public:`
    Public,
    /// `protected:`
    Protected,
    /// `private:`
    Private,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Public => "public",
            Access::Protected => "protected",
            Access::Private => "private",
        })
    }
}

/// One base class in a class head, e.g. `public virtual A`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseSpecifier {
    /// Name of the base class.
    pub name: String,
    /// True for `virtual` inheritance.
    pub is_virtual: bool,
    /// Access of the inheritance edge.
    pub access: Access,
    /// Source location of the specifier.
    pub span: Span,
}

/// A class, struct or union definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// The type name.
    pub name: String,
    /// `class` / `struct` / `union`.
    pub kind: ClassKind,
    /// Direct bases, in declaration order (empty for unions).
    pub bases: Vec<BaseSpecifier>,
    /// Non-static data members, in declaration order.
    pub data_members: Vec<DataMemberDecl>,
    /// Member functions, constructors and the destructor.
    pub methods: Vec<FunctionDecl>,
    /// Source location of the whole definition.
    pub span: Span,
}

impl ClassDecl {
    /// Finds a data member declared directly in this class.
    pub fn data_member(&self, name: &str) -> Option<&DataMemberDecl> {
        self.data_members.iter().find(|m| m.name == name)
    }

    /// All constructors declared in this class.
    pub fn constructors(&self) -> impl Iterator<Item = &FunctionDecl> {
        self.methods
            .iter()
            .filter(|m| m.kind == FunctionKind::Constructor)
    }

    /// The destructor, if one is declared.
    pub fn destructor(&self) -> Option<&FunctionDecl> {
        self.methods
            .iter()
            .find(|m| m.kind == FunctionKind::Destructor)
    }
}

/// A non-static data member (the paper's "data member" / instance variable).
#[derive(Debug, Clone, PartialEq)]
pub struct DataMemberDecl {
    /// Member name.
    pub name: String,
    /// Declared type (may carry `volatile`, which the analysis treats specially).
    pub ty: Type,
    /// Access level in effect at the declaration.
    pub access: Access,
    /// Source location.
    pub span: Span,
}

/// An `enum Name { A, B = 3, C };` definition. Enumerators behave as `int`
/// constants; the enum name is usable as a type synonymous with `int`.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDecl {
    /// The enum type name.
    pub name: String,
    /// `(enumerator name, value)` pairs in declaration order.
    pub variants: Vec<(String, i64)>,
    /// Source location.
    pub span: Span,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// Distinguishes ordinary functions/methods from special members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// A free function.
    Free,
    /// An ordinary member function.
    Method,
    /// A constructor.
    Constructor,
    /// A destructor.
    Destructor,
}

/// One `member(expr...)` or `Base(expr...)` entry in a constructor
/// initializer list. Which of the two it is gets resolved semantically.
#[derive(Debug, Clone, PartialEq)]
pub struct CtorInit {
    /// Member or base-class name being initialized.
    pub name: String,
    /// Arguments (a single expression for members, ctor args for bases).
    pub args: Vec<Expr>,
    /// Source location.
    pub span: Span,
}

/// A function or method definition (bodies are always inline in the subset).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (`ClassName` for constructors, `~ClassName` for destructors).
    pub name: String,
    /// What kind of function this is.
    pub kind: FunctionKind,
    /// Declared `virtual` (directly; inherited virtualness is resolved later).
    pub is_virtual: bool,
    /// Return type (`void` for constructors/destructors).
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Constructor initializer list (empty unless a constructor).
    pub inits: Vec<CtorInit>,
    /// The body. `None` marks a pure-virtual declaration (`= 0`).
    pub body: Option<Block>,
    /// Source location of the definition.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect, e.g. `x = 1;`.
    Expr(Expr),
    /// A local variable declaration, e.g. `A a(1, 2);` or `int i = 0;`.
    Decl(LocalDecl),
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken when the condition is non-zero.
        then: Box<Stmt>,
        /// Taken otherwise, if present.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition, tested after the body.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means "true").
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { case ...: ... default: ... }` with C++
    /// fallthrough semantics.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// The arms, in source order.
        arms: Vec<SwitchArm>,
    },
    /// `return;` or `return expr;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested `{ ... }` block.
    Block(Block),
    /// An empty statement `;`.
    Empty,
}

/// One `case`/`default` arm of a [`StmtKind::Switch`]. Execution falls
/// through into the next arm unless a `break` intervenes, as in C++.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// The matched constant; `None` for `default:`. Case labels must be
    /// integer constant expressions (literals or enumerators, resolved
    /// at parse/semantic time).
    pub value: Option<Expr>,
    /// Statements under this label (up to the next label).
    pub stmts: Vec<Stmt>,
    /// Source location of the label.
    pub span: Span,
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// How the variable is initialized.
    pub init: LocalInit,
}

/// The initializer form of a [`LocalDecl`].
#[derive(Debug, Clone, PartialEq)]
pub enum LocalInit {
    /// No initializer: default-construct class objects, leave scalars unset.
    Default,
    /// `= expr` copy initialization.
    Expr(Expr),
    /// `(args...)` direct (constructor) initialization.
    Ctor(Vec<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// `true` / `false`.
    BoolLit(bool),
    /// Character literal.
    CharLit(char),
    /// String literal.
    StrLit(String),
    /// `nullptr` (also produced for literal `0` used in pointer contexts is
    /// *not* rewritten; only the keyword maps here).
    Null,
    /// `this` inside a member function.
    This,
    /// A name: local, parameter, global, enumerator, enclosing-class member,
    /// or function designator.
    Ident(String),
    /// Member access: `base.m`, `base->m`, `base.Qual::m`, `base->Qual::m`.
    Member {
        /// The object or pointer expression.
        base: Box<Expr>,
        /// True for `->`, false for `.`.
        arrow: bool,
        /// Present for qualified accesses `base.Qual::m`.
        qualifier: Option<String>,
        /// Member name.
        name: String,
    },
    /// Array indexing `base[index]`.
    Index {
        /// The array or pointer expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A call. The callee is an [`ExprKind::Ident`] (free function, builtin,
    /// or implicit-`this` method) or an [`ExprKind::Member`] (method call),
    /// or any expression of function-pointer type.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Prefix unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Postfix `++` / `--`.
    Postfix {
        /// The operator.
        op: PostfixOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation (arithmetic, comparison, logical, bitwise).
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment, simple or compound.
    Assign {
        /// The operator (`=`, `+=`, ...).
        op: AssignOp,
        /// Assigned-to place.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `cond ? then : els`.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Value when non-zero.
        then: Box<Expr>,
        /// Value when zero.
        els: Box<Expr>,
    },
    /// A cast: C-style `(T)e` or named `static_cast<T>(e)` etc.
    Cast {
        /// Which cast syntax was used.
        style: CastStyle,
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `new T(args...)` or `new T[len]`.
    New {
        /// Allocated type.
        ty: Type,
        /// Constructor arguments (scalar `new int(5)` uses one arg).
        args: Vec<Expr>,
        /// Present for array form `new T[len]`.
        array_len: Option<Box<Expr>>,
    },
    /// `delete e` or `delete[] e`.
    Delete {
        /// The pointer being deleted.
        expr: Box<Expr>,
        /// True for `delete[]`.
        is_array: bool,
    },
    /// `sizeof(T)`.
    SizeofType(Type),
    /// `sizeof expr` / `sizeof(expr)`.
    SizeofExpr(Box<Expr>),
    /// Pointer-to-member creation `&Class::member`.
    PtrToMember {
        /// The class whose member offset is taken.
        class: String,
        /// The member name.
        member: String,
    },
    /// Pointer-to-member application `base.*ptr` or `base->*ptr`.
    PtrMemApply {
        /// Object or pointer expression.
        base: Box<Expr>,
        /// True for `->*`.
        arrow: bool,
        /// The pointer-to-member expression.
        ptr: Box<Expr>,
    },
    /// Comma expression `lhs, rhs`.
    Comma {
        /// Evaluated for effect.
        lhs: Box<Expr>,
        /// Value of the whole expression.
        rhs: Box<Expr>,
    },
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `+e`
    Plus,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
}

/// Postfix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostfixOp {
    /// `e++`
    PostInc,
    /// `e--`
    PostDec,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `%=`
    RemAssign,
    /// `&=`
    AndAssign,
    /// `|=`
    OrAssign,
    /// `^=`
    XorAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
}

impl AssignOp {
    /// The binary operator a compound assignment applies, if any.
    /// `x op= y` reads `x`, so the analysis treats compound assignment
    /// left-hand sides as read accesses.
    pub fn binary_op(self) -> Option<BinaryOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::AddAssign => BinaryOp::Add,
            AssignOp::SubAssign => BinaryOp::Sub,
            AssignOp::MulAssign => BinaryOp::Mul,
            AssignOp::DivAssign => BinaryOp::Div,
            AssignOp::RemAssign => BinaryOp::Rem,
            AssignOp::AndAssign => BinaryOp::BitAnd,
            AssignOp::OrAssign => BinaryOp::BitOr,
            AssignOp::XorAssign => BinaryOp::BitXor,
            AssignOp::ShlAssign => BinaryOp::Shl,
            AssignOp::ShrAssign => BinaryOp::Shr,
        })
    }
}

/// Which cast syntax an [`ExprKind::Cast`] used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastStyle {
    /// `(T)e`
    CStyle,
    /// `static_cast<T>(e)`
    Static,
    /// `reinterpret_cast<T>(e)`
    Reinterpret,
    /// `const_cast<T>(e)`
    Const,
    /// `dynamic_cast<T>(e)`
    Dynamic,
}

/// A type as written in source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    /// The structural part of the type.
    pub kind: TypeKind,
    /// `const`-qualified.
    pub is_const: bool,
    /// `volatile`-qualified. Volatile data members are live when written
    /// (the paper's footnote-1 exception).
    pub is_volatile: bool,
}

impl Type {
    /// An unqualified type of the given kind.
    pub fn plain(kind: TypeKind) -> Self {
        Type {
            kind,
            is_const: false,
            is_volatile: false,
        }
    }

    /// Shorthand for `int`.
    pub fn int() -> Self {
        Type::plain(TypeKind::Int)
    }

    /// Shorthand for `void`.
    pub fn void() -> Self {
        Type::plain(TypeKind::Void)
    }

    /// Shorthand for a pointer to `self`.
    pub fn pointer_to(self) -> Self {
        Type::plain(TypeKind::Pointer(Box::new(self)))
    }

    /// Shorthand for a reference to `self`.
    pub fn reference_to(self) -> Self {
        Type::plain(TypeKind::Reference(Box::new(self)))
    }

    /// The class name if this is a (possibly qualified) named type.
    pub fn named(&self) -> Option<&str> {
        match &self.kind {
            TypeKind::Named(n) => Some(n),
            _ => None,
        }
    }

    /// Strips references: `T&` becomes `T`; other types are unchanged.
    pub fn strip_reference(&self) -> &Type {
        match &self.kind {
            TypeKind::Reference(inner) => inner,
            _ => self,
        }
    }

    /// The pointee if this is a pointer (after stripping references).
    pub fn pointee(&self) -> Option<&Type> {
        match &self.strip_reference().kind {
            TypeKind::Pointer(inner) => Some(inner),
            _ => None,
        }
    }

    /// True for the arithmetic types (integers, floats, `bool`, `char`).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self.kind,
            TypeKind::Bool
                | TypeKind::Char
                | TypeKind::Short
                | TypeKind::Int
                | TypeKind::Long
                | TypeKind::Float
                | TypeKind::Double
        )
    }
}

/// The structural alternatives of a [`Type`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// A class, struct, union or enum name.
    Named(String),
    /// `T*`
    Pointer(Box<Type>),
    /// `T&`
    Reference(Box<Type>),
    /// `T[n]`
    Array(Box<Type>, usize),
    /// A function type, used through function pointers.
    Function(Box<FnType>),
    /// Pointer-to-data-member type `T Class::*`.
    MemberPointer {
        /// The class the member belongs to.
        class: String,
        /// The member's value type.
        pointee: Box<Type>,
    },
}

/// Parameter/return shape of a function type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnType {
    /// Return type.
    pub ret: Type,
    /// Parameter types in order.
    pub params: Vec<Type>,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_const {
            write!(f, "const ")?;
        }
        if self.is_volatile {
            write!(f, "volatile ")?;
        }
        match &self.kind {
            TypeKind::Void => write!(f, "void"),
            TypeKind::Bool => write!(f, "bool"),
            TypeKind::Char => write!(f, "char"),
            TypeKind::Short => write!(f, "short"),
            TypeKind::Int => write!(f, "int"),
            TypeKind::Long => write!(f, "long"),
            TypeKind::Float => write!(f, "float"),
            TypeKind::Double => write!(f, "double"),
            TypeKind::Named(n) => write!(f, "{n}"),
            TypeKind::Pointer(t) => write!(f, "{t}*"),
            TypeKind::Reference(t) => write!(f, "{t}&"),
            TypeKind::Array(t, n) => write!(f, "{t}[{n}]"),
            TypeKind::Function(ft) => {
                write!(f, "{}(", ft.ret)?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            TypeKind::MemberPointer { class, pointee } => write!(f, "{pointee} {class}::*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_round_trips_simple_shapes() {
        assert_eq!(Type::int().to_string(), "int");
        assert_eq!(Type::int().pointer_to().to_string(), "int*");
        assert_eq!(Type::int().reference_to().to_string(), "int&");
        assert_eq!(
            Type::plain(TypeKind::Array(Box::new(Type::int()), 8)).to_string(),
            "int[8]"
        );
    }

    #[test]
    fn member_pointer_display() {
        let t = Type::plain(TypeKind::MemberPointer {
            class: "C".into(),
            pointee: Box::new(Type::int()),
        });
        assert_eq!(t.to_string(), "int C::*");
    }

    #[test]
    fn strip_reference_and_pointee() {
        let t = Type::plain(TypeKind::Named("A".into()))
            .pointer_to()
            .reference_to();
        assert_eq!(t.strip_reference().to_string(), "A*");
        assert_eq!(t.pointee().unwrap().to_string(), "A");
        assert!(Type::int().pointee().is_none());
    }

    #[test]
    fn compound_assign_maps_to_binary() {
        assert_eq!(AssignOp::AddAssign.binary_op(), Some(BinaryOp::Add));
        assert_eq!(AssignOp::ShrAssign.binary_op(), Some(BinaryOp::Shr));
        assert_eq!(AssignOp::Assign.binary_op(), None);
    }

    #[test]
    fn class_decl_lookups() {
        let c = ClassDecl {
            name: "A".into(),
            kind: ClassKind::Class,
            bases: vec![],
            data_members: vec![DataMemberDecl {
                name: "x".into(),
                ty: Type::int(),
                access: Access::Public,
                span: Span::dummy(),
            }],
            methods: vec![],
            span: Span::dummy(),
        };
        assert!(c.data_member("x").is_some());
        assert!(c.data_member("y").is_none());
        assert!(c.destructor().is_none());
        assert_eq!(c.constructors().count(), 0);
    }

    #[test]
    fn unit_counts_members() {
        let mut tu = TranslationUnit::default();
        assert_eq!(tu.data_member_count(), 0);
        tu.classes.push(ClassDecl {
            name: "A".into(),
            kind: ClassKind::Struct,
            bases: vec![],
            data_members: vec![
                DataMemberDecl {
                    name: "x".into(),
                    ty: Type::int(),
                    access: Access::Public,
                    span: Span::dummy(),
                },
                DataMemberDecl {
                    name: "y".into(),
                    ty: Type::int(),
                    access: Access::Public,
                    span: Span::dummy(),
                },
            ],
            methods: vec![],
            span: Span::dummy(),
        });
        assert_eq!(tu.data_member_count(), 2);
        assert!(tu.class("A").is_some());
        assert!(tu.class("B").is_none());
    }

    #[test]
    fn arithmetic_predicate() {
        assert!(Type::plain(TypeKind::Double).is_arithmetic());
        assert!(Type::plain(TypeKind::Bool).is_arithmetic());
        assert!(!Type::void().is_arithmetic());
        assert!(!Type::int().pointer_to().is_arithmetic());
    }
}
