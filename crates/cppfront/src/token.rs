//! Token model for the C++ subset.

use crate::span::Span;
use std::fmt;

/// A lexical token: a kind plus the source span it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (including any literal payload).
    pub kind: TokenKind,
    /// Where in the source the token appears.
    pub span: Span,
}

/// The different kinds of tokens produced by the [lexer](crate::lexer::Lexer).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier that is not a keyword, e.g. `foo`.
    Ident(String),
    /// An integer literal, e.g. `42` or `0x1f`.
    IntLit(i64),
    /// A floating-point literal, e.g. `3.14`.
    FloatLit(f64),
    /// A character literal, e.g. `'a'`.
    CharLit(char),
    /// A string literal, e.g. `"hello"` (without the quotes, escapes resolved).
    StrLit(String),
    /// A reserved keyword, e.g. `class`.
    Keyword(Keyword),
    /// Punctuation or an operator, e.g. `->`.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, TokenKind::Keyword(k) if *k == kw)
    }

    /// True if this token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::CharLit(c) => format!("char literal `{c:?}`"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::Keyword(k) => format!("keyword `{k}`"),
            TokenKind::Punct(p) => format!("`{p}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of the C++ subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = concat!("The `", $text, "` keyword.")] $variant),+
        }

        impl Keyword {
            /// Looks up a keyword from its source spelling.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The source spelling of the keyword.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Class => "class",
    Struct => "struct",
    Union => "union",
    Enum => "enum",
    Public => "public",
    Private => "private",
    Protected => "protected",
    Virtual => "virtual",
    Static => "static",
    Const => "const",
    Volatile => "volatile",
    Void => "void",
    Bool => "bool",
    Char => "char",
    Short => "short",
    Int => "int",
    Long => "long",
    Float => "float",
    Double => "double",
    Unsigned => "unsigned",
    Signed => "signed",
    If => "if",
    Else => "else",
    While => "while",
    Do => "do",
    For => "for",
    Return => "return",
    Break => "break",
    Continue => "continue",
    New => "new",
    Delete => "delete",
    This => "this",
    True => "true",
    False => "false",
    Sizeof => "sizeof",
    StaticCast => "static_cast",
    ReinterpretCast => "reinterpret_cast",
    ConstCast => "const_cast",
    DynamicCast => "dynamic_cast",
    Operator => "operator",
    Typedef => "typedef",
    Switch => "switch",
    Case => "case",
    Default => "default",
    Nullptr => "nullptr",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Punctuation and operator tokens of the C++ subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = concat!("The `", $text, "` token.")] $variant),+
        }

        impl Punct {
            /// The source spelling of the punctuation.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Punct::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

puncts! {
    LParen => "(",
    RParen => ")",
    LBrace => "{",
    RBrace => "}",
    LBracket => "[",
    RBracket => "]",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    DotStar => ".*",
    Arrow => "->",
    ArrowStar => "->*",
    ColonColon => "::",
    Colon => ":",
    Question => "?",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    PlusPlus => "++",
    MinusMinus => "--",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    Tilde => "~",
    Bang => "!",
    AmpAmp => "&&",
    PipePipe => "||",
    Shl => "<<",
    Shr => ">>",
    Lt => "<",
    Gt => ">",
    Le => "<=",
    Ge => ">=",
    EqEq => "==",
    NotEq => "!=",
    Eq => "=",
    PlusEq => "+=",
    MinusEq => "-=",
    StarEq => "*=",
    SlashEq => "/=",
    PercentEq => "%=",
    AmpEq => "&=",
    PipeEq => "|=",
    CaretEq => "^=",
    ShlEq => "<<=",
    ShrEq => ">>=",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Class,
            Keyword::Virtual,
            Keyword::Sizeof,
            Keyword::Nullptr,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn punct_display_matches_spelling() {
        assert_eq!(Punct::ArrowStar.to_string(), "->*");
        assert_eq!(Punct::ColonColon.to_string(), "::");
        assert_eq!(Punct::ShlEq.to_string(), "<<=");
    }

    #[test]
    fn token_kind_predicates() {
        let t = TokenKind::Keyword(Keyword::Class);
        assert!(t.is_keyword(Keyword::Class));
        assert!(!t.is_keyword(Keyword::Struct));
        let p = TokenKind::Punct(Punct::Arrow);
        assert!(p.is_punct(Punct::Arrow));
        assert!(!p.is_punct(Punct::Dot));
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Punct(Punct::Semi).describe(), "`;`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
