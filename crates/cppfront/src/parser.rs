//! Recursive-descent parser for the C++ subset.
//!
//! The parser keeps a set of known type names (collected by a pre-scan over
//! the token stream, so forward references work) and uses it to disambiguate
//! declarations from expressions, exactly as a real C++ front end does.

use crate::ast::*;
use crate::diag::{ParseError, ParseErrorKind};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::collections::HashSet;

/// Parses a complete source file into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let tu = ddm_cppfront::parse("struct S { int x; }; int main() { S s; return s.x; }")?;
/// assert_eq!(tu.classes.len(), 1);
/// assert_eq!(tu.functions.len(), 1);
/// # Ok::<(), ddm_cppfront::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).parse_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    type_names: HashSet<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        let mut type_names = HashSet::new();
        // Pre-scan so classes may reference each other regardless of order.
        for w in tokens.windows(2) {
            if let TokenKind::Keyword(
                Keyword::Class | Keyword::Struct | Keyword::Union | Keyword::Enum,
            ) = w[0].kind
            {
                if let TokenKind::Ident(name) = &w[1].kind {
                    type_names.insert(name.clone());
                }
            }
        }
        Parser {
            tokens,
            pos: 0,
            type_names,
        }
    }

    // ----- token helpers -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn at_punct(&self, p: Punct) -> bool {
        self.peek().is_punct(p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        self.peek().is_keyword(k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Unexpected {
                expected: expected.to_string(),
                found: self.peek().describe(),
            },
            self.span(),
        )
    }

    fn unsupported(&self, what: &str) -> ParseError {
        ParseError::new(ParseErrorKind::Unsupported(what.to_string()), self.span())
    }

    // ----- top level ------------------------------------------------------

    fn parse_unit(mut self) -> Result<TranslationUnit, ParseError> {
        let mut tu = TranslationUnit::default();
        let mut out_of_line: Vec<(String, FunctionDecl)> = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            match self.peek() {
                TokenKind::Keyword(Keyword::Class | Keyword::Struct | Keyword::Union) => {
                    if let Some(class) = self.parse_class()? {
                        if tu.class(&class.name).is_some() {
                            return Err(ParseError::new(
                                ParseErrorKind::Duplicate(class.name.clone()),
                                class.span,
                            ));
                        }
                        tu.classes.push(class);
                    }
                }
                TokenKind::Keyword(Keyword::Enum) => {
                    let decl = self.parse_enum()?;
                    tu.enums.push(decl);
                }
                TokenKind::Keyword(Keyword::Typedef) => {
                    return Err(self.unsupported("typedef"));
                }
                _ => self.parse_global_or_function(&mut tu, &mut out_of_line)?,
            }
        }
        // Attach out-of-line method bodies to their in-class declarations.
        for (class_name, def) in out_of_line {
            let span = def.span;
            let class = tu
                .classes
                .iter_mut()
                .find(|c| c.name == class_name)
                .ok_or_else(|| {
                    ParseError::new(
                        ParseErrorKind::Unexpected {
                            expected: format!("class `{class_name}`"),
                            found: "out-of-line definition for an undefined class".to_string(),
                        },
                        span,
                    )
                })?;
            let decl = class
                .methods
                .iter_mut()
                .find(|m| m.name == def.name && m.kind == FunctionKind::Method)
                .ok_or_else(|| {
                    ParseError::new(
                        ParseErrorKind::Unexpected {
                            expected: format!(
                                "declaration of `{}` inside class `{class_name}`",
                                def.name
                            ),
                            found: "out-of-line definition without one".to_string(),
                        },
                        span,
                    )
                })?;
            if decl.body.is_some() {
                return Err(ParseError::new(
                    ParseErrorKind::Duplicate(format!("{class_name}::{}", def.name)),
                    span,
                ));
            }
            decl.body = def.body;
            decl.params = def.params;
            decl.span = decl.span.to(span);
        }
        Ok(tu)
    }

    /// Parses `class C [: bases] { ... };` or a forward declaration
    /// `class C;` (which yields `None`).
    fn parse_class(&mut self) -> Result<Option<ClassDecl>, ParseError> {
        let start = self.span();
        let kind = match self.bump() {
            TokenKind::Keyword(Keyword::Class) => ClassKind::Class,
            TokenKind::Keyword(Keyword::Struct) => ClassKind::Struct,
            TokenKind::Keyword(Keyword::Union) => ClassKind::Union,
            _ => unreachable!("caller checked the keyword"),
        };
        let name = self.expect_ident()?;
        self.type_names.insert(name.clone());
        if self.eat_punct(Punct::Semi) {
            return Ok(None); // forward declaration
        }
        let mut bases = Vec::new();
        if self.eat_punct(Punct::Colon) {
            if kind == ClassKind::Union {
                return Err(self.unsupported("base classes on a union"));
            }
            loop {
                let base_start = self.span();
                let mut access = match kind {
                    ClassKind::Class => Access::Private,
                    _ => Access::Public,
                };
                let mut is_virtual = false;
                loop {
                    if self.eat_keyword(Keyword::Virtual) {
                        is_virtual = true;
                    } else if self.eat_keyword(Keyword::Public) {
                        access = Access::Public;
                    } else if self.eat_keyword(Keyword::Protected) {
                        access = Access::Protected;
                    } else if self.eat_keyword(Keyword::Private) {
                        access = Access::Private;
                    } else {
                        break;
                    }
                }
                let base_name = self.expect_ident()?;
                bases.push(BaseSpecifier {
                    name: base_name,
                    is_virtual,
                    access,
                    span: base_start.to(self.prev_span()),
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let mut access = match kind {
            ClassKind::Class => Access::Private,
            _ => Access::Public,
        };
        let mut data_members = Vec::new();
        let mut methods = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if self.eat_keyword(Keyword::Public) {
                self.expect_punct(Punct::Colon)?;
                access = Access::Public;
            } else if self.eat_keyword(Keyword::Protected) {
                self.expect_punct(Punct::Colon)?;
                access = Access::Protected;
            } else if self.eat_keyword(Keyword::Private) {
                self.expect_punct(Punct::Colon)?;
                access = Access::Private;
            } else {
                self.parse_member(&name, access, &mut data_members, &mut methods)?;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(Some(ClassDecl {
            name,
            kind,
            bases,
            data_members,
            methods,
            span: start.to(self.prev_span()),
        }))
    }

    fn parse_member(
        &mut self,
        class_name: &str,
        access: Access,
        data_members: &mut Vec<DataMemberDecl>,
        methods: &mut Vec<FunctionDecl>,
    ) -> Result<(), ParseError> {
        let start = self.span();
        let is_virtual = self.eat_keyword(Keyword::Virtual);
        if self.eat_keyword(Keyword::Static) {
            return Err(self.unsupported("static members"));
        }

        // Destructor.
        if self.at_punct(Punct::Tilde) {
            self.bump();
            let dtor_name = self.expect_ident()?;
            if dtor_name != class_name {
                return Err(self.unexpected(&format!("destructor name `{class_name}`")));
            }
            self.expect_punct(Punct::LParen)?;
            self.expect_punct(Punct::RParen)?;
            let body = self.parse_optional_body()?;
            methods.push(FunctionDecl {
                name: format!("~{class_name}"),
                kind: FunctionKind::Destructor,
                is_virtual,
                ret: Type::void(),
                params: Vec::new(),
                inits: Vec::new(),
                body,
                span: start.to(self.prev_span()),
            });
            return Ok(());
        }

        // Constructor: `ClassName ( ... )`.
        if let TokenKind::Ident(id) = self.peek() {
            if id == class_name && self.peek_at(1).is_punct(Punct::LParen) {
                self.bump();
                let params = self.parse_params()?;
                let mut inits = Vec::new();
                if self.eat_punct(Punct::Colon) {
                    loop {
                        let init_start = self.span();
                        let init_name = self.expect_ident()?;
                        self.expect_punct(Punct::LParen)?;
                        let mut args = Vec::new();
                        if !self.at_punct(Punct::RParen) {
                            loop {
                                args.push(self.parse_assign_expr()?);
                                if !self.eat_punct(Punct::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                        inits.push(CtorInit {
                            name: init_name,
                            args,
                            span: init_start.to(self.prev_span()),
                        });
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                let body = self.parse_optional_body()?;
                methods.push(FunctionDecl {
                    name: class_name.to_string(),
                    kind: FunctionKind::Constructor,
                    is_virtual: false,
                    ret: Type::void(),
                    params,
                    inits,
                    body,
                    span: start.to(self.prev_span()),
                });
                return Ok(());
            }
        }

        // Ordinary member: type, then declarator.
        let base_ty = self.parse_type()?;
        let (decl_name, ty, is_fn_ptr_decl) = self.parse_declarator(base_ty)?;
        if self.at_punct(Punct::LParen) && !is_fn_ptr_decl {
            // Member function.
            let params = self.parse_params()?;
            self.eat_keyword(Keyword::Const); // trailing const is accepted and ignored
            let body = self.parse_optional_body()?;
            methods.push(FunctionDecl {
                name: decl_name,
                kind: FunctionKind::Method,
                is_virtual,
                ret: ty,
                params,
                inits: Vec::new(),
                body,
                span: start.to(self.prev_span()),
            });
        } else {
            if is_virtual {
                return Err(self.unexpected("member function after `virtual`"));
            }
            self.expect_punct(Punct::Semi)?;
            data_members.push(DataMemberDecl {
                name: decl_name,
                ty,
                access,
                span: start.to(self.prev_span()),
            });
        }
        Ok(())
    }

    /// Parses `{ body }`, `;` (no body), or `= 0 ;` (pure virtual, no body).
    fn parse_optional_body(&mut self) -> Result<Option<Block>, ParseError> {
        if self.eat_punct(Punct::Semi) {
            return Ok(None);
        }
        if self.at_punct(Punct::Eq) {
            self.bump();
            match self.bump() {
                TokenKind::IntLit(0) => {}
                _ => return Err(self.unexpected("`0` in pure-virtual specifier")),
            }
            self.expect_punct(Punct::Semi)?;
            return Ok(None);
        }
        Ok(Some(self.parse_block()?))
    }

    fn parse_enum(&mut self) -> Result<EnumDecl, ParseError> {
        let start = self.span();
        self.bump(); // `enum`
        let name = self.expect_ident()?;
        self.type_names.insert(name.clone());
        self.expect_punct(Punct::LBrace)?;
        let mut variants = Vec::new();
        let mut next_value = 0i64;
        while !self.at_punct(Punct::RBrace) {
            let vname = self.expect_ident()?;
            if self.eat_punct(Punct::Eq) {
                let negative = self.eat_punct(Punct::Minus);
                match self.bump() {
                    TokenKind::IntLit(v) => next_value = if negative { -v } else { v },
                    _ => return Err(self.unexpected("integer enumerator value")),
                }
            }
            variants.push((vname, next_value));
            next_value += 1;
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(EnumDecl {
            name,
            variants,
            span: start.to(self.prev_span()),
        })
    }

    fn parse_global_or_function(
        &mut self,
        tu: &mut TranslationUnit,
        out_of_line: &mut Vec<(String, FunctionDecl)>,
    ) -> Result<(), ParseError> {
        let start = self.span();
        if !self.starts_type() {
            return Err(self.unexpected("declaration"));
        }
        let base_ty = self.parse_type()?;
        // Out-of-line method definition: `T Class::name(params) { ... }`.
        if let TokenKind::Ident(class_name) = self.peek() {
            if self.peek_at(1).is_punct(Punct::ColonColon)
                && matches!(self.peek_at(2), TokenKind::Ident(_))
            {
                let class_name = class_name.clone();
                self.bump();
                self.bump();
                let method_name = self.expect_ident()?;
                let params = self.parse_params()?;
                self.eat_keyword(Keyword::Const);
                let body = self.parse_block()?;
                out_of_line.push((
                    class_name,
                    FunctionDecl {
                        name: method_name,
                        kind: FunctionKind::Method,
                        is_virtual: false,
                        ret: base_ty,
                        params,
                        inits: Vec::new(),
                        body: Some(body),
                        span: start.to(self.prev_span()),
                    },
                ));
                return Ok(());
            }
        }
        let (name, ty, is_fn_ptr_decl) = self.parse_declarator(base_ty)?;
        if self.at_punct(Punct::LParen) && !is_fn_ptr_decl {
            let params = self.parse_params()?;
            if self.eat_punct(Punct::Semi) {
                // Function prototype; body may follow elsewhere. Record as
                // body-less free function only if not already defined.
                if tu.function(&name).is_none() {
                    tu.functions.push(FunctionDecl {
                        name,
                        kind: FunctionKind::Free,
                        is_virtual: false,
                        ret: ty,
                        params,
                        inits: Vec::new(),
                        body: None,
                        span: start.to(self.prev_span()),
                    });
                }
                return Ok(());
            }
            let body = self.parse_block()?;
            // A body replaces an earlier prototype.
            tu.functions
                .retain(|f| !(f.name == name && f.body.is_none()));
            if tu.function(&name).is_some() {
                return Err(ParseError::new(
                    ParseErrorKind::Duplicate(name.clone()),
                    start,
                ));
            }
            tu.functions.push(FunctionDecl {
                name,
                kind: FunctionKind::Free,
                is_virtual: false,
                ret: ty,
                params,
                inits: Vec::new(),
                body: Some(body),
                span: start.to(self.prev_span()),
            });
        } else {
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.parse_assign_expr()?)
            } else {
                None
            };
            self.expect_punct(Punct::Semi)?;
            tu.globals.push(GlobalDecl {
                name,
                ty,
                init,
                span: start.to(self.prev_span()),
            });
        }
        Ok(())
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            if self.at_keyword(Keyword::Void) && self.peek_at(1).is_punct(Punct::RParen) {
                self.bump(); // `(void)` means no parameters
            } else {
                loop {
                    let start = self.span();
                    let base_ty = self.parse_type()?;
                    let (name, ty, _) = self.parse_declarator_opt_name(base_ty)?;
                    params.push(Param {
                        name: name.unwrap_or_default(),
                        ty,
                        span: start.to(self.prev_span()),
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(params)
    }

    // ----- types and declarators -----------------------------------------

    /// Whether the current token can begin a type.
    fn starts_type(&self) -> bool {
        self.starts_type_at(0)
    }

    fn starts_type_at(&self, n: usize) -> bool {
        match self.peek_at(n) {
            TokenKind::Keyword(
                Keyword::Void
                | Keyword::Bool
                | Keyword::Char
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long
                | Keyword::Float
                | Keyword::Double
                | Keyword::Unsigned
                | Keyword::Signed
                | Keyword::Const
                | Keyword::Volatile
                | Keyword::Class
                | Keyword::Struct
                | Keyword::Union
                | Keyword::Enum,
            ) => true,
            TokenKind::Ident(name) => self.type_names.contains(name),
            _ => false,
        }
    }

    /// Parses a type: qualifiers, a base type, then `*` / `&` / `C::*` suffixes.
    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut is_const = false;
        let mut is_volatile = false;
        loop {
            if self.eat_keyword(Keyword::Const) {
                is_const = true;
            } else if self.eat_keyword(Keyword::Volatile) {
                is_volatile = true;
            } else {
                break;
            }
        }
        // Elaborated specifier: `struct S x;` — skip the keyword.
        if matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Class | Keyword::Struct | Keyword::Union | Keyword::Enum)
        ) && matches!(self.peek_at(1), TokenKind::Ident(_))
            && !self.peek_at(2).is_punct(Punct::LBrace)
            && !self.peek_at(2).is_punct(Punct::Colon)
        {
            self.bump();
        }
        let mut kind = match self.bump() {
            TokenKind::Keyword(Keyword::Void) => TypeKind::Void,
            TokenKind::Keyword(Keyword::Bool) => TypeKind::Bool,
            TokenKind::Keyword(Keyword::Char) => TypeKind::Char,
            TokenKind::Keyword(Keyword::Short) => {
                self.eat_keyword(Keyword::Int);
                TypeKind::Short
            }
            TokenKind::Keyword(Keyword::Int) => TypeKind::Int,
            TokenKind::Keyword(Keyword::Long) => {
                self.eat_keyword(Keyword::Long);
                self.eat_keyword(Keyword::Int);
                TypeKind::Long
            }
            TokenKind::Keyword(Keyword::Float) => TypeKind::Float,
            TokenKind::Keyword(Keyword::Double) => TypeKind::Double,
            TokenKind::Keyword(Keyword::Unsigned | Keyword::Signed) => match self.peek() {
                TokenKind::Keyword(Keyword::Char) => {
                    self.bump();
                    TypeKind::Char
                }
                TokenKind::Keyword(Keyword::Short) => {
                    self.bump();
                    self.eat_keyword(Keyword::Int);
                    TypeKind::Short
                }
                TokenKind::Keyword(Keyword::Long) => {
                    self.bump();
                    self.eat_keyword(Keyword::Int);
                    TypeKind::Long
                }
                TokenKind::Keyword(Keyword::Int) => {
                    self.bump();
                    TypeKind::Int
                }
                _ => TypeKind::Int,
            },
            TokenKind::Ident(name) => TypeKind::Named(name),
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::Unexpected {
                        expected: "type".to_string(),
                        found: self.tokens[self.pos - 1].kind.describe(),
                    },
                    self.prev_span(),
                ))
            }
        };
        // Trailing qualifiers (`int const`).
        loop {
            if self.eat_keyword(Keyword::Const) {
                is_const = true;
            } else if self.eat_keyword(Keyword::Volatile) {
                is_volatile = true;
            } else {
                break;
            }
        }
        // Pointer / reference / member-pointer suffixes.
        loop {
            if self.at_punct(Punct::Star) {
                self.bump();
                let inner = Type {
                    kind,
                    is_const,
                    is_volatile,
                };
                kind = TypeKind::Pointer(Box::new(inner));
                is_const = false;
                is_volatile = false;
                // `T* const`, `T* volatile`
                loop {
                    if self.eat_keyword(Keyword::Const) {
                        is_const = true;
                    } else if self.eat_keyword(Keyword::Volatile) {
                        is_volatile = true;
                    } else {
                        break;
                    }
                }
            } else if self.at_punct(Punct::Amp) {
                self.bump();
                let inner = Type {
                    kind,
                    is_const,
                    is_volatile,
                };
                kind = TypeKind::Reference(Box::new(inner));
                is_const = false;
                is_volatile = false;
            } else if let TokenKind::Ident(cls) = self.peek() {
                // Member-pointer type `T C::*`.
                if self.peek_at(1).is_punct(Punct::ColonColon)
                    && self.peek_at(2).is_punct(Punct::Star)
                {
                    let cls = cls.clone();
                    self.bump();
                    self.bump();
                    self.bump();
                    let inner = Type {
                        kind,
                        is_const,
                        is_volatile,
                    };
                    kind = TypeKind::MemberPointer {
                        class: cls,
                        pointee: Box::new(inner),
                    };
                    is_const = false;
                    is_volatile = false;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(Type {
            kind,
            is_const,
            is_volatile,
        })
    }

    /// Parses a declarator after the base type: an optional function-pointer
    /// wrapper, the name, then array suffixes. Returns `(name, full type,
    /// was_function_pointer)`.
    fn parse_declarator(&mut self, base: Type) -> Result<(String, Type, bool), ParseError> {
        let (name, ty, fp) = self.parse_declarator_opt_name(base)?;
        match name {
            Some(n) => Ok((n, ty, fp)),
            None => Err(self.unexpected("declarator name")),
        }
    }

    fn parse_declarator_opt_name(
        &mut self,
        base: Type,
    ) -> Result<(Option<String>, Type, bool), ParseError> {
        // Function pointer declarator: `RET (*name)(params)`.
        if self.at_punct(Punct::LParen) && self.peek_at(1).is_punct(Punct::Star) {
            self.bump();
            self.bump();
            let name = match self.peek().clone() {
                TokenKind::Ident(n) => {
                    self.bump();
                    Some(n)
                }
                _ => None,
            };
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::LParen)?;
            let mut params = Vec::new();
            if !self.at_punct(Punct::RParen) {
                if self.at_keyword(Keyword::Void) && self.peek_at(1).is_punct(Punct::RParen) {
                    self.bump();
                } else {
                    loop {
                        let pty = self.parse_type()?;
                        // Parameter names inside function-pointer types are
                        // allowed and ignored.
                        if let TokenKind::Ident(_) = self.peek() {
                            self.bump();
                        }
                        params.push(pty);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
            let fn_ty = Type::plain(TypeKind::Function(Box::new(FnType { ret: base, params })));
            return Ok((name, fn_ty.pointer_to(), true));
        }
        let name = match self.peek().clone() {
            TokenKind::Ident(n) => {
                self.bump();
                Some(n)
            }
            _ => None,
        };
        let mut ty = base;
        while self.at_punct(Punct::LBracket) {
            self.bump();
            let len = match self.bump() {
                TokenKind::IntLit(v) if v >= 0 => v as usize,
                _ => return Err(self.unexpected("array length")),
            };
            self.expect_punct(Punct::RBracket)?;
            ty = Type::plain(TypeKind::Array(Box::new(ty), len));
        }
        Ok((name, ty, false))
    }

    // ----- statements ------------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let start = self.span();
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(self.prev_span()),
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let kind = match self.peek() {
            TokenKind::Punct(Punct::LBrace) => StmtKind::Block(self.parse_block()?),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                StmtKind::Empty
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                StmtKind::If { cond, then, els }
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                StmtKind::While { cond, body }
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.unexpected("`while` after `do` body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::DoWhile { body, cond }
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.at_punct(Punct::Semi) {
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.parse_decl_or_expr_stmt()?))
                };
                let cond = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.at_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Continue
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrutinee = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::LBrace)?;
                let mut arms = Vec::new();
                while !self.at_punct(Punct::RBrace) {
                    let arm_start = self.span();
                    let value = if self.eat_keyword(Keyword::Case) {
                        let v = self.parse_cond_expr()?;
                        self.expect_punct(Punct::Colon)?;
                        Some(v)
                    } else if self.eat_keyword(Keyword::Default) {
                        self.expect_punct(Punct::Colon)?;
                        None
                    } else {
                        return Err(self.unexpected("`case`, `default`, or `}`"));
                    };
                    let mut stmts = Vec::new();
                    while !self.at_punct(Punct::RBrace)
                        && !self.at_keyword(Keyword::Case)
                        && !self.at_keyword(Keyword::Default)
                    {
                        stmts.push(self.parse_stmt()?);
                    }
                    arms.push(SwitchArm {
                        value,
                        stmts,
                        span: arm_start.to(self.prev_span()),
                    });
                }
                self.expect_punct(Punct::RBrace)?;
                StmtKind::Switch { scrutinee, arms }
            }
            _ => return self.parse_decl_or_expr_stmt(),
        };
        Ok(Stmt {
            kind,
            span: start.to(self.prev_span()),
        })
    }

    /// Parses either a local declaration or an expression statement
    /// (both end with `;`). Used for plain statements and `for` inits.
    fn parse_decl_or_expr_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        if self.is_decl_start() {
            let base_ty = self.parse_type()?;
            let (name, ty, _) = self.parse_declarator(base_ty)?;
            let init = if self.eat_punct(Punct::Eq) {
                LocalInit::Expr(self.parse_assign_expr()?)
            } else if self.at_punct(Punct::LParen) {
                self.bump();
                let mut args = Vec::new();
                if !self.at_punct(Punct::RParen) {
                    loop {
                        args.push(self.parse_assign_expr()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                self.expect_punct(Punct::RParen)?;
                LocalInit::Ctor(args)
            } else {
                LocalInit::Default
            };
            self.expect_punct(Punct::Semi)?;
            Ok(Stmt {
                kind: StmtKind::Decl(LocalDecl { name, ty, init }),
                span: start.to(self.prev_span()),
            })
        } else {
            let expr = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            Ok(Stmt {
                kind: StmtKind::Expr(expr),
                span: start.to(self.prev_span()),
            })
        }
    }

    /// Decides whether the statement at the cursor is a declaration.
    ///
    /// Built-in type keywords and qualifiers always start declarations. A
    /// known type *name* starts a declaration only when followed by a
    /// declarator shape (`T x`, `T* x`, `T& x`, `T (*x)(...)`), mirroring
    /// the C++ disambiguation rule.
    fn is_decl_start(&self) -> bool {
        match self.peek() {
            TokenKind::Keyword(
                Keyword::Void
                | Keyword::Bool
                | Keyword::Char
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long
                | Keyword::Float
                | Keyword::Double
                | Keyword::Unsigned
                | Keyword::Signed
                | Keyword::Const
                | Keyword::Volatile,
            ) => true,
            TokenKind::Ident(name) if self.type_names.contains(name) => {
                let mut n = 1;
                // Skip pointer/reference tokens.
                loop {
                    match self.peek_at(n) {
                        TokenKind::Punct(Punct::Star | Punct::Amp) => n += 1,
                        TokenKind::Keyword(Keyword::Const | Keyword::Volatile) => n += 1,
                        _ => break,
                    }
                }
                match self.peek_at(n) {
                    TokenKind::Ident(_) => true,
                    // `T (*x)(...)` function-pointer declarator.
                    TokenKind::Punct(Punct::LParen) if n == 1 => {
                        self.peek_at(2).is_punct(Punct::Star)
                            && matches!(self.peek_at(3), TokenKind::Ident(_))
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    // ----- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_assign_expr()?;
        while self.at_punct(Punct::Comma) {
            self.bump();
            let rhs = self.parse_assign_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Comma {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_cond_expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Eq) => AssignOp::Assign,
            TokenKind::Punct(Punct::PlusEq) => AssignOp::AddAssign,
            TokenKind::Punct(Punct::MinusEq) => AssignOp::SubAssign,
            TokenKind::Punct(Punct::StarEq) => AssignOp::MulAssign,
            TokenKind::Punct(Punct::SlashEq) => AssignOp::DivAssign,
            TokenKind::Punct(Punct::PercentEq) => AssignOp::RemAssign,
            TokenKind::Punct(Punct::AmpEq) => AssignOp::AndAssign,
            TokenKind::Punct(Punct::PipeEq) => AssignOp::OrAssign,
            TokenKind::Punct(Punct::CaretEq) => AssignOp::XorAssign,
            TokenKind::Punct(Punct::ShlEq) => AssignOp::ShlAssign,
            TokenKind::Punct(Punct::ShrEq) => AssignOp::ShrAssign,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn parse_cond_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_assign_expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.parse_assign_expr()?;
            let span = cond.span.to(els.span);
            return Ok(Expr::new(
                ExprKind::Cond {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn binary_op_at(&self) -> Option<(BinaryOp, u8)> {
        // Precedence levels: higher binds tighter.
        let (op, prec) = match self.peek() {
            TokenKind::Punct(Punct::PipePipe) => (BinaryOp::LogOr, 1),
            TokenKind::Punct(Punct::AmpAmp) => (BinaryOp::LogAnd, 2),
            TokenKind::Punct(Punct::Pipe) => (BinaryOp::BitOr, 3),
            TokenKind::Punct(Punct::Caret) => (BinaryOp::BitXor, 4),
            TokenKind::Punct(Punct::Amp) => (BinaryOp::BitAnd, 5),
            TokenKind::Punct(Punct::EqEq) => (BinaryOp::Eq, 6),
            TokenKind::Punct(Punct::NotEq) => (BinaryOp::Ne, 6),
            TokenKind::Punct(Punct::Lt) => (BinaryOp::Lt, 7),
            TokenKind::Punct(Punct::Gt) => (BinaryOp::Gt, 7),
            TokenKind::Punct(Punct::Le) => (BinaryOp::Le, 7),
            TokenKind::Punct(Punct::Ge) => (BinaryOp::Ge, 7),
            TokenKind::Punct(Punct::Shl) => (BinaryOp::Shl, 8),
            TokenKind::Punct(Punct::Shr) => (BinaryOp::Shr, 8),
            TokenKind::Punct(Punct::Plus) => (BinaryOp::Add, 9),
            TokenKind::Punct(Punct::Minus) => (BinaryOp::Sub, 9),
            TokenKind::Punct(Punct::Star) => (BinaryOp::Mul, 10),
            TokenKind::Punct(Punct::Slash) => (BinaryOp::Div, 10),
            TokenKind::Punct(Punct::Percent) => (BinaryOp::Rem, 10),
            _ => return None,
        };
        Some((op, prec))
    }

    fn parse_binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_pm_expr()?;
        while let Some((op, prec)) = self.binary_op_at() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    /// Pointer-to-member binding: `e .* pm` and `e ->* pm` bind tighter
    /// than multiplication but looser than unary operators.
    fn parse_pm_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary_expr()?;
        loop {
            let arrow = if self.at_punct(Punct::DotStar) {
                false
            } else if self.at_punct(Punct::ArrowStar) {
                true
            } else {
                break;
            };
            self.bump();
            let ptr = self.parse_unary_expr()?;
            let span = lhs.span.to(ptr.span);
            lhs = Expr::new(
                ExprKind::PtrMemApply {
                    base: Box::new(lhs),
                    arrow,
                    ptr: Box::new(ptr),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::AddrOf),
            TokenKind::Punct(Punct::PlusPlus) => Some(UnaryOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            // `&Class::member` is a pointer-to-member creation.
            if op == UnaryOp::AddrOf {
                if let TokenKind::Ident(cls) = self.peek() {
                    if self.type_names.contains(cls) && self.peek_at(1).is_punct(Punct::ColonColon)
                    {
                        let class = cls.clone();
                        self.bump();
                        self.bump();
                        let member = self.expect_ident()?;
                        return Ok(Expr::new(
                            ExprKind::PtrToMember { class, member },
                            start.to(self.prev_span()),
                        ));
                    }
                }
            }
            let operand = self.parse_unary_expr()?;
            let span = start.to(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    expr: Box::new(operand),
                },
                span,
            ));
        }
        match self.peek() {
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.at_punct(Punct::LParen) && self.starts_type_at(1) {
                    self.bump();
                    let ty = self.parse_type()?;
                    self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(
                        ExprKind::SizeofType(ty),
                        start.to(self.prev_span()),
                    ))
                } else {
                    let operand = self.parse_unary_expr()?;
                    let span = start.to(operand.span);
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(operand)), span))
                }
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let ty = self.parse_type()?;
                if self.eat_punct(Punct::LBracket) {
                    let len = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    return Ok(Expr::new(
                        ExprKind::New {
                            ty,
                            args: Vec::new(),
                            array_len: Some(Box::new(len)),
                        },
                        start.to(self.prev_span()),
                    ));
                }
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) {
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
                Ok(Expr::new(
                    ExprKind::New {
                        ty,
                        args,
                        array_len: None,
                    },
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Keyword(Keyword::Delete) => {
                self.bump();
                let is_array = if self.at_punct(Punct::LBracket) {
                    self.bump();
                    self.expect_punct(Punct::RBracket)?;
                    true
                } else {
                    false
                };
                let operand = self.parse_unary_expr()?;
                let span = start.to(operand.span);
                Ok(Expr::new(
                    ExprKind::Delete {
                        expr: Box::new(operand),
                        is_array,
                    },
                    span,
                ))
            }
            TokenKind::Keyword(
                Keyword::StaticCast
                | Keyword::ReinterpretCast
                | Keyword::ConstCast
                | Keyword::DynamicCast,
            ) => {
                let style = match self.bump() {
                    TokenKind::Keyword(Keyword::StaticCast) => CastStyle::Static,
                    TokenKind::Keyword(Keyword::ReinterpretCast) => CastStyle::Reinterpret,
                    TokenKind::Keyword(Keyword::ConstCast) => CastStyle::Const,
                    TokenKind::Keyword(Keyword::DynamicCast) => CastStyle::Dynamic,
                    _ => unreachable!(),
                };
                self.expect_punct(Punct::Lt)?;
                let ty = self.parse_type()?;
                self.expect_punct(Punct::Gt)?;
                self.expect_punct(Punct::LParen)?;
                let operand = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(Expr::new(
                    ExprKind::Cast {
                        style,
                        ty,
                        expr: Box::new(operand),
                    },
                    start.to(self.prev_span()),
                ))
            }
            // C-style cast `(T)e` — requires the parenthesized tokens to be a
            // type followed by something that can begin a unary expression.
            TokenKind::Punct(Punct::LParen) if self.is_cstyle_cast() => {
                self.bump();
                let ty = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.parse_unary_expr()?;
                let span = start.to(operand.span);
                Ok(Expr::new(
                    ExprKind::Cast {
                        style: CastStyle::CStyle,
                        ty,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            _ => self.parse_postfix_expr(),
        }
    }

    /// Lookahead test for a C-style cast at an opening parenthesis.
    fn is_cstyle_cast(&self) -> bool {
        if !self.starts_type_at(1) {
            return false;
        }
        // Walk past the type tokens to find the matching `)`.
        let mut n = 1;
        loop {
            match self.peek_at(n) {
                TokenKind::Keyword(
                    Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Const
                    | Keyword::Volatile,
                ) => n += 1,
                TokenKind::Ident(name) if n == 1 && self.type_names.contains(name) => n += 1,
                TokenKind::Punct(Punct::Star | Punct::Amp) => n += 1,
                _ => break,
            }
        }
        if n == 1 || !self.peek_at(n).is_punct(Punct::RParen) {
            return false;
        }
        // The token after `)` must begin a unary expression.
        matches!(
            self.peek_at(n + 1),
            TokenKind::Ident(_)
                | TokenKind::IntLit(_)
                | TokenKind::FloatLit(_)
                | TokenKind::CharLit(_)
                | TokenKind::StrLit(_)
                | TokenKind::Punct(
                    Punct::LParen
                        | Punct::Star
                        | Punct::Amp
                        | Punct::Minus
                        | Punct::Plus
                        | Punct::Bang
                        | Punct::Tilde
                        | Punct::PlusPlus
                        | Punct::MinusMinus
                )
                | TokenKind::Keyword(
                    Keyword::This
                        | Keyword::New
                        | Keyword::Sizeof
                        | Keyword::True
                        | Keyword::False
                        | Keyword::Nullptr
                )
        )
    }

    fn parse_postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::Dot | Punct::Arrow) => {
                    let arrow = self.at_punct(Punct::Arrow);
                    self.bump();
                    let first = self.expect_ident()?;
                    let (qualifier, name) = if self.at_punct(Punct::ColonColon) {
                        self.bump();
                        let m = self.expect_ident()?;
                        (Some(first), m)
                    } else {
                        (None, first)
                    };
                    let span = expr.span.to(self.prev_span());
                    expr = Expr::new(
                        ExprKind::Member {
                            base: Box::new(expr),
                            arrow,
                            qualifier,
                            name,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = expr.span.to(self.prev_span());
                    expr = Expr::new(
                        ExprKind::Index {
                            base: Box::new(expr),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    let span = expr.span.to(self.prev_span());
                    expr = Expr::new(
                        ExprKind::Call {
                            callee: Box::new(expr),
                            args,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let span = expr.span.to(self.prev_span());
                    expr = Expr::new(
                        ExprKind::Postfix {
                            op: PostfixOp::PostInc,
                            expr: Box::new(expr),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let span = expr.span.to(self.prev_span());
                    expr = Expr::new(
                        ExprKind::Postfix {
                            op: PostfixOp::PostDec,
                            expr: Box::new(expr),
                        },
                        span,
                    );
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_primary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let kind = match self.bump() {
            TokenKind::IntLit(v) => ExprKind::IntLit(v),
            TokenKind::FloatLit(v) => ExprKind::FloatLit(v),
            TokenKind::CharLit(c) => ExprKind::CharLit(c),
            TokenKind::StrLit(s) => ExprKind::StrLit(s),
            TokenKind::Keyword(Keyword::True) => ExprKind::BoolLit(true),
            TokenKind::Keyword(Keyword::False) => ExprKind::BoolLit(false),
            TokenKind::Keyword(Keyword::Nullptr) => ExprKind::Null,
            TokenKind::Keyword(Keyword::This) => ExprKind::This,
            TokenKind::Ident(name) => ExprKind::Ident(name),
            TokenKind::Punct(Punct::LParen) => {
                let inner = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(inner);
            }
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::Unexpected {
                        expected: "expression".to_string(),
                        found: other.describe(),
                    },
                    start,
                ))
            }
        };
        Ok(Expr::new(kind, start.to(self.prev_span())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        match parse(src) {
            Ok(tu) => tu,
            Err(e) => panic!("parse error: {e} in\n{src}"),
        }
    }

    #[test]
    fn parses_empty_unit() {
        let tu = parse_ok("");
        assert!(tu.classes.is_empty());
        assert!(tu.functions.is_empty());
    }

    #[test]
    fn parses_simple_class() {
        let tu = parse_ok("class A { public: int x; int f() { return x; } };");
        let a = tu.class("A").unwrap();
        assert_eq!(a.kind, ClassKind::Class);
        assert_eq!(a.data_members.len(), 1);
        assert_eq!(a.data_members[0].access, Access::Public);
        assert_eq!(a.methods.len(), 1);
        assert_eq!(a.methods[0].kind, FunctionKind::Method);
    }

    #[test]
    fn struct_members_default_public_class_private() {
        let tu = parse_ok("struct S { int a; }; class C { int b; };");
        assert_eq!(
            tu.class("S").unwrap().data_members[0].access,
            Access::Public
        );
        assert_eq!(
            tu.class("C").unwrap().data_members[0].access,
            Access::Private
        );
    }

    #[test]
    fn parses_inheritance_with_virtual_bases() {
        let tu = parse_ok(
            "class A { }; class B : public A { }; class C : public virtual A, private B { };",
        );
        let c = tu.class("C").unwrap();
        assert_eq!(c.bases.len(), 2);
        assert!(c.bases[0].is_virtual);
        assert_eq!(c.bases[0].access, Access::Public);
        assert!(!c.bases[1].is_virtual);
        assert_eq!(c.bases[1].access, Access::Private);
    }

    #[test]
    fn parses_constructor_with_init_list() {
        let tu = parse_ok("class A { public: int x; int y; A(int v) : x(v), y(0) { } };");
        let ctor = tu.class("A").unwrap().constructors().next().unwrap();
        assert_eq!(ctor.params.len(), 1);
        assert_eq!(ctor.inits.len(), 2);
        assert_eq!(ctor.inits[0].name, "x");
    }

    #[test]
    fn parses_virtual_destructor_and_pure_virtual() {
        let tu = parse_ok("class A { public: virtual ~A() { } virtual int f() = 0; };");
        let a = tu.class("A").unwrap();
        let dtor = a.destructor().unwrap();
        assert!(dtor.is_virtual);
        assert!(dtor.body.is_some());
        let f = a.methods.iter().find(|m| m.name == "f").unwrap();
        assert!(f.is_virtual);
        assert!(f.body.is_none());
    }

    #[test]
    fn parses_union() {
        let tu = parse_ok("union U { int i; float f; };");
        let u = tu.class("U").unwrap();
        assert_eq!(u.kind, ClassKind::Union);
        assert_eq!(u.data_members.len(), 2);
    }

    #[test]
    fn parses_enum_with_values() {
        let tu = parse_ok("enum E { A, B = 5, C };");
        assert_eq!(
            tu.enums[0].variants,
            vec![("A".into(), 0), ("B".into(), 5), ("C".into(), 6)]
        );
    }

    #[test]
    fn parses_globals_and_main() {
        let tu = parse_ok("int g = 3; int main() { return g; }");
        assert_eq!(tu.globals.len(), 1);
        assert!(tu.globals[0].init.is_some());
        assert!(tu.function("main").is_some());
    }

    #[test]
    fn decl_vs_expr_disambiguation() {
        let tu = parse_ok(
            "class A { public: int x; };\n\
             int main() { A a; A* p; p = &a; int y = p->x; return y; }",
        );
        let main = tu.function("main").unwrap();
        let body = main.body.as_ref().unwrap();
        assert!(matches!(body.stmts[0].kind, StmtKind::Decl(_)));
        assert!(matches!(body.stmts[1].kind, StmtKind::Decl(_)));
        assert!(matches!(body.stmts[2].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn multiplication_of_non_type_is_expression() {
        let tu = parse_ok("int main() { int a = 2; int b = 3; int c = a * b; return c; }");
        let main = tu.function("main").unwrap();
        assert_eq!(main.body.as_ref().unwrap().stmts.len(), 4);
    }

    #[test]
    fn parses_member_access_chains() {
        let tu = parse_ok(
            "struct N { int v; }; struct M { N n; };\n\
             int main() { M m; return m.n.v; }",
        );
        let main = tu.function("main").unwrap();
        let ret = &main.body.as_ref().unwrap().stmts[1];
        match &ret.kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Member { base, name, .. } => {
                    assert_eq!(name, "v");
                    assert!(matches!(base.kind, ExprKind::Member { .. }));
                }
                other => panic!("expected member access, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_qualified_member_access() {
        let tu = parse_ok(
            "struct A { int m; }; struct B : public A { int m; };\n\
             int main() { B b; return b.A::m; }",
        );
        let main = tu.function("main").unwrap();
        let StmtKind::Return(Some(e)) = &main.body.as_ref().unwrap().stmts[1].kind else {
            panic!("expected return")
        };
        match &e.kind {
            ExprKind::Member {
                qualifier, name, ..
            } => {
                assert_eq!(qualifier.as_deref(), Some("A"));
                assert_eq!(name, "m");
            }
            other => panic!("expected qualified access, got {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_to_member() {
        let tu = parse_ok(
            "struct A { int m; };\n\
             int main() { int A::* pm; pm = &A::m; A a; return a.*pm; }",
        );
        let main = tu.function("main").unwrap();
        let stmts = &main.body.as_ref().unwrap().stmts;
        let StmtKind::Decl(decl) = &stmts[0].kind else {
            panic!("expected decl")
        };
        assert!(matches!(decl.ty.kind, TypeKind::MemberPointer { .. }));
        let StmtKind::Expr(assign) = &stmts[1].kind else {
            panic!("expected expr stmt")
        };
        let ExprKind::Assign { rhs, .. } = &assign.kind else {
            panic!("expected assignment")
        };
        assert!(matches!(rhs.kind, ExprKind::PtrToMember { .. }));
        let StmtKind::Return(Some(ret)) = &stmts[3].kind else {
            panic!("expected return")
        };
        assert!(matches!(ret.kind, ExprKind::PtrMemApply { .. }));
    }

    #[test]
    fn parses_new_delete() {
        let tu = parse_ok(
            "struct A { int x; A(int v) { x = v; } };\n\
             int main() { A* p = new A(3); int* q = new int[10]; delete p; delete[] q; return 0; }",
        );
        let main = tu.function("main").unwrap();
        assert_eq!(main.body.as_ref().unwrap().stmts.len(), 5);
    }

    #[test]
    fn parses_cstyle_and_named_casts() {
        let tu = parse_ok(
            "struct A { int x; }; struct B : public A { int y; };\n\
             int main() { A* a = new B(); B* b = (B*)a; B* c = static_cast<B*>(a); double d = (double)1; return 0; }",
        );
        let main = tu.function("main").unwrap();
        let stmts = &main.body.as_ref().unwrap().stmts;
        let StmtKind::Decl(d1) = &stmts[1].kind else {
            panic!()
        };
        let LocalInit::Expr(e) = &d1.init else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Cast {
                style: CastStyle::CStyle,
                ..
            }
        ));
        let StmtKind::Decl(d2) = &stmts[2].kind else {
            panic!()
        };
        let LocalInit::Expr(e2) = &d2.init else {
            panic!()
        };
        assert!(matches!(
            e2.kind,
            ExprKind::Cast {
                style: CastStyle::Static,
                ..
            }
        ));
    }

    #[test]
    fn parenthesized_expression_is_not_cast() {
        let tu = parse_ok("int main() { int a = 1; int b = (a) + 2; return b; }");
        let main = tu.function("main").unwrap();
        let StmtKind::Decl(d) = &main.body.as_ref().unwrap().stmts[1].kind else {
            panic!()
        };
        let LocalInit::Expr(e) = &d.init else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_sizeof_forms() {
        let tu = parse_ok(
            "struct A { int x; };\n\
             int main() { A a; int s = sizeof(A) + sizeof a; return s; }",
        );
        assert!(tu.function("main").is_some());
    }

    #[test]
    fn parses_control_flow() {
        let tu = parse_ok(
            "int main() {\n\
               int total = 0;\n\
               for (int i = 0; i < 10; i++) { if (i % 2 == 0) total += i; else continue; }\n\
               while (total > 5) { total--; }\n\
               do { total++; } while (total < 3);\n\
               return total;\n\
             }",
        );
        assert!(tu.function("main").is_some());
    }

    #[test]
    fn parses_function_pointer_declarations_and_calls() {
        let tu = parse_ok(
            "int add(int a, int b) { return a + b; }\n\
             int main() { int (*fp)(int, int); fp = &add; return fp(1, 2); }",
        );
        let main = tu.function("main").unwrap();
        let StmtKind::Decl(d) = &main.body.as_ref().unwrap().stmts[0].kind else {
            panic!("expected function-pointer declaration")
        };
        assert!(matches!(d.ty.kind, TypeKind::Pointer(_)));
    }

    #[test]
    fn parses_ternary_and_logical() {
        let tu = parse_ok("int main() { int a = 1; int b = a > 0 && a < 5 ? 2 : 3; return b; }");
        assert!(tu.function("main").is_some());
    }

    #[test]
    fn duplicate_class_is_error() {
        assert!(parse("class A { }; class A { };").is_err());
    }

    #[test]
    fn duplicate_function_is_error() {
        assert!(parse("int f() { return 0; } int f() { return 1; }").is_err());
    }

    #[test]
    fn prototype_then_definition_is_ok() {
        let tu = parse_ok("int f(int x); int f(int x) { return x; } int main() { return f(1); }");
        assert_eq!(tu.functions.len(), 2);
        assert!(tu.function("f").unwrap().body.is_some());
    }

    #[test]
    fn unsupported_constructs_error_cleanly() {
        assert!(parse("typedef int myint;").is_err());
        assert!(parse("class A { static int x; };").is_err());
    }

    #[test]
    fn parses_switch_with_cases_and_default() {
        let tu = parse_ok(
            "enum E { RED = 1, BLUE = 2 };
             int main() {
               int x = 2;
               switch (x) {
                 case RED:
                   x = 10;
                   break;
                 case 2:
                 case 3:
                   x = 20;
                   break;
                 default:
                   x = 30;
               }
               return x;
             }",
        );
        let main = tu.function("main").unwrap();
        let StmtKind::Switch { arms, .. } = &main.body.as_ref().unwrap().stmts[1].kind else {
            panic!("expected switch");
        };
        assert_eq!(arms.len(), 4);
        assert!(arms[0].value.is_some());
        assert!(arms[3].value.is_none());
        assert!(arms[1].stmts.is_empty(), "empty fallthrough arm");
    }

    #[test]
    fn forward_references_between_classes() {
        let tu = parse_ok("class B; class A { public: B* b; }; class B { public: A* a; };");
        assert_eq!(tu.classes.len(), 2);
    }

    #[test]
    fn parses_volatile_member() {
        let tu = parse_ok("class A { public: volatile int flag; };");
        assert!(tu.class("A").unwrap().data_members[0].ty.is_volatile);
    }

    #[test]
    fn parses_arrays() {
        let tu = parse_ok(
            "struct A { int buf[16]; };\n\
             int g[4];\n\
             int main() { int local[8]; A a; a.buf[0] = 1; local[2] = a.buf[0]; return local[2]; }",
        );
        let a = tu.class("A").unwrap();
        assert!(matches!(a.data_members[0].ty.kind, TypeKind::Array(_, 16)));
        assert!(matches!(tu.globals[0].ty.kind, TypeKind::Array(_, 4)));
    }

    #[test]
    fn parses_method_without_body_as_library_decl() {
        let tu = parse_ok("class Lib { public: int get(); int field; };");
        let lib = tu.class("Lib").unwrap();
        assert!(lib.methods[0].body.is_none());
    }

    #[test]
    fn parses_figure1_program() {
        // The paper's Figure 1 example, transliterated.
        let src = r#"
            class N {
            public:
                int mn1; /* live */
                int mn2; /* dead */
            };
            class A {
            public:
                virtual int f() { return ma1; }
                int ma1;
                int ma2;
                int ma3;
            };
            class B : public A {
            public:
                virtual int f() { return mb1; }
                int mb1;
                N mb2;
                int mb3;
                int mb4;
            };
            class C : public A {
            public:
                virtual int f() { return mc1; }
                int mc1;
            };
            int foo(int* x) { return (*x) + 1; }
            int main() {
                A a; B b; C c;
                A* ap;
                a.ma3 = b.mb3 + 1;
                int i = 10;
                if (i < 20) { ap = &a; } else { ap = &b; }
                return ap->f() + b.mb2.mn1 + foo(&b.mb4);
            }
        "#;
        let tu = parse_ok(src);
        assert_eq!(tu.classes.len(), 4);
        assert_eq!(tu.functions.len(), 2);
        assert_eq!(tu.data_member_count(), 10);
    }
}

#[cfg(test)]
mod out_of_line_tests {
    use super::*;

    #[test]
    fn attaches_out_of_line_body_to_declaration() {
        let tu = parse(
            "class Stack {\n\
             public:\n\
                 int top;\n\
                 int pop();\n\
             };\n\
             int Stack::pop() { int v = top; top = top - 1; return v; }\n\
             int main() { Stack s; s.top = 3; return s.pop(); }",
        )
        .expect("parse");
        let stack = tu.class("Stack").unwrap();
        let pop = stack.methods.iter().find(|m| m.name == "pop").unwrap();
        assert!(pop.body.is_some(), "out-of-line body must attach");
        assert_eq!(stack.methods.len(), 1, "no duplicate method entry");
    }

    #[test]
    fn out_of_line_params_override_declaration_names() {
        let tu = parse(
            "class Adder { public: int add(int a, int b); };\n\
             int Adder::add(int x, int y) { return x + y; }\n\
             int main() { Adder a; return a.add(1, 2); }",
        )
        .expect("parse");
        let add = &tu.class("Adder").unwrap().methods[0];
        assert_eq!(add.params[0].name, "x");
    }

    #[test]
    fn out_of_line_const_method_is_accepted() {
        assert!(parse(
            "class A { public: int x; int get() const; };\n\
             int A::get() const { return x; }\n\
             int main() { A a; return a.get(); }",
        )
        .is_ok());
    }

    #[test]
    fn out_of_line_without_declaration_is_an_error() {
        let err = parse(
            "class A { public: int x; };\n\
             int A::mystery() { return x; }\n\
             int main() { return 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("declaration"));
    }

    #[test]
    fn out_of_line_for_unknown_class_is_an_error() {
        // `Ghost` is pre-scanned as a type name via the forward decl but
        // never defined.
        let err = parse(
            "class Ghost;\n\
             int Ghost::haunt() { return 1; }\n\
             int main() { return 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("class `Ghost`"));
    }

    #[test]
    fn duplicate_out_of_line_body_is_an_error() {
        let err = parse(
            "class A { public: int f() { return 1; } };\n\
             int A::f() { return 2; }\n\
             int main() { return 0; }",
        )
        .unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::Duplicate(_)));
    }

    #[test]
    fn out_of_line_method_works_end_to_end_with_pointer_return() {
        let tu = parse(
            "class Node { public: Node* next; int v; Node* tail(); };\n\
             Node* Node::tail() {\n\
                 Node* cur = this;\n\
                 while (cur->next != nullptr) { cur = cur->next; }\n\
                 return cur;\n\
             }\n\
             int main() { Node a; Node b; a.next = &b; a.v = 1; b.v = 2; b.next = nullptr; return a.tail()->v; }",
        )
        .expect("parse");
        assert!(tu.class("Node").unwrap().methods[0].body.is_some());
    }
}
