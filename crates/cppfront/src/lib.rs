//! # ddm-cppfront
//!
//! Front end for the C++ subset analysed by the dead-data-member detector
//! (Sweeney & Tip, *A Study of Dead Data Members in C++ Applications*,
//! PLDI 1998).
//!
//! The subset covers everything the paper's algorithm treats specially:
//! classes/structs/unions, single/multiple/virtual inheritance, virtual
//! functions, constructors with initializer lists, destructors, pointers,
//! references, arrays, `new`/`delete`, C-style and named casts, `sizeof`,
//! qualified member access (`e.Y::m`), pointer-to-member expressions
//! (`&Z::m`, `e.*pm`), `volatile` members, and function pointers.
//!
//! # Examples
//!
//! ```
//! use ddm_cppfront::parse;
//!
//! let tu = parse(r#"
//!     class Point {
//!     public:
//!         int x;
//!         int y;
//!         Point(int px, int py) : x(px), y(py) { }
//!         int norm1() { return x + y; }
//!     };
//!     int main() { Point p(3, 4); return p.norm1(); }
//! "#)?;
//! assert_eq!(tu.classes.len(), 1);
//! assert_eq!(tu.class("Point").unwrap().data_members.len(), 2);
//! # Ok::<(), ddm_cppfront::ParseError>(())
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::TranslationUnit;
pub use diag::{ParseError, ParseErrorKind};
pub use parser::parse;
pub use pretty::{print_expr, print_stmt, print_unit};
pub use span::{LineCol, SourceMap, SourceSet, Span};
