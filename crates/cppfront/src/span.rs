//! Source positions, spans, and the source map used for diagnostics.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source buffer.
///
/// Spans are attached to every token and AST node so that later phases
/// (type checking, the dead-member analysis, the interpreter) can report
/// precise locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// A zero-width span at offset zero, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { lo: 0, hi: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A (1-based) line/column pair produced by [`SourceMap::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets back to line/column positions for one source file.
#[derive(Debug, Clone)]
pub struct SourceMap {
    name: String,
    src: String,
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds a source map for `src`, remembering `name` for diagnostics.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            src,
            line_starts,
        }
    }

    /// The file name given at construction time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The text covered by `span`. Out-of-range spans yield an empty string.
    pub fn snippet(&self, span: Span) -> &str {
        self.src
            .get(span.lo as usize..span.hi as usize)
            .unwrap_or("")
    }

    /// Converts a byte offset into a 1-based line/column pair.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the file (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Counts non-blank source lines, the metric used for the paper's
    /// "lines of code" column in Table 1.
    pub fn loc(&self) -> usize {
        self.src.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// A collection of per-TU [`SourceMap`]s: the provenance table of a
/// multi-TU (project-mode) run.
///
/// All spans in a linked program remain byte offsets **into their own
/// translation unit**; a diagnostic is rendered by pairing the span with
/// the TU it came from. `SourceSet` owns the maps, keyed by the position
/// the file was given on the command line (which is also the link
/// order).
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    maps: Vec<SourceMap>,
}

impl SourceSet {
    /// An empty set.
    pub fn new() -> Self {
        SourceSet::default()
    }

    /// Appends a TU and returns its index.
    pub fn push(&mut self, map: SourceMap) -> usize {
        self.maps.push(map);
        self.maps.len() - 1
    }

    /// The map for TU `index`, if present.
    pub fn get(&self, index: usize) -> Option<&SourceMap> {
        self.maps.get(index)
    }

    /// Number of TUs in the set.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Iterates the maps in TU (command-line) order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &SourceMap> {
        self.maps.iter()
    }

    /// Renders `span` of TU `index` as `file:line:col`. Falls back to the
    /// bare span when the TU index is unknown.
    pub fn locate(&self, index: usize, span: Span) -> String {
        match self.get(index) {
            Some(map) => format!("{}:{}", map.name(), map.lookup(span.lo)),
            None => format!("<tu {index}>:{span}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn lookup_first_line() {
        let map = SourceMap::new("t.cpp", "abc\ndef\n");
        assert_eq!(map.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn lookup_later_lines() {
        let map = SourceMap::new("t.cpp", "abc\ndef\nghi");
        assert_eq!(map.lookup(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.lookup(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.lookup(10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn lookup_at_newline_belongs_to_current_line() {
        let map = SourceMap::new("t.cpp", "ab\ncd");
        assert_eq!(map.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn snippet_returns_covered_text() {
        let map = SourceMap::new("t.cpp", "hello world");
        assert_eq!(map.snippet(Span::new(6, 11)), "world");
        assert_eq!(map.snippet(Span::new(100, 120)), "");
    }

    #[test]
    fn loc_skips_blank_lines() {
        let map = SourceMap::new("t.cpp", "int x;\n\n  \nint y;\n");
        assert_eq!(map.loc(), 2);
        assert_eq!(map.line_count(), 5);
    }

    #[test]
    fn empty_source_has_one_line() {
        let map = SourceMap::new("t.cpp", "");
        assert_eq!(map.line_count(), 1);
        assert_eq!(map.loc(), 0);
    }

    #[test]
    fn source_set_locates_spans_per_tu() {
        let mut set = SourceSet::new();
        assert!(set.is_empty());
        let a = set.push(SourceMap::new("a.cpp", "int x;\nint y;\n"));
        let b = set.push(SourceMap::new("b.cpp", "int z;\n"));
        assert_eq!((a, b), (0, 1));
        assert_eq!(set.len(), 2);
        assert_eq!(set.locate(0, Span::new(7, 12)), "a.cpp:2:1");
        assert_eq!(set.locate(1, Span::new(4, 5)), "b.cpp:1:5");
        assert_eq!(set.locate(9, Span::new(4, 5)), "<tu 9>:4..5");
        let names: Vec<&str> = set.iter().map(SourceMap::name).collect();
        assert_eq!(names, ["a.cpp", "b.cpp"]);
    }
}
