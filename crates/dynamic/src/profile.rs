//! Heap profiling: the paper's dynamic measurements (Table 2, Figure 4).
//!
//! The profiler replays a [`HeapTrace`] against the
//! [`LayoutEngine`] and a dead-member set,
//! computing:
//!
//! * **object space** — total bytes of all objects created during
//!   execution;
//! * **dead data member space** — bytes of those objects occupied by dead
//!   members;
//! * **high-water mark** — the maximum bytes of simultaneously live
//!   objects;
//! * **high-water mark without dead members** — the same maximum if dead
//!   members were removed from every object. As the paper notes, the two
//!   maxima may occur at *different* execution points, which is why both
//!   are tracked in a single replay rather than derived from each other.

use crate::heap::HeapTrace;
use ddm_core::Liveness;
use ddm_hierarchy::{ClassId, LayoutEngine, MemberRef, Program};
use std::collections::HashMap;

/// The paper's per-benchmark dynamic measurements, in bytes.
///
/// # Examples
///
/// ```
/// use ddm_dynamic::HeapProfile;
///
/// let profile = HeapProfile {
///     object_space: 1000,
///     dead_member_space: 116,
///     high_water_mark: 500,
///     high_water_mark_without_dead: 475,
///     objects_allocated: 10,
/// };
/// assert_eq!(profile.dead_space_percentage(), 11.6); // the paper's maximum
/// assert_eq!(profile.high_water_mark_reduction(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapProfile {
    /// Space occupied by all objects created during execution
    /// (Table 2, "Object Space").
    pub object_space: u64,
    /// Space within those objects occupied by dead data members
    /// (Table 2, "Dead Data Member Space").
    pub dead_member_space: u64,
    /// Maximum space occupied by objects at a single point in time
    /// (Table 2, "High Water Mark").
    pub high_water_mark: u64,
    /// The high-water mark if dead members are eliminated
    /// (Table 2, "High Water Mark w/o dead data members").
    pub high_water_mark_without_dead: u64,
    /// Number of objects allocated.
    pub objects_allocated: u64,
}

impl HeapProfile {
    /// Percentage of object space occupied by dead members (Figure 4's
    /// light-grey bar).
    pub fn dead_space_percentage(&self) -> f64 {
        if self.object_space == 0 {
            return 0.0;
        }
        100.0 * self.dead_member_space as f64 / self.object_space as f64
    }

    /// Percentage reduction of the high-water mark if dead members are
    /// eliminated (Figure 4's dark-grey bar).
    pub fn high_water_mark_reduction(&self) -> f64 {
        if self.high_water_mark == 0 {
            return 0.0;
        }
        100.0 * (self.high_water_mark - self.high_water_mark_without_dead) as f64
            / self.high_water_mark as f64
    }
}

/// Computes a [`HeapProfile`] by replaying `trace` under `liveness`.
///
/// # Examples
///
/// ```
/// use ddm_dynamic::{profile_trace, Interpreter, RunConfig};
/// use ddm_core::AnalysisPipeline;
///
/// let src = "class A { public: int live; int dead; };\n\
///            int main() { A* a = new A(); int v = a->live; delete a; return v; }";
/// let run = AnalysisPipeline::from_source(src)?;
/// let exec = Interpreter::new(run.program()).run(&RunConfig::default()).unwrap();
/// let profile = profile_trace(run.program(), &exec.trace, run.liveness());
/// assert_eq!(profile.object_space, 8);
/// assert_eq!(profile.dead_member_space, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn profile_trace(program: &Program, trace: &HeapTrace, liveness: &Liveness) -> HeapProfile {
    let layouts = LayoutEngine::new(program);
    let mut size_cache: HashMap<ClassId, (u64, u64)> = HashMap::new();
    let mut sizes = |class: ClassId| -> (u64, u64) {
        *size_cache.entry(class).or_insert_with(|| {
            let layout = layouts.layout(class);
            let total = layout.size as u64;
            let dead = layout.bytes_where(|m: MemberRef| liveness.is_dead(m)) as u64;
            (total, dead)
        })
    };

    let mut profile = HeapProfile::default();
    let mut live_bytes: i64 = 0;
    let mut live_bytes_without_dead: i64 = 0;
    for ev in trace.events() {
        let (total, dead) = sizes(ev.class);
        let signed_total = total as i64 * ev.delta as i64;
        let signed_trimmed = (total - dead) as i64 * ev.delta as i64;
        live_bytes += signed_total;
        live_bytes_without_dead += signed_trimmed;
        if ev.delta > 0 {
            profile.objects_allocated += 1;
            profile.object_space += total;
            profile.dead_member_space += dead;
        }
        profile.high_water_mark = profile.high_water_mark.max(live_bytes.max(0) as u64);
        profile.high_water_mark_without_dead = profile
            .high_water_mark_without_dead
            .max(live_bytes_without_dead.max(0) as u64);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, RunConfig};
    use ddm_core::AnalysisPipeline;

    fn profile(src: &str) -> HeapProfile {
        let run = AnalysisPipeline::from_source(src).expect("pipeline");
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("run");
        profile_trace(run.program(), &exec.trace, run.liveness())
    }

    #[test]
    fn object_space_accumulates_all_allocations() {
        let p = profile(
            "class A { public: int a1; int a2; };\n\
             int main() {\n\
               for (int i = 0; i < 10; i++) { A* x = new A(); x->a1 = i; delete x; }\n\
               return 0;\n\
             }",
        );
        assert_eq!(p.objects_allocated, 10);
        assert_eq!(p.object_space, 80);
        // a1 written only and a2 untouched: both dead → 8 dead bytes/object.
        assert_eq!(p.dead_member_space, 80);
        // Only one object alive at a time.
        assert_eq!(p.high_water_mark, 8);
        assert_eq!(p.high_water_mark_without_dead, 0);
        assert_eq!(p.high_water_mark_reduction(), 100.0);
    }

    #[test]
    fn high_water_mark_tracks_peak_not_total() {
        let p = profile(
            "class A { public: int v; };\n\
             int main() {\n\
               A* a = new A(); A* b = new A();\n\
               int t = a->v + b->v;\n\
               delete a; delete b;\n\
               A* c = new A(); t += c->v; delete c;\n\
               return t;\n\
             }",
        );
        assert_eq!(p.object_space, 12);
        assert_eq!(p.high_water_mark, 8);
        assert_eq!(p.dead_member_space, 0);
        assert_eq!(p.dead_space_percentage(), 0.0);
    }

    #[test]
    fn allocate_and_hold_makes_hwm_equal_total() {
        // The paper notes several benchmarks "heap-allocate most objects,
        // and do not deallocate them until the end of program execution",
        // making the high-water mark (nearly) identical to total space.
        let p = profile(
            "class A { public: int v; };\n\
             int main() { int t = 0; for (int i = 0; i < 6; i++) { A* x = new A(); t += x->v; } return t; }",
        );
        assert_eq!(p.object_space, 24);
        assert_eq!(p.high_water_mark, 24);
    }

    #[test]
    fn dead_percentage_counts_member_sizes() {
        let p = profile(
            "class Mixed { public: double big_dead; int live; char small_dead; };\n\
             int main() { Mixed* m = new Mixed(); int v = m->live; delete m; return v; }",
        );
        // Layout: big_dead 8 @0, live 4 @8, small_dead 1 @12, pad → 16.
        assert_eq!(p.object_space, 16);
        assert_eq!(p.dead_member_space, 9);
        assert!((p.dead_space_percentage() - 56.25).abs() < 1e-9);
    }

    #[test]
    fn the_two_high_water_marks_can_peak_at_different_times() {
        // Phase 1 allocates many all-dead objects (peak of the raw HWM);
        // phase 2 allocates fewer all-live objects. With dead members
        // removed, phase 2 is the true peak.
        let p = profile(
            "class Dead { public: int d1; int d2; int d3; int d4; };\n\
             class Live { public: int l1; };\n\
             int main() {\n\
               int t = 0;\n\
               { Dead* a = new Dead(); Dead* b = new Dead(); delete a; delete b; }\n\
               Live* x = new Live(); Live* y = new Live();\n\
               t = x->l1 + y->l1;\n\
               delete x; delete y;\n\
               return t;\n\
             }",
        );
        assert_eq!(p.high_water_mark, 32, "raw peak is the Dead phase");
        assert_eq!(
            p.high_water_mark_without_dead, 8,
            "trimmed peak is the Live phase"
        );
    }

    #[test]
    fn stack_and_global_objects_count() {
        let p = profile(
            "class G { public: int g; };\n\
             class S { public: int s; };\n\
             G global_obj;\n\
             int main() { S s; return s.s + global_obj.g; }",
        );
        assert_eq!(p.objects_allocated, 2);
        assert_eq!(p.object_space, 8);
    }

    #[test]
    fn empty_profile_percentages_are_zero() {
        let p = HeapProfile::default();
        assert_eq!(p.dead_space_percentage(), 0.0);
        assert_eq!(p.high_water_mark_reduction(), 0.0);
    }
}
