//! Tree-walking interpreter for the C++ subset.
//!
//! Replaces the paper's binary instrumentation (Nair's RS/6000 profiling
//! tooling): the interpreter executes the benchmark deterministically and
//! logs every object allocation and deallocation into a
//! `HeapTrace`, which the profiler replays to
//! produce the paper's dynamic measurements.
//!
//! Semantics notes (documented deviations, none observable by the
//! benchmark suite):
//!
//! * storage is zero-initialized (reading uninitialized storage is UB in
//!   C++, so no well-defined program can tell);
//! * class-typed values are object references; by-value class copies
//!   (`A b = a;` / assignment) perform a field-wise copy of scalars;
//! * data-member hiding is resolved against the dynamic class;
//! * arrays of class type are not supported (scalar arrays are).

use crate::error::RuntimeError;
use crate::heap::{default_value, AllocKind, HeapTrace, ObjectStore};
use crate::value::{cell, ArrayRef, CellRef, ObjId, PtrTarget, Value};
use ddm_cppfront::ast::{
    BinaryOp, Block, Expr, ExprKind, LocalInit, PostfixOp, Stmt, StmtKind, Type, TypeKind, UnaryOp,
};
use ddm_hierarchy::{
    resolve_ctor, Builtin, ClassId, Found, FuncId, MemberLookup, MemberRef, Program,
};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Execution options.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Maximum number of evaluation steps before aborting with
    /// [`RuntimeError::OutOfFuel`].
    pub fuel: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { fuel: 200_000_000 }
    }
}

/// The observable result of one program execution.
#[derive(Debug)]
pub struct Execution {
    /// `main`'s return value.
    pub exit_code: i64,
    /// Everything written through the `print_*` builtins.
    pub output: String,
    /// The allocation/deallocation event trace.
    pub trace: HeapTrace,
    /// Every data member whose value was read, or whose address was taken,
    /// during execution. This is the ground-truth oracle used by the
    /// property tests: the static analysis must classify all of these as
    /// live.
    pub members_observed: BTreeSet<MemberRef>,
    /// Evaluation steps consumed.
    pub steps: u64,
}

/// The interpreter.
///
/// # Examples
///
/// ```
/// use ddm_dynamic::{Interpreter, RunConfig};
/// use ddm_hierarchy::Program;
///
/// let tu = ddm_cppfront::parse(
///     "int main() { int total = 0; for (int i = 1; i <= 4; i++) { total += i; } return total; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let run = Interpreter::new(&program).run(&RunConfig::default()).unwrap();
/// assert_eq!(run.exit_code, 10);
/// ```
pub struct Interpreter<'p> {
    program: &'p Program,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'p Program) -> Self {
        Interpreter { program }
    }

    /// Executes the program from `main`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for missing `main`, null dereferences,
    /// division by zero, fuel exhaustion, and unsupported constructs.
    pub fn run(&self, config: &RunConfig) -> Result<Execution, RuntimeError> {
        let main = self.program.main_function().ok_or(RuntimeError::NoMain)?;
        let lookup = MemberLookup::new(self.program);
        let mut m = Machine {
            program: self.program,
            lookup: &lookup,
            store: ObjectStore::new(),
            globals: HashMap::new(),
            output: String::new(),
            fuel: config.fuel,
            start_fuel: config.fuel,
            members_observed: BTreeSet::new(),
        };
        m.init_globals()?;
        let exit = m.call_function(main, Vec::new(), None)?;
        let exit_code = match exit {
            Value::Int(v) => v,
            _ => 0,
        };
        Ok(Execution {
            exit_code,
            output: m.output,
            trace: m.store.into_trace(),
            members_observed: m.members_observed,
            steps: m.start_fuel - m.fuel,
        })
    }
}

/// Control flow outcome of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An evaluated call argument: by value, or an aliased cell/object for
/// reference parameters.
enum Arg {
    Value(Value),
    Ref(CellRef),
}

/// A storage location.
enum Place {
    Cell(CellRef),
    Object(ObjId),
}

/// What a name is bound to: scalar/pointer variables get a cell, class
/// locals and globals *are* objects (so `&x` yields an object pointer).
#[derive(Clone)]
enum Binding {
    Cell(CellRef),
    Object(ObjId),
}

/// One lexical scope: variables plus the stack objects it owns.
#[derive(Default)]
struct Scope {
    vars: HashMap<String, Binding>,
    owned: Vec<ObjId>,
}

/// A function activation.
struct Env {
    scopes: Vec<Scope>,
    this_obj: Option<ObjId>,
}

impl Env {
    fn new(this_obj: Option<ObjId>) -> Env {
        Env {
            scopes: vec![Scope::default()],
            this_obj,
        }
    }

    fn declare(&mut self, name: &str, c: CellRef) {
        self.declare_binding(name, Binding::Cell(c));
    }

    fn declare_binding(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .vars
            .insert(name.to_string(), b);
    }

    fn get(&self, name: &str) -> Option<Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.vars.get(name))
            .cloned()
    }

    fn own_object(&mut self, id: ObjId) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .owned
            .push(id);
    }
}

struct Machine<'p> {
    program: &'p Program,
    lookup: &'p MemberLookup<'p>,
    store: ObjectStore,
    globals: HashMap<String, Binding>,
    output: String,
    fuel: u64,
    start_fuel: u64,
    members_observed: BTreeSet<MemberRef>,
}

impl<'p> Machine<'p> {
    fn step(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn init_globals(&mut self) -> Result<(), RuntimeError> {
        let globals: Vec<_> = self.program.globals().to_vec();
        for g in globals {
            let mut env = Env::new(None);
            let binding = if let Some(class) =
                ddm_hierarchy::by_value_class(&g.ty).and_then(|n| self.program.class_by_name(n))
            {
                let id = self.store.allocate(self.program, class, AllocKind::Global);
                self.construct(id, class, Vec::new())?;
                Binding::Object(id)
            } else if let Some(init) = &g.init {
                Binding::Cell(cell(self.eval(init, &mut env)?))
            } else {
                Binding::Cell(cell(default_value(self.program, &g.ty)))
            };
            self.globals.insert(g.name.clone(), binding);
        }
        Ok(())
    }

    // ----- functions -------------------------------------------------------

    fn call_function(
        &mut self,
        func: FuncId,
        args: Vec<Arg>,
        this_obj: Option<ObjId>,
    ) -> Result<Value, RuntimeError> {
        self.step()?;
        let info = self.program.function(func);
        if info.params.len() != args.len() {
            return Err(RuntimeError::ArityMismatch {
                function: self.program.func_display_name(func),
                expected: info.params.len(),
                got: args.len(),
            });
        }
        let Some(body) = info.body.clone() else {
            return Err(RuntimeError::MissingBody(
                self.program.func_display_name(func),
            ));
        };
        let mut env = Env::new(this_obj);
        for (p, a) in info.params.iter().zip(args) {
            match a {
                // Reference parameters alias the caller's storage cell.
                Arg::Ref(c) => env.declare(&p.name, c),
                Arg::Value(v) => env.declare(&p.name, cell(v)),
            }
        }
        let flow = self.exec_block(&body, &mut env)?;
        // Destroy any stack objects in the (already popped) scopes is done
        // by exec_block; only the return value remains.
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Void,
        })
    }

    /// Runs constructors for `obj` viewed as `class`: base constructors
    /// (init-list args or default), member initializers, then the body.
    fn construct(
        &mut self,
        obj: ObjId,
        class: ClassId,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        // Constructors in the subset take value parameters (reference
        // parameters on constructors are not modelled).
        self.step()?;
        let ctor = resolve_ctor(self.program, class, args.len());
        match ctor {
            None => {
                // No declared constructor: default-construct bases and
                // by-value members.
                let info = self.program.class(class).clone();
                for b in &info.bases {
                    self.construct(obj, b.id, Vec::new())?;
                }
                for (idx, mem) in info.members.iter().enumerate() {
                    if let Some(mc) = ddm_hierarchy::by_value_class(&mem.ty)
                        .and_then(|n| self.program.class_by_name(n))
                    {
                        let child = self.member_object(obj, MemberRef::new(class, idx))?;
                        self.construct(child, mc, Vec::new())?;
                    }
                }
                Ok(Value::Void)
            }
            Some(ctor_id) => {
                let info = self.program.function(ctor_id).clone();
                if info.params.len() != args.len() {
                    return Err(RuntimeError::ArityMismatch {
                        function: self.program.func_display_name(ctor_id),
                        expected: info.params.len(),
                        got: args.len(),
                    });
                }
                let mut env = Env::new(Some(obj));
                for (p, v) in info.params.iter().zip(args) {
                    env.declare(&p.name, cell(v));
                }
                let class_info = self.program.class(class).clone();
                // Bases, in declaration order.
                for b in &class_info.bases {
                    let base_name = &self.program.class(b.id).name;
                    let init = info.inits.iter().find(|i| &i.name == base_name);
                    let base_args = match init {
                        Some(i) => i
                            .args
                            .iter()
                            .map(|a| self.eval(a, &mut env))
                            .collect::<Result<Vec<_>, _>>()?,
                        None => Vec::new(),
                    };
                    self.construct(obj, b.id, base_args)?;
                }
                // Members, in declaration order.
                for (idx, mem) in class_info.members.iter().enumerate() {
                    let mref = MemberRef::new(class, idx);
                    let init = info.inits.iter().find(|i| i.name == mem.name);
                    if let Some(mc) = ddm_hierarchy::by_value_class(&mem.ty)
                        .and_then(|n| self.program.class_by_name(n))
                    {
                        let child = self.member_object(obj, mref)?;
                        let ctor_args = match init {
                            Some(i) => i
                                .args
                                .iter()
                                .map(|a| self.eval(a, &mut env))
                                .collect::<Result<Vec<_>, _>>()?,
                            None => Vec::new(),
                        };
                        self.construct(child, mc, ctor_args)?;
                    } else if let Some(i) = init {
                        if let Some(arg) = i.args.first() {
                            let v = self.eval(arg, &mut env)?;
                            let c = self
                                .store
                                .field(obj, mref)
                                .ok_or_else(|| RuntimeError::UnknownMember(mem.name.clone()))?;
                            *c.borrow_mut() = v;
                        }
                    }
                }
                if let Some(body) = info.body.clone() {
                    self.exec_block(&body, &mut env)?;
                }
                Ok(Value::Void)
            }
        }
    }

    /// Runs destructors for `obj`, starting from its dynamic class: the
    /// body, then member destructors, then base destructors.
    fn destruct(&mut self, obj: ObjId, class: ClassId) -> Result<(), RuntimeError> {
        self.step()?;
        if let Some(dtor) = self.program.destructor(class) {
            if let Some(body) = self.program.function(dtor).body.clone() {
                let mut env = Env::new(Some(obj));
                self.exec_block(&body, &mut env)?;
            }
        }
        let info = self.program.class(class).clone();
        for (idx, mem) in info.members.iter().enumerate().rev() {
            if let Some(mc) =
                ddm_hierarchy::by_value_class(&mem.ty).and_then(|n| self.program.class_by_name(n))
            {
                if let Ok(child) = self.member_object(obj, MemberRef::new(class, idx)) {
                    self.destruct(child, mc)?;
                }
            }
        }
        for b in info.bases.iter().rev() {
            self.destruct(obj, b.id)?;
        }
        Ok(())
    }

    /// The nested object backing a by-value class member.
    fn member_object(&self, obj: ObjId, member: MemberRef) -> Result<ObjId, RuntimeError> {
        let c = self
            .store
            .field(obj, member)
            .ok_or_else(|| RuntimeError::UnknownMember(format!("{member}")))?;
        let v = c.borrow().clone();
        match v {
            Value::Ptr(PtrTarget::Object(id)) => Ok(id),
            other => Err(RuntimeError::TypeMismatch(format!(
                "member object expected, found {other:?}"
            ))),
        }
    }

    // ----- statements ------------------------------------------------------

    fn exec_block(&mut self, b: &Block, env: &mut Env) -> Result<Flow, RuntimeError> {
        env.scopes.push(Scope::default());
        let mut result = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s, env)? {
                Flow::Normal => {}
                other => {
                    result = other;
                    break;
                }
            }
        }
        let scope = env.scopes.pop().expect("scope stack never empty");
        self.destroy_scope(scope)?;
        Ok(result)
    }

    fn destroy_scope(&mut self, scope: Scope) -> Result<(), RuntimeError> {
        for id in scope.owned.into_iter().rev() {
            let class = self.store.object(id).class;
            self.destruct(id, class)?;
            self.store.deallocate(id);
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Env) -> Result<Flow, RuntimeError> {
        self.step()?;
        match &s.kind {
            StmtKind::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl(d) => {
                self.exec_local_decl(d, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if self.eval(cond, env)?.is_truthy() {
                    self.exec_stmt(then, env)
                } else if let Some(e) = els {
                    self.exec_stmt(e, env)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, env)?.is_truthy() {
                    match self.exec_stmt(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    match self.exec_stmt(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond, env)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                env.scopes.push(Scope::default());
                let mut result = Flow::Normal;
                if let Some(i) = init {
                    self.exec_stmt(i, env)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c, env)?.is_truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            result = Flow::Return(v);
                            break;
                        }
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(st) = step {
                        self.eval(st, env)?;
                    }
                }
                let scope = env.scopes.pop().expect("scope stack never empty");
                self.destroy_scope(scope)?;
                Ok(result)
            }
            StmtKind::Switch { scrutinee, arms } => {
                let selector = self
                    .eval(scrutinee, env)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("switch on non-integer".into()))?;
                // Find the first matching case (or `default`), then fall
                // through subsequent arms until a break.
                let mut start = None;
                for (i, arm) in arms.iter().enumerate() {
                    if let Some(v) = &arm.value {
                        let case_v = self.eval(v, env)?.as_int().ok_or_else(|| {
                            RuntimeError::TypeMismatch("non-integer case label".into())
                        })?;
                        if case_v == selector {
                            start = Some(i);
                            break;
                        }
                    }
                }
                if start.is_none() {
                    start = arms.iter().position(|a| a.value.is_none());
                }
                let Some(start) = start else {
                    return Ok(Flow::Normal);
                };
                env.scopes.push(Scope::default());
                let mut flow = Flow::Normal;
                'arms: for arm in &arms[start..] {
                    for st in &arm.stmts {
                        match self.exec_stmt(st, env)? {
                            Flow::Normal => {}
                            Flow::Break => break 'arms,
                            other => {
                                flow = other;
                                break 'arms;
                            }
                        }
                    }
                }
                let scope = env.scopes.pop().expect("scope stack never empty");
                self.destroy_scope(scope)?;
                Ok(flow)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.exec_block(b, env),
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    fn exec_local_decl(
        &mut self,
        d: &ddm_cppfront::ast::LocalDecl,
        env: &mut Env,
    ) -> Result<(), RuntimeError> {
        if let Some(class) =
            ddm_hierarchy::by_value_class(&d.ty).and_then(|n| self.program.class_by_name(n))
        {
            if matches!(d.ty.kind, TypeKind::Array(..)) {
                return Err(RuntimeError::Unsupported(
                    "arrays of class type".to_string(),
                ));
            }
            let id = self.store.allocate(self.program, class, AllocKind::Stack);
            match &d.init {
                LocalInit::Ctor(args) => {
                    let argv = args
                        .iter()
                        .map(|a| self.eval(a, env))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.construct(id, class, argv)?;
                }
                LocalInit::Default => {
                    self.construct(id, class, Vec::new())?;
                }
                LocalInit::Expr(e) => {
                    // Copy-initialization: construct, then field-wise copy.
                    self.construct(id, class, Vec::new())?;
                    let src = self.eval(e, env)?;
                    self.copy_object_fields(&src, id)?;
                }
            }
            env.own_object(id);
            env.declare_binding(&d.name, Binding::Object(id));
            return Ok(());
        }
        let value = match &d.init {
            LocalInit::Default => default_value(self.program, &d.ty),
            LocalInit::Expr(e) => self.eval(e, env)?,
            LocalInit::Ctor(args) => match args.first() {
                Some(a) => self.eval(a, env)?,
                None => default_value(self.program, &d.ty),
            },
        };
        env.declare(&d.name, cell(value));
        Ok(())
    }

    fn copy_object_fields(&mut self, src: &Value, dst: ObjId) -> Result<(), RuntimeError> {
        let Value::Ptr(PtrTarget::Object(src_id)) = src else {
            return Err(RuntimeError::TypeMismatch(
                "class copy-initialization from non-object".to_string(),
            ));
        };
        let src_fields: Vec<(MemberRef, Value)> = self
            .store
            .object(*src_id)
            .fields
            .iter()
            .map(|(k, v)| (*k, v.borrow().clone()))
            .collect();
        for (mref, v) in src_fields {
            if let Value::Ptr(PtrTarget::Object(src_child)) = v {
                // By-value member objects keep their own storage: copy
                // their fields recursively instead of aliasing.
                if let Ok(dst_child) = self.member_object(dst, mref) {
                    self.copy_object_fields(&Value::Ptr(PtrTarget::Object(src_child)), dst_child)?;
                }
                continue;
            }
            if let Some(c) = self.store.field(dst, mref) {
                *c.borrow_mut() = v;
            }
        }
        Ok(())
    }

    // ----- expressions -----------------------------------------------------

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Result<Value, RuntimeError> {
        self.step()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::BoolLit(b) => Ok(Value::Int(*b as i64)),
            ExprKind::CharLit(c) => Ok(Value::Int(*c as i64)),
            ExprKind::StrLit(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            ExprKind::Null => Ok(Value::null()),
            ExprKind::This => match env.this_obj {
                Some(id) => Ok(Value::Ptr(PtrTarget::Object(id))),
                None => Err(RuntimeError::Unsupported("`this` outside method".into())),
            },
            ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index { .. } => {
                let place = self.eval_place(e, env)?;
                self.record_member_read(e, env);
                Ok(self.read_place(place))
            }
            ExprKind::Call { callee, args } => self.eval_call(callee, args, env),
            ExprKind::Unary { op, expr } => self.eval_unary(*op, expr, env),
            ExprKind::Postfix { op, expr } => {
                let place = self.eval_place(expr, env)?;
                self.record_member_read(expr, env);
                let old = self.read_place_ref(&place);
                let new = match (op, &old) {
                    (PostfixOp::PostInc, Value::Int(v)) => Value::Int(v.wrapping_add(1)),
                    (PostfixOp::PostDec, Value::Int(v)) => Value::Int(v.wrapping_sub(1)),
                    (PostfixOp::PostInc, Value::Float(v)) => Value::Float(v + 1.0),
                    (PostfixOp::PostDec, Value::Float(v)) => Value::Float(v - 1.0),
                    (_, Value::Ptr(PtrTarget::Element { array, index })) => {
                        let delta: isize = if *op == PostfixOp::PostInc { 1 } else { -1 };
                        Value::Ptr(PtrTarget::Element {
                            array: array.clone(),
                            index: index.wrapping_add_signed(delta),
                        })
                    }
                    _ => {
                        return Err(RuntimeError::TypeMismatch(
                            "++/-- on non-numeric value".to_string(),
                        ))
                    }
                };
                self.write_place(&place, new)?;
                Ok(old)
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, env),
            ExprKind::Assign { op, lhs, rhs } => {
                let place = self.eval_place(lhs, env)?;
                let value = match op.binary_op() {
                    None => self.eval(rhs, env)?,
                    Some(bop) => {
                        self.record_member_read(lhs, env);
                        let old = self.read_place_ref(&place);
                        let rv = self.eval(rhs, env)?;
                        self.apply_binary(bop, old, rv)?
                    }
                };
                self.write_place(&place, value.clone())?;
                Ok(value)
            }
            ExprKind::Cond { cond, then, els } => {
                if self.eval(cond, env)?.is_truthy() {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            ExprKind::Cast { ty, expr, .. } => {
                let v = self.eval(expr, env)?;
                Ok(cast_value(v, ty))
            }
            ExprKind::New {
                ty,
                args,
                array_len,
            } => self.eval_new(ty, args, array_len.as_deref(), env),
            ExprKind::Delete { expr, is_array } => {
                let v = self.eval(expr, env)?;
                self.do_delete(v, *is_array)?;
                Ok(Value::Void)
            }
            ExprKind::SizeofType(ty) => {
                let layouts = ddm_hierarchy::LayoutEngine::new(self.program);
                Ok(Value::Int(layouts.type_size(ty) as i64))
            }
            ExprKind::SizeofExpr(_) => {
                // The operand is unevaluated; without static types at
                // runtime we conservatively report the pointer size for
                // non-type operands (benchmarks use `sizeof(T)`).
                Ok(Value::Int(4))
            }
            ExprKind::PtrToMember { class, member } => {
                let class_id = self
                    .program
                    .class_by_name(class)
                    .ok_or_else(|| RuntimeError::Lookup(class.clone()))?;
                match self.lookup.member(class_id, member) {
                    Ok(Found::Data(m)) => Ok(Value::MemberPtr(m)),
                    Ok(Found::Method { func, .. }) => Ok(Value::FnPtr(func)),
                    Err(e) => Err(RuntimeError::Lookup(e.to_string())),
                }
            }
            ExprKind::PtrMemApply { .. } => {
                let place = self.eval_place(e, env)?;
                self.record_member_read(e, env);
                Ok(self.read_place(place))
            }
            ExprKind::Comma { lhs, rhs } => {
                self.eval(lhs, env)?;
                self.eval(rhs, env)
            }
        }
    }

    /// Records the member read for the analysis oracle when `e` is a
    /// member access (direct or through `this`).
    fn record_member_read(&mut self, e: &Expr, env: &Env) {
        match &e.kind {
            ExprKind::Member { .. } | ExprKind::PtrMemApply { .. } | ExprKind::Ident(_) => {
                if let Some(m) = self.member_of_access(e, env) {
                    self.members_observed.insert(m);
                }
            }
            _ => {}
        }
    }

    /// Resolves which declared member an access expression touches, if any.
    fn member_of_access(&mut self, e: &Expr, env: &Env) -> Option<MemberRef> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if env.get(name).is_some() || self.globals.contains_key(name) {
                    return None;
                }
                let this = env.this_obj?;
                let class = self.store.object(this).class;
                match self.lookup.member(class, name) {
                    Ok(Found::Data(m)) => Some(m),
                    _ => None,
                }
            }
            ExprKind::Member {
                base,
                qualifier,
                name,
                ..
            } => {
                // The earlier eval_place already resolved the object; redo
                // the resolution structurally (side-effect free).
                let obj = self.object_of(base, env).ok()??;
                let class = match qualifier {
                    Some(q) => self.program.class_by_name(q)?,
                    None => self.store.object(obj).class,
                };
                match self.lookup.member(class, name) {
                    Ok(Found::Data(m)) => Some(m),
                    _ => None,
                }
            }
            ExprKind::PtrMemApply { ptr, .. } => match &ptr.kind {
                ExprKind::PtrToMember { class, member } => {
                    let cid = self.program.class_by_name(class)?;
                    match self.lookup.member(cid, member) {
                        Ok(Found::Data(m)) => Some(m),
                        _ => None,
                    }
                }
                ExprKind::Ident(name) => match env.get(name)? {
                    Binding::Cell(c) => {
                        let v = c.borrow().clone();
                        match v {
                            Value::MemberPtr(m) => Some(m),
                            _ => None,
                        }
                    }
                    Binding::Object(_) => None,
                },
                _ => None,
            },
            _ => None,
        }
    }

    /// The object a member-access base expression designates, without
    /// recording oracle reads (pure resolution).
    fn object_of(&mut self, base: &Expr, env: &Env) -> Result<Option<ObjId>, RuntimeError> {
        // Evaluate with a scratch environment view: we need the real env
        // for locals, so reuse it immutably through cloned cells.
        let v = match &base.kind {
            ExprKind::Ident(name) => {
                match env.get(name).or_else(|| self.globals.get(name).cloned()) {
                    Some(Binding::Cell(c)) => c.borrow().clone(),
                    Some(Binding::Object(id)) => Value::Ptr(PtrTarget::Object(id)),
                    None => return Ok(None),
                }
            }
            ExprKind::This => match env.this_obj {
                Some(id) => Value::Ptr(PtrTarget::Object(id)),
                None => return Ok(None),
            },
            ExprKind::Member {
                base: inner,
                qualifier,
                name,
                ..
            } => {
                let Some(obj) = self.object_of(inner, env)? else {
                    return Ok(None);
                };
                let class = match qualifier {
                    Some(q) => match self.program.class_by_name(q) {
                        Some(c) => c,
                        None => return Ok(None),
                    },
                    None => self.store.object(obj).class,
                };
                match self.lookup.member(class, name) {
                    Ok(Found::Data(m)) => match self.store.field(obj, m) {
                        Some(c) => c.borrow().clone(),
                        None => return Ok(None),
                    },
                    _ => return Ok(None),
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                let Some(obj) = self.object_of(expr, env)? else {
                    return Ok(None);
                };
                return Ok(Some(obj));
            }
            _ => return Ok(None),
        };
        Ok(match v {
            Value::Ptr(PtrTarget::Object(id)) => Some(id),
            _ => None,
        })
    }

    fn read_place(&mut self, place: Place) -> Value {
        self.read_place_ref(&place)
    }

    fn read_place_ref(&self, place: &Place) -> Value {
        match place {
            Place::Cell(c) => c.borrow().clone(),
            Place::Object(id) => Value::Ptr(PtrTarget::Object(*id)),
        }
    }

    fn write_place(&mut self, place: &Place, v: Value) -> Result<(), RuntimeError> {
        match place {
            Place::Cell(c) => {
                *c.borrow_mut() = v;
                Ok(())
            }
            Place::Object(dst) => self.copy_object_fields(&v, *dst),
        }
    }

    fn eval_place(&mut self, e: &Expr, env: &mut Env) -> Result<Place, RuntimeError> {
        self.step()?;
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(b) = env.get(name) {
                    return Ok(match b {
                        Binding::Cell(c) => Place::Cell(c),
                        Binding::Object(id) => Place::Object(id),
                    });
                }
                // Implicit `this->member`.
                if let Some(this) = env.this_obj {
                    let class = self.store.object(this).class;
                    if let Ok(Found::Data(m)) = self.lookup.member(class, name) {
                        return self.member_place(this, m, name);
                    }
                }
                if let Some(b) = self.globals.get(name) {
                    return Ok(match b {
                        Binding::Cell(c) => Place::Cell(c.clone()),
                        Binding::Object(id) => Place::Object(*id),
                    });
                }
                if let Some(v) = self.program.enum_const(name) {
                    return Ok(Place::Cell(cell(Value::Int(v))));
                }
                if let Some(f) = self.program.free_function(name) {
                    return Ok(Place::Cell(cell(Value::FnPtr(f))));
                }
                Err(RuntimeError::Unsupported(format!(
                    "unknown identifier `{name}` at runtime"
                )))
            }
            ExprKind::Member {
                base,
                arrow,
                qualifier,
                name,
            } => {
                let base_v = self.eval(base, env)?;
                let obj = self.expect_object(base_v, *arrow)?;
                let class = match qualifier {
                    Some(q) => self
                        .program
                        .class_by_name(q)
                        .ok_or_else(|| RuntimeError::Lookup(q.clone()))?,
                    None => self.store.object(obj).class,
                };
                let m = match self
                    .lookup
                    .member(class, name)
                    .map_err(|e| RuntimeError::Lookup(e.to_string()))?
                {
                    Found::Data(m) => m,
                    Found::Method { func, .. } => return Ok(Place::Cell(cell(Value::FnPtr(func)))),
                };
                self.member_place(obj, m, name)
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base, env)?;
                let i = self
                    .eval(index, env)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("non-integer index".into()))?;
                match b {
                    Value::Array(arr) => self.array_place(&arr, i),
                    Value::Ptr(PtrTarget::Element { array, index }) => {
                        self.array_place(&array, index as i64 + i)
                    }
                    Value::Ptr(PtrTarget::Object(id)) => {
                        let elems = self.store.object(id).array_elems.clone();
                        match elems {
                            Some(list) => {
                                let idx = usize::try_from(i).map_err(|_| {
                                    RuntimeError::IndexOutOfBounds {
                                        index: i,
                                        len: list.len(),
                                    }
                                })?;
                                let target =
                                    *list.get(idx).ok_or(RuntimeError::IndexOutOfBounds {
                                        index: i,
                                        len: list.len(),
                                    })?;
                                Ok(Place::Object(target))
                            }
                            None if i == 0 => Ok(Place::Object(id)),
                            None => Err(RuntimeError::IndexOutOfBounds { index: i, len: 1 }),
                        }
                    }
                    Value::Str(s) => {
                        let bytes = s.as_bytes();
                        let idx = usize::try_from(i).ok().filter(|&x| x < bytes.len()).ok_or(
                            RuntimeError::IndexOutOfBounds {
                                index: i,
                                len: bytes.len(),
                            },
                        )?;
                        Ok(Place::Cell(cell(Value::Int(bytes[idx] as i64))))
                    }
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "indexing non-array value {other:?}"
                    ))),
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                let v = self.eval(expr, env)?;
                self.deref_place(v)
            }
            ExprKind::PtrMemApply { base, arrow, ptr } => {
                let base_v = self.eval(base, env)?;
                let obj = self.expect_object(base_v, *arrow)?;
                let pv = self.eval(ptr, env)?;
                match pv {
                    Value::MemberPtr(m) => {
                        let c = self
                            .store
                            .field(obj, m)
                            .ok_or_else(|| RuntimeError::UnknownMember(format!("{m}")))?;
                        Ok(Place::Cell(c))
                    }
                    other => Err(RuntimeError::TypeMismatch(format!(
                        ".* applied to non-member-pointer {other:?}"
                    ))),
                }
            }
            // Parenthesized-away and rvalue fallbacks: evaluate into a
            // fresh cell (assignment to it is then meaningless but legal
            // C++ rejects those at compile time; our benchmarks don't).
            _ => {
                let v = self.eval(e, env)?;
                Ok(Place::Cell(cell(v)))
            }
        }
    }

    /// The place of member `m` in `obj`: by-value class members resolve
    /// to their nested object so `&o.part` yields an object pointer.
    fn member_place(&self, obj: ObjId, m: MemberRef, name: &str) -> Result<Place, RuntimeError> {
        let mem = &self.program.class(m.class).members[m.index as usize];
        if ddm_hierarchy::by_value_class(&mem.ty)
            .and_then(|n| self.program.class_by_name(n))
            .is_some()
        {
            return Ok(Place::Object(self.member_object(obj, m)?));
        }
        let c = self
            .store
            .field(obj, m)
            .ok_or_else(|| RuntimeError::UnknownMember(name.to_string()))?;
        Ok(Place::Cell(c))
    }

    fn array_place(&self, arr: &ArrayRef, i: i64) -> Result<Place, RuntimeError> {
        let list = arr.borrow();
        let idx = usize::try_from(i).ok().filter(|&x| x < list.len()).ok_or(
            RuntimeError::IndexOutOfBounds {
                index: i,
                len: list.len(),
            },
        )?;
        Ok(Place::Cell(list[idx].clone()))
    }

    fn deref_place(&mut self, v: Value) -> Result<Place, RuntimeError> {
        match v {
            Value::Ptr(PtrTarget::Null) => Err(RuntimeError::NullDeref),
            Value::Ptr(PtrTarget::Cell(c)) => Ok(Place::Cell(c)),
            Value::Ptr(PtrTarget::Object(id)) => Ok(Place::Object(id)),
            Value::Ptr(PtrTarget::Element { array, index }) => {
                self.array_place(&array, index as i64)
            }
            other => Err(RuntimeError::TypeMismatch(format!(
                "dereferencing non-pointer {other:?}"
            ))),
        }
    }

    fn expect_object(&mut self, v: Value, _arrow: bool) -> Result<ObjId, RuntimeError> {
        match v {
            Value::Ptr(PtrTarget::Object(id)) => Ok(id),
            Value::Ptr(PtrTarget::Null) => Err(RuntimeError::NullDeref),
            other => Err(RuntimeError::NotAnObject(format!("{other:?}"))),
        }
    }

    fn eval_unary(
        &mut self,
        op: UnaryOp,
        operand: &Expr,
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        match op {
            UnaryOp::AddrOf => {
                // `&f` on a function designator yields the function pointer.
                if let ExprKind::Ident(name) = &operand.kind {
                    if env.get(name).is_none()
                        && !self.globals.contains_key(name)
                        && env.this_obj.is_none_or(|t| {
                            let class = self.store.object(t).class;
                            self.lookup.member(class, name).is_err()
                        })
                    {
                        if let Some(f) = self.program.free_function(name) {
                            return Ok(Value::FnPtr(f));
                        }
                    }
                }
                let place = self.eval_place(operand, env)?;
                // Taking a member's address counts as an observation for
                // the oracle (the analysis must mark it live).
                self.record_member_read(operand, env);
                Ok(match place {
                    Place::Cell(c) => Value::Ptr(PtrTarget::Cell(c)),
                    Place::Object(id) => Value::Ptr(PtrTarget::Object(id)),
                })
            }
            UnaryOp::Deref => {
                let v = self.eval(operand, env)?;
                let place = self.deref_place(v)?;
                Ok(self.read_place(place))
            }
            UnaryOp::Neg => match self.eval(operand, env)? {
                Value::Int(v) => Ok(Value::Int(v.wrapping_neg())),
                Value::Float(v) => Ok(Value::Float(-v)),
                other => Err(RuntimeError::TypeMismatch(format!("-{other:?}"))),
            },
            UnaryOp::Plus => self.eval(operand, env),
            UnaryOp::Not => Ok(Value::Int(!self.eval(operand, env)?.is_truthy() as i64)),
            UnaryOp::BitNot => match self.eval(operand, env)? {
                Value::Int(v) => Ok(Value::Int(!v)),
                other => Err(RuntimeError::TypeMismatch(format!("~{other:?}"))),
            },
            UnaryOp::PreInc | UnaryOp::PreDec => {
                let place = self.eval_place(operand, env)?;
                self.record_member_read(operand, env);
                let old = self.read_place_ref(&place);
                let new = match (&op, &old) {
                    (UnaryOp::PreInc, Value::Int(v)) => Value::Int(v.wrapping_add(1)),
                    (UnaryOp::PreDec, Value::Int(v)) => Value::Int(v.wrapping_sub(1)),
                    (UnaryOp::PreInc, Value::Float(v)) => Value::Float(v + 1.0),
                    (UnaryOp::PreDec, Value::Float(v)) => Value::Float(v - 1.0),
                    (_, Value::Ptr(PtrTarget::Element { array, index })) => {
                        let delta: isize = if op == UnaryOp::PreInc { 1 } else { -1 };
                        Value::Ptr(PtrTarget::Element {
                            array: array.clone(),
                            index: index.wrapping_add_signed(delta),
                        })
                    }
                    _ => {
                        return Err(RuntimeError::TypeMismatch(
                            "++/-- on non-numeric value".to_string(),
                        ))
                    }
                };
                self.write_place(&place, new.clone())?;
                Ok(new)
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        // Short-circuit forms first.
        match op {
            BinaryOp::LogAnd => {
                return Ok(Value::Int(
                    (self.eval(lhs, env)?.is_truthy() && self.eval(rhs, env)?.is_truthy()) as i64,
                ))
            }
            BinaryOp::LogOr => {
                return Ok(Value::Int(
                    (self.eval(lhs, env)?.is_truthy() || self.eval(rhs, env)?.is_truthy()) as i64,
                ))
            }
            _ => {}
        }
        let l = self.eval(lhs, env)?;
        let r = self.eval(rhs, env)?;
        self.apply_binary(op, l, r)
    }

    fn apply_binary(&self, op: BinaryOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        use BinaryOp::*;
        // Pointer arithmetic on scalar-array element pointers.
        if let (Value::Ptr(PtrTarget::Element { array, index }), Value::Int(n)) = (&l, &r) {
            match op {
                Add => {
                    return Ok(Value::Ptr(PtrTarget::Element {
                        array: array.clone(),
                        index: index.wrapping_add_signed(*n as isize),
                    }))
                }
                Sub => {
                    return Ok(Value::Ptr(PtrTarget::Element {
                        array: array.clone(),
                        index: index.wrapping_add_signed(-(*n as isize)),
                    }))
                }
                _ => {}
            }
        }
        match op {
            Eq => return Ok(Value::Int(l.runtime_eq(&r) as i64)),
            Ne => return Ok(Value::Int(!l.runtime_eq(&r) as i64)),
            _ => {}
        }
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    Add => Value::Int(a.wrapping_add(b)),
                    Sub => Value::Int(a.wrapping_sub(b)),
                    Mul => Value::Int(a.wrapping_mul(b)),
                    Div => {
                        if b == 0 {
                            return Err(RuntimeError::DivideByZero);
                        }
                        Value::Int(a.wrapping_div(b))
                    }
                    Rem => {
                        if b == 0 {
                            return Err(RuntimeError::DivideByZero);
                        }
                        Value::Int(a.wrapping_rem(b))
                    }
                    Shl => Value::Int(a.wrapping_shl(b as u32 & 63)),
                    Shr => Value::Int(a.wrapping_shr(b as u32 & 63)),
                    BitAnd => Value::Int(a & b),
                    BitOr => Value::Int(a | b),
                    BitXor => Value::Int(a ^ b),
                    Lt => Value::Int((a < b) as i64),
                    Gt => Value::Int((a > b) as i64),
                    Le => Value::Int((a <= b) as i64),
                    Ge => Value::Int((a >= b) as i64),
                    Eq | Ne | LogAnd | LogOr => unreachable!("handled above"),
                };
                Ok(v)
            }
            (a, b) => {
                let (x, y) = match (a.as_float(), b.as_float()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "binary {op:?} on non-numeric values"
                        )))
                    }
                };
                let v = match op {
                    Add => Value::Float(x + y),
                    Sub => Value::Float(x - y),
                    Mul => Value::Float(x * y),
                    Div => Value::Float(x / y),
                    Rem => Value::Float(x % y),
                    Lt => Value::Int((x < y) as i64),
                    Gt => Value::Int((x > y) as i64),
                    Le => Value::Int((x <= y) as i64),
                    Ge => Value::Int((x >= y) as i64),
                    _ => {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "binary {op:?} on floats"
                        )))
                    }
                };
                Ok(v)
            }
        }
    }

    fn eval_new(
        &mut self,
        ty: &Type,
        args: &[Expr],
        array_len: Option<&Expr>,
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        // Class allocation.
        if let Some(class) =
            ddm_hierarchy::by_value_class(ty).and_then(|n| self.program.class_by_name(n))
        {
            if let Some(len_expr) = array_len {
                let n = self
                    .eval(len_expr, env)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("non-integer new[] length".into()))?;
                let n = usize::try_from(n)
                    .map_err(|_| RuntimeError::TypeMismatch("negative new[] length".into()))?;
                let mut ids = Vec::with_capacity(n.max(1));
                for _ in 0..n.max(1) {
                    let id = self.store.allocate(self.program, class, AllocKind::Heap);
                    self.construct(id, class, Vec::new())?;
                    ids.push(id);
                }
                let first = ids[0];
                self.store.object_mut(first).array_elems = Some(ids);
                return Ok(Value::Ptr(PtrTarget::Object(first)));
            }
            let argv = args
                .iter()
                .map(|a| self.eval(a, env))
                .collect::<Result<Vec<_>, _>>()?;
            let id = self.store.allocate(self.program, class, AllocKind::Heap);
            self.construct(id, class, argv)?;
            return Ok(Value::Ptr(PtrTarget::Object(id)));
        }
        // Scalar allocation.
        match array_len {
            Some(len_expr) => {
                let n = self
                    .eval(len_expr, env)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("non-integer new[] length".into()))?;
                let n = usize::try_from(n)
                    .map_err(|_| RuntimeError::TypeMismatch("negative new[] length".into()))?;
                let cells: Vec<CellRef> = (0..n)
                    .map(|_| cell(default_value(self.program, ty)))
                    .collect();
                let arr: ArrayRef = Rc::new(std::cell::RefCell::new(cells));
                Ok(Value::Ptr(PtrTarget::Element {
                    array: arr,
                    index: 0,
                }))
            }
            None => {
                let init = match args.first() {
                    Some(a) => self.eval(a, env)?,
                    None => default_value(self.program, ty),
                };
                Ok(Value::Ptr(PtrTarget::Cell(cell(init))))
            }
        }
    }

    fn do_delete(&mut self, v: Value, _is_array: bool) -> Result<(), RuntimeError> {
        match v {
            Value::Ptr(PtrTarget::Null) => Ok(()), // delete nullptr is a no-op
            Value::Ptr(PtrTarget::Object(id)) => {
                if !self.store.object(id).alive {
                    return Ok(()); // double delete: tolerated, like free
                }
                let elems = self.store.object(id).array_elems.clone();
                match elems {
                    Some(list) => {
                        for e in list.into_iter().rev() {
                            if self.store.object(e).alive {
                                let class = self.store.object(e).class;
                                self.destruct(e, class)?;
                                self.store.deallocate(e);
                            }
                        }
                        Ok(())
                    }
                    None => {
                        let class = self.store.object(id).class;
                        self.destruct(id, class)?;
                        self.store.deallocate(id);
                        Ok(())
                    }
                }
            }
            Value::Ptr(PtrTarget::Cell(_)) | Value::Ptr(PtrTarget::Element { .. }) => Ok(()),
            other => Err(RuntimeError::TypeMismatch(format!(
                "delete of non-pointer {other:?}"
            ))),
        }
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        match &callee.kind {
            ExprKind::Ident(name) => {
                // Builtins (unless shadowed by a user function or local).
                if let Some(b) = Builtin::from_name(name) {
                    if self.program.free_function(name).is_none() && env.get(name).is_none() {
                        return self.eval_builtin(b, args, env);
                    }
                }
                // Local or global function pointer.
                if let Some(Binding::Cell(c)) =
                    env.get(name).or_else(|| self.globals.get(name).cloned())
                {
                    let v = c.borrow().clone();
                    if let Value::FnPtr(f) = v {
                        let argv = self.eval_args(f, args, env)?;
                        return self.call_function(f, argv, None);
                    }
                }
                // Implicit this->method(...).
                if let Some(this) = env.this_obj {
                    let class = self.store.object(this).class;
                    if let Ok(Found::Method { func, .. }) = self.lookup.member(class, name) {
                        let argv = self.eval_args(func, args, env)?;
                        return self.call_function(func, argv, Some(this));
                    }
                }
                if let Some(f) = self.program.free_function(name) {
                    let argv = self.eval_args(f, args, env)?;
                    return self.call_function(f, argv, None);
                }
                Err(RuntimeError::Unsupported(format!(
                    "call to unknown function `{name}`"
                )))
            }
            ExprKind::Member {
                base,
                arrow,
                qualifier,
                name,
            } => {
                let base_v = self.eval(base, env)?;
                let obj = self.expect_object(base_v, *arrow)?;
                let dynamic_class = self.store.object(obj).class;
                let lookup_class = match qualifier {
                    Some(q) => self
                        .program
                        .class_by_name(q)
                        .ok_or_else(|| RuntimeError::Lookup(q.clone()))?,
                    None => dynamic_class,
                };
                match self
                    .lookup
                    .member(lookup_class, name)
                    .map_err(|e| RuntimeError::Lookup(e.to_string()))?
                {
                    Found::Method { func, .. } => {
                        let argv = self.eval_args(func, args, env)?;
                        self.call_function(func, argv, Some(obj))
                    }
                    Found::Data(m) => {
                        // Function-pointer data member.
                        self.members_observed.insert(m);
                        let c = self
                            .store
                            .field(obj, m)
                            .ok_or_else(|| RuntimeError::UnknownMember(name.clone()))?;
                        let v = c.borrow().clone();
                        match v {
                            Value::FnPtr(f) => {
                                let argv = self.eval_args(f, args, env)?;
                                self.call_function(f, argv, None)
                            }
                            other => Err(RuntimeError::TypeMismatch(format!(
                                "calling non-function member {other:?}"
                            ))),
                        }
                    }
                }
            }
            _ => {
                let v = self.eval(callee, env)?;
                match v {
                    Value::FnPtr(f) => {
                        let argv = self.eval_args(f, args, env)?;
                        self.call_function(f, argv, None)
                    }
                    other => Err(RuntimeError::TypeMismatch(format!(
                        "calling non-function value {other:?}"
                    ))),
                }
            }
        }
    }

    /// Evaluates call arguments against the callee's parameter list:
    /// reference parameters receive an alias of the argument's place,
    /// everything else is passed by value.
    fn eval_args(
        &mut self,
        func: FuncId,
        args: &[Expr],
        env: &mut Env,
    ) -> Result<Vec<Arg>, RuntimeError> {
        let param_tys: Vec<Type> = self
            .program
            .function(func)
            .params
            .iter()
            .map(|p| p.ty.clone())
            .collect();
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let is_ref = param_tys
                .get(i)
                .is_some_and(|t| matches!(t.kind, TypeKind::Reference(_)));
            if is_ref {
                let place = self.eval_place(a, env)?;
                self.record_member_read(a, env);
                match place {
                    Place::Cell(c) => out.push(Arg::Ref(c)),
                    Place::Object(id) => out.push(Arg::Value(Value::Ptr(PtrTarget::Object(id)))),
                }
            } else {
                out.push(Arg::Value(self.eval(a, env)?));
            }
        }
        Ok(out)
    }

    fn eval_builtin(
        &mut self,
        b: Builtin,
        args: &[Expr],
        env: &mut Env,
    ) -> Result<Value, RuntimeError> {
        use std::fmt::Write as _;
        match b {
            Builtin::PrintInt => {
                let v = self.eval_arg1(args, env)?;
                let n = v
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("print_int of non-int".into()))?;
                let _ = writeln!(self.output, "{n}");
            }
            Builtin::PrintChar => {
                let v = self.eval_arg1(args, env)?;
                let n = v
                    .as_int()
                    .ok_or_else(|| RuntimeError::TypeMismatch("print_char of non-char".into()))?;
                self.output
                    .push(char::from_u32(n as u32).unwrap_or('\u{FFFD}'));
            }
            Builtin::PrintFloat => {
                let v = self.eval_arg1(args, env)?;
                let n = v
                    .as_float()
                    .ok_or_else(|| RuntimeError::TypeMismatch("print_float of non-float".into()))?;
                let _ = writeln!(self.output, "{n}");
            }
            Builtin::PrintStr => {
                let v = self.eval_arg1(args, env)?;
                match v {
                    Value::Str(s) => self.output.push_str(&s),
                    other => {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "print_str of {other:?}"
                        )))
                    }
                }
            }
            Builtin::Free => {
                let v = self.eval_arg1(args, env)?;
                // free() releases storage without running destructors.
                if let Value::Ptr(PtrTarget::Object(id)) = v {
                    self.store.deallocate(id);
                }
            }
        }
        Ok(Value::Void)
    }

    fn eval_arg1(&mut self, args: &[Expr], env: &mut Env) -> Result<Value, RuntimeError> {
        match args {
            [a] => self.eval(a, env),
            _ => Err(RuntimeError::ArityMismatch {
                function: "builtin".to_string(),
                expected: 1,
                got: args.len(),
            }),
        }
    }
}

/// Value-level cast semantics: numeric conversions narrow/widen; pointer
/// casts are identity (the object model is typeless at runtime).
fn cast_value(v: Value, ty: &Type) -> Value {
    match &ty.kind {
        TypeKind::Int | TypeKind::Long | TypeKind::Short | TypeKind::Char | TypeKind::Bool => {
            match v {
                Value::Float(f) => Value::Int(f as i64),
                Value::Int(i) => Value::Int(match ty.kind {
                    TypeKind::Bool => (i != 0) as i64,
                    TypeKind::Char => i as u8 as i64,
                    TypeKind::Short => i as i16 as i64,
                    _ => i,
                }),
                other => other,
            }
        }
        TypeKind::Float | TypeKind::Double => match v {
            Value::Int(i) => Value::Float(i as f64),
            other => other,
        },
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn run(src: &str) -> Execution {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        Interpreter::new(&p)
            .run(&RunConfig::default())
            .expect("run")
    }

    fn run_err(src: &str) -> RuntimeError {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        Interpreter::new(&p)
            .run(&RunConfig::default())
            .expect_err("expected a runtime error")
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let e = run(
            "int main() { int t = 0; for (int i = 1; i <= 10; i++) { if (i % 2 == 0) t += i; } return t; }",
        );
        assert_eq!(e.exit_code, 30);
    }

    #[test]
    fn while_do_while_break_continue() {
        let e = run("int main() {\n\
               int n = 0; int i = 0;\n\
               while (true) { i++; if (i > 5) break; if (i == 2) continue; n += i; }\n\
               do { n += 100; } while (false);\n\
               return n;\n\
             }");
        assert_eq!(e.exit_code, 1 + 3 + 4 + 5 + 100);
    }

    #[test]
    fn function_calls_and_recursion() {
        let e = run(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(10); }",
        );
        assert_eq!(e.exit_code, 55);
    }

    #[test]
    fn class_members_and_methods() {
        let e = run("class Counter {\n\
             public:\n\
               int n;\n\
               Counter() : n(0) { }\n\
               void bump(int by) { n = n + by; }\n\
               int get() { return n; }\n\
             };\n\
             int main() { Counter c; c.bump(3); c.bump(4); return c.get(); }");
        assert_eq!(e.exit_code, 7);
    }

    #[test]
    fn virtual_dispatch_uses_dynamic_type() {
        let e = run("class A { public: virtual int f() { return 1; } };\n\
             class B : public A { public: virtual int f() { return 2; } };\n\
             int main() { B b; A* p = &b; return p->f(); }");
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn qualified_call_bypasses_dispatch() {
        let e = run("class A { public: virtual int f() { return 1; } };\n\
             class B : public A { public: virtual int f() { return 2; } };\n\
             int main() { B b; B* p = &b; return p->A::f(); }");
        assert_eq!(e.exit_code, 1);
    }

    #[test]
    fn inherited_members_shared_with_base() {
        let e = run("class A { public: int x; int getx() { return x; } };\n\
             class B : public A { public: void setx(int v) { x = v; } };\n\
             int main() { B b; b.setx(9); return b.getx(); }");
        assert_eq!(e.exit_code, 9);
    }

    #[test]
    fn constructors_run_bases_members_then_body() {
        let e = run(
            "class Base { public: int b; Base() : b(10) { } };\n\
             class Part { public: int p; Part() : p(5) { } };\n\
             class Whole : public Base { public: Part part; int w; Whole() : w(1) { w = w + b + part.p; } };\n\
             int main() { Whole x; return x.w; }",
        );
        assert_eq!(e.exit_code, 16);
    }

    #[test]
    fn new_delete_and_trace() {
        let e = run("class A { public: int x; A(int v) : x(v) { } };\n\
             int main() { A* p = new A(42); int v = p->x; delete p; return v; }");
        assert_eq!(e.exit_code, 42);
        assert_eq!(e.trace.allocation_count(), 1);
        assert_eq!(e.trace.events().len(), 2);
    }

    #[test]
    fn new_array_and_delete_array() {
        let e = run(
            "class A { public: int x; A() : x(7) { } };\n\
             int main() { A* arr = new A[3]; int t = arr[0].x + arr[2].x; delete[] arr; return t; }",
        );
        assert_eq!(e.exit_code, 14);
        assert_eq!(e.trace.allocation_count(), 3);
        assert_eq!(e.trace.events().len(), 6);
    }

    #[test]
    fn stack_objects_deallocate_at_scope_exit() {
        let e = run("class A { public: int x; };\n\
             int main() { { A a; a.x = 1; } { A b; b.x = 2; } return 0; }");
        // Two allocations, two scope-exit deallocations.
        assert_eq!(e.trace.allocation_count(), 2);
        assert_eq!(e.trace.events().len(), 4);
        let deltas: Vec<i8> = e.trace.events().iter().map(|ev| ev.delta).collect();
        assert_eq!(deltas, vec![1, -1, 1, -1]);
    }

    #[test]
    fn destructors_run_in_reverse_order() {
        let e = run(
            "class Logger { public: int id; Logger(int i) : id(i) { } ~Logger() { print_int(id); } };\n\
             int main() { Logger a(1); Logger b(2); return 0; }",
        );
        assert_eq!(e.output, "2\n1\n");
    }

    #[test]
    fn virtual_destructor_dispatches() {
        let e = run("class A { public: virtual ~A() { print_int(1); } };\n\
             class B : public A { public: ~B() { print_int(2); } };\n\
             int main() { A* p = new B(); delete p; return 0; }");
        // B's dtor then A's (base) dtor.
        assert_eq!(e.output, "2\n1\n");
    }

    #[test]
    fn scalar_heap_arrays_and_pointer_arithmetic() {
        let e = run("int main() {\n\
               int* a = new int[5];\n\
               for (int i = 0; i < 5; i++) { a[i] = i * i; }\n\
               int* p = a + 2;\n\
               int v = *p + a[4];\n\
               delete[] a;\n\
               return v;\n\
             }");
        assert_eq!(e.exit_code, 4 + 16);
    }

    #[test]
    fn member_arrays() {
        let e = run("class Buf { public: int data[4]; };\n\
             int main() { Buf b; b.data[1] = 5; b.data[3] = 7; return b.data[1] + b.data[3]; }");
        assert_eq!(e.exit_code, 12);
    }

    #[test]
    fn function_pointers() {
        let e = run(
            "int add(int a, int b) { return a + b; }\n\
             int mul(int a, int b) { return a * b; }\n\
             int main() { int (*op)(int, int) = add; int x = op(2, 3); op = &mul; return x + op(2, 3); }",
        );
        assert_eq!(e.exit_code, 11);
    }

    #[test]
    fn pointer_to_member_access() {
        let e = run("class A { public: int m; A() : m(33) { } };\n\
             int main() { int A::* pm = &A::m; A a; A* p = &a; return a.*pm + p->*pm; }");
        assert_eq!(e.exit_code, 66);
    }

    #[test]
    fn globals_initialized_before_main() {
        let e = run("int g = 5;\n\
             class C { public: int v; C() : v(7) { } };\n\
             C gc;\n\
             int main() { return g + gc.v; }");
        assert_eq!(e.exit_code, 12);
        // The global object allocates and never deallocates.
        assert_eq!(e.trace.allocation_count(), 1);
        assert_eq!(e.trace.events().len(), 1);
    }

    #[test]
    fn output_builtins() {
        let e = run(
            "int main() { print_str(\"n=\"); print_int(42); print_char('x'); print_float(1.5); return 0; }",
        );
        assert_eq!(e.output, "n=42\nx1.5\n");
    }

    #[test]
    fn members_observed_oracle_records_reads_not_writes() {
        let e = run("class A { public: int r; int w; };\n\
             int main() { A a; a.w = 1; return a.r; }");
        assert_eq!(e.members_observed.len(), 1, "only the read member");
    }

    #[test]
    fn address_of_member_is_observed() {
        let e = run("class A { public: int m; };\n\
             int main() { A a; int* p = &a.m; *p = 4; return 0; }");
        assert_eq!(e.members_observed.len(), 1);
    }

    #[test]
    fn implicit_this_reads_are_observed() {
        let e = run("class A { public: int m; int get() { return m; } };\n\
             int main() { A a; return a.get(); }");
        assert_eq!(e.members_observed.len(), 1);
    }

    #[test]
    fn null_deref_is_an_error() {
        let err = run_err(
            "class A { public: int x; };\n\
             int main() { A* p = nullptr; return p->x; }",
        );
        assert_eq!(err, RuntimeError::NullDeref);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let err = run_err("int main() { int z = 0; return 5 / z; }");
        assert_eq!(err, RuntimeError::DivideByZero);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let tu = parse("int main() { while (true) { } return 0; }").unwrap();
        let p = Program::build(&tu).unwrap();
        let err = Interpreter::new(&p)
            .run(&RunConfig { fuel: 10_000 })
            .unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
    }

    #[test]
    fn out_of_bounds_index_is_an_error() {
        let err = run_err("int main() { int a[3]; return a[7]; }");
        assert!(matches!(err, RuntimeError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn delete_null_is_noop() {
        let e =
            run("class A { public: int x; }; int main() { A* p = nullptr; delete p; return 3; }");
        assert_eq!(e.exit_code, 3);
    }

    #[test]
    fn figure1_program_runs() {
        let e = run(
            "class N { public: int mn1; int mn2; };\n\
             class A { public: virtual int f() { return ma1; } int ma1; int ma2; int ma3; };\n\
             class B : public A { public: virtual int f() { return mb1; } int mb1; N mb2; int mb3; int mb4; };\n\
             class C : public A { public: virtual int f() { return mc1; } int mc1; };\n\
             int foo(int* x) { return (*x) + 1; }\n\
             int main() {\n\
               A a; B b; C c; A* ap;\n\
               a.ma3 = b.mb3 + 1;\n\
               int i = 10;\n\
               if (i < 20) { ap = &a; } else { ap = &b; }\n\
               return ap->f() + b.mb2.mn1 + foo(&b.mb4);\n\
             }",
        );
        // Everything is zero-initialized: f() returns 0, mn1 is 0, foo(&0)+1.
        assert_eq!(e.exit_code, 1);
        assert_eq!(e.trace.allocation_count(), 3);
    }

    #[test]
    fn enum_constants_evaluate() {
        let e = run("enum State { Idle = 1, Busy = 4 };\n\
             int main() { State s = Busy; if (s == Busy) return Idle + Busy; return 0; }");
        assert_eq!(e.exit_code, 5);
    }

    #[test]
    fn ternary_and_comma() {
        let e = run("int main() { int a = 1; int b = (a = 5, a > 2 ? 10 : 20); return a + b; }");
        assert_eq!(e.exit_code, 15);
    }

    #[test]
    fn casts_between_numeric_types() {
        let e =
            run("int main() { double d = 3.9; int i = (int)d; char c = (char)321; return i + c; }");
        assert_eq!(e.exit_code, 3 + 65);
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use ddm_cppfront::parse;

    fn run(src: &str) -> Execution {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        Interpreter::new(&p)
            .run(&RunConfig::default())
            .expect("run")
    }

    #[test]
    fn reference_parameter_aliases_local() {
        let e = run("void bump(int& x) { x = x + 1; }\n\
             int main() { int v = 5; bump(v); bump(v); return v; }");
        assert_eq!(e.exit_code, 7);
    }

    #[test]
    fn reference_parameter_aliases_member() {
        let e = run("class A { public: int n; };\n\
             void set(int& slot, int v) { slot = v; }\n\
             int main() { A a; set(a.n, 42); return a.n; }");
        assert_eq!(e.exit_code, 42);
    }

    #[test]
    fn reference_parameter_aliases_array_element() {
        let e = run("void zero(int& x) { x = 0; }\n\
             int main() { int buf[3]; buf[1] = 9; zero(buf[1]); return buf[1] + 4; }");
        assert_eq!(e.exit_code, 4);
    }

    #[test]
    fn swap_through_references() {
        let e = run("void swap(int& a, int& b) { int t = a; a = b; b = t; }\n\
             int main() { int x = 3; int y = 8; swap(x, y); return x * 10 + y; }");
        assert_eq!(e.exit_code, 83);
    }

    #[test]
    fn value_parameter_does_not_alias() {
        let e = run("void try_bump(int x) { x = x + 1; }\n\
             int main() { int v = 5; try_bump(v); return v; }");
        assert_eq!(e.exit_code, 5);
    }

    #[test]
    fn reference_to_member_read_is_observed_for_oracle() {
        let e = run("class A { public: int n; };\n\
             int get(int& slot) { return slot; }\n\
             int main() { A a; a.n = 6; return get(a.n); }");
        // Passing a.n by reference and reading it through the reference
        // must register as an observation of A::n.
        assert_eq!(e.exit_code, 6);
        assert_eq!(e.members_observed.len(), 1);
    }
}

#[cfg(test)]
mod switch_tests {
    use super::*;
    use ddm_cppfront::parse;

    fn run(src: &str) -> Execution {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        Interpreter::new(&p)
            .run(&RunConfig::default())
            .expect("run")
    }

    #[test]
    fn switch_selects_matching_case() {
        let e = run("int classify(int x) {\n\
               switch (x) {\n\
                 case 1: return 10;\n\
                 case 2: return 20;\n\
                 default: return 99;\n\
               }\n\
             }\n\
             int main() { return classify(2) + classify(1) + classify(7); }");
        assert_eq!(e.exit_code, 129);
    }

    #[test]
    fn switch_falls_through_without_break() {
        let e = run("int main() {\n\
               int acc = 0;\n\
               switch (2) {\n\
                 case 1: acc = acc + 1;\n\
                 case 2: acc = acc + 10;\n\
                 case 3: acc = acc + 100;\n\
                 default: acc = acc + 1000;\n\
               }\n\
               return acc;\n\
             }");
        assert_eq!(e.exit_code, 1110, "2 falls through 3 and default");
    }

    #[test]
    fn switch_break_stops_fallthrough() {
        let e = run("int main() {\n\
               int acc = 0;\n\
               switch (1) {\n\
                 case 1: acc = acc + 1; break;\n\
                 case 2: acc = acc + 10; break;\n\
               }\n\
               return acc;\n\
             }");
        assert_eq!(e.exit_code, 1);
    }

    #[test]
    fn switch_without_match_or_default_is_skipped() {
        let e = run("int main() { int x = 5; switch (x) { case 1: x = 0; } return x; }");
        assert_eq!(e.exit_code, 5);
    }

    #[test]
    fn switch_on_enum_constants() {
        let e = run("enum Kind { ALPHA = 4, BETA = 9 };\n\
             int main() {\n\
               int k = BETA;\n\
               switch (k) {\n\
                 case ALPHA: return 1;\n\
                 case BETA: return 2;\n\
               }\n\
               return 0;\n\
             }");
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn return_inside_switch_propagates() {
        let e = run("int main() {\n\
               for (int i = 0; i < 10; i++) {\n\
                 switch (i) {\n\
                   case 3: return i * 2;\n\
                   default: ;\n\
                 }\n\
               }\n\
               return 0;\n\
             }");
        assert_eq!(e.exit_code, 6);
    }

    #[test]
    fn member_reads_inside_switch_are_observed() {
        let e = run("class A { public: int mode; int payload; };\n\
             int main() {\n\
               A a; a.mode = 1;\n\
               switch (a.mode) {\n\
                 case 1: return a.payload;\n\
                 default: return 0;\n\
               }\n\
             }");
        assert_eq!(e.members_observed.len(), 2);
    }
}

#[cfg(test)]
mod out_of_line_runtime_tests {
    use super::*;
    use ddm_cppfront::parse;

    #[test]
    fn out_of_line_methods_execute() {
        let tu = parse(
            "class Node { public: Node* next; int v; Node* tail(); };\n\
             Node* Node::tail() {\n\
                 Node* cur = this;\n\
                 while (cur->next != nullptr) { cur = cur->next; }\n\
                 return cur;\n\
             }\n\
             int main() { Node a; Node b; a.next = &b; b.next = nullptr; a.v = 1; b.v = 2; return a.tail()->v; }",
        )
        .unwrap();
        let p = Program::build(&tu).unwrap();
        let e = Interpreter::new(&p).run(&RunConfig::default()).unwrap();
        assert_eq!(e.exit_code, 2);
    }
}

#[cfg(test)]
mod inheritance_runtime_tests {
    use super::*;
    use ddm_cppfront::parse;

    fn run(src: &str) -> Execution {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        Interpreter::new(&p)
            .run(&RunConfig::default())
            .expect("run")
    }

    #[test]
    fn multiple_inheritance_members_are_distinct() {
        let e = run(
            "class X { public: int xv; };\n\
             class Y { public: int yv; };\n\
             class D : public X, public Y { public: int dv; };\n\
             int main() { D d; d.xv = 1; d.yv = 2; d.dv = 4; return d.xv + d.yv + d.dv; }",
        );
        assert_eq!(e.exit_code, 7);
    }

    #[test]
    fn virtual_base_members_are_shared_at_runtime() {
        // Writing the shared virtual base member through one path and
        // reading through another must see the same storage.
        let e = run(
            "class Top { public: int shared; };\n\
             class L : public virtual Top { public: void setit(int v) { shared = v; } };\n\
             class R : public virtual Top { public: int getit() { return shared; } };\n\
             class D : public L, public R { };\n\
             int main() { D d; d.setit(42); return d.getit(); }",
        );
        assert_eq!(e.exit_code, 42);
    }

    #[test]
    fn deep_chain_dispatch_picks_most_derived_override() {
        let e = run(
            "class A { public: virtual int id() { return 1; } };\n\
             class B : public A { };\n\
             class C : public B { public: virtual int id() { return 3; } };\n\
             class E : public C { };\n\
             int main() { E e; A* p = &e; return p->id(); }",
        );
        assert_eq!(e.exit_code, 3);
    }

    #[test]
    fn base_method_sees_derived_override_via_this() {
        // Template-method pattern: a base method calling a virtual hook
        // dispatches to the derived override through `this`.
        let e = run(
            "class Base { public: int run() { return hook() * 10; } virtual int hook() { return 1; } };\n\
             class Derived : public Base { public: virtual int hook() { return 7; } };\n\
             int main() { Derived d; return d.run(); }",
        );
        assert_eq!(e.exit_code, 70);
    }

    #[test]
    fn ctor_chain_runs_base_before_member_before_body() {
        let e = run(
            "class Probe { public: int tag; Probe(int t) : tag(t) { print_int(t); } };\n\
             class Base { public: Base() { print_int(1); } };\n\
             class Whole : public Base { public: Probe p; Whole() : p(2) { print_int(3); } };\n\
             int main() { Whole w; return 0; }",
        );
        assert_eq!(e.output, "1\n2\n3\n");
    }

    #[test]
    fn dtor_chain_runs_body_then_members_then_bases() {
        let e = run(
            "class Part { public: ~Part() { print_int(2); } };\n\
             class Base { public: ~Base() { print_int(3); } };\n\
             class Whole : public Base { public: Part part; ~Whole() { print_int(1); } };\n\
             int main() { { Whole w; } return 0; }",
        );
        assert_eq!(e.output, "1\n2\n3\n");
    }

    #[test]
    fn qualified_base_member_access_through_derived() {
        let e = run(
            "class A { public: int m; };\n\
             class B : public A { public: int m; };\n\
             int main() { B b; b.m = 5; b.A::m = 9; return b.A::m * 10 + b.m; }",
        );
        assert_eq!(e.exit_code, 95);
    }
}
