//! # ddm-dynamic
//!
//! Dynamic measurement substrate for the dead-data-member study: a
//! deterministic tree-walking [`Interpreter`] for the C++ subset and a
//! heap [profiler](profile_trace) that reproduces the paper's Table 2 /
//! Figure 4 numbers (object space, dead-member space, and the two
//! high-water marks) from the interpreter's allocation trace.
//!
//! The original paper instrumented RS/6000 binaries and analysed dynamic
//! traces (Nair's profiling tooling); the interpreter produces the exact
//! same information — a timestamped stream of (class, size,
//! allocate/deallocate) events — deterministically and portably.
//!
//! # Examples
//!
//! ```
//! use ddm_core::AnalysisPipeline;
//! use ddm_dynamic::{profile_trace, Interpreter, RunConfig};
//!
//! let src = "class Pair { public: int used; int unused; };\n\
//!            int main() { Pair* p = new Pair(); int v = p->used; delete p; return v; }";
//! let analysis = AnalysisPipeline::from_source(src)?;
//! let exec = Interpreter::new(analysis.program()).run(&RunConfig::default())?;
//! let profile = profile_trace(analysis.program(), &exec.trace, analysis.liveness());
//! assert_eq!(profile.dead_space_percentage(), 50.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod heap;
pub mod interp;
pub mod profile;
pub mod value;

pub use error::RuntimeError;
pub use heap::{AllocKind, HeapEvent, HeapTrace, ObjectStore};
pub use interp::{Execution, Interpreter, RunConfig};
pub use profile::{profile_trace, HeapProfile};
pub use value::{CellRef, ObjId, PtrTarget, Value};
