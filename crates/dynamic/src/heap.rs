//! The interpreter's object store and the allocation event trace.
//!
//! Every class object — stack local, global, or heap-allocated — lives in
//! the [`ObjectStore`]. Each allocation and deallocation appends an event
//! to the [`HeapTrace`], timestamped with a logical clock; the profiler
//! replays the trace against the layout engine to compute the paper's
//! Table 2 numbers (object space, dead-member space, high-water marks).

use crate::value::{cell, CellRef, ObjId, Value};
use ddm_cppfront::ast::TypeKind;
use ddm_hierarchy::{ClassId, MemberRef, Program, SubobjectTree};
use std::collections::HashMap;

/// How an object was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// A function-local (stack) object, deallocated at scope exit.
    Stack,
    /// A heap object from `new` / `new[]`.
    Heap,
    /// A global, live for the entire execution.
    Global,
}

/// One allocation or deallocation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapEvent {
    /// Logical time (monotonically increasing).
    pub time: u64,
    /// The object's most-derived class.
    pub class: ClassId,
    /// `+1` for allocation, `-1` for deallocation.
    pub delta: i8,
    /// How the object was allocated.
    pub kind: AllocKind,
}

/// The chronological allocation/deallocation trace of one execution.
#[derive(Debug, Clone, Default)]
pub struct HeapTrace {
    events: Vec<HeapEvent>,
}

impl HeapTrace {
    /// The events in chronological order.
    pub fn events(&self) -> &[HeapEvent] {
        &self.events
    }

    /// Number of allocation events.
    pub fn allocation_count(&self) -> usize {
        self.events.iter().filter(|e| e.delta > 0).count()
    }

    fn push(&mut self, ev: HeapEvent) {
        self.events.push(ev);
    }
}

/// A live class object.
#[derive(Debug)]
pub struct HeapObject {
    /// Most-derived class.
    pub class: ClassId,
    /// Field storage, one cell per declared member reachable in the
    /// object (duplicate non-virtual embeddings share a slot; programs
    /// that need distinct copies would be rejected at lookup anyway).
    pub fields: HashMap<MemberRef, CellRef>,
    /// For `new T[n]`: the sibling element objects (index 0 is this one).
    pub array_elems: Option<Vec<ObjId>>,
    /// Objects backing by-value class members; their space is part of
    /// this object's layout, so they record no trace events of their own.
    pub nested: Vec<ObjId>,
    /// How the object was allocated.
    pub kind: AllocKind,
    /// Whether the object is still live.
    pub alive: bool,
    /// True for member subobjects embedded in another object.
    pub is_nested: bool,
}

/// The object store plus the logical clock and event trace.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: Vec<HeapObject>,
    clock: u64,
    trace: HeapTrace,
    /// Bytes of live objects right now and the peak (object count proxy;
    /// byte-accurate numbers come from the profiler replay).
    live_count: i64,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Advances and returns the logical clock.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Allocates an object of `class`, zero-initializing one cell per
    /// member of every subobject. By-value class members get recursively
    /// allocated *nested* objects (wired into the field cells as object
    /// pointers) whose space is already included in this object's layout,
    /// so they produce no trace events of their own.
    pub fn allocate(&mut self, program: &Program, class: ClassId, kind: AllocKind) -> ObjId {
        let id = self.allocate_inner(program, class, kind, false);
        let time = self.tick();
        self.trace.push(HeapEvent {
            time,
            class,
            delta: 1,
            kind,
        });
        self.live_count += 1;
        id
    }

    fn allocate_inner(
        &mut self,
        program: &Program,
        class: ClassId,
        kind: AllocKind,
        is_nested: bool,
    ) -> ObjId {
        let tree = SubobjectTree::build(program, class);
        let mut fields = HashMap::new();
        let mut nested = Vec::new();
        for (_, node) in tree.iter() {
            let info = program.class(node.class);
            for (idx, m) in info.members.iter().enumerate() {
                let mref = MemberRef::new(node.class, idx);
                if fields.contains_key(&mref) {
                    continue;
                }
                let value = match member_class(program, &m.ty) {
                    Some(member_class_id) => {
                        let child = self.allocate_inner(program, member_class_id, kind, true);
                        nested.push(child);
                        Value::Ptr(crate::value::PtrTarget::Object(child))
                    }
                    None => default_value(program, &m.ty),
                };
                fields.insert(mref, cell(value));
            }
        }
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(HeapObject {
            class,
            fields,
            array_elems: None,
            nested,
            kind,
            alive: true,
            is_nested,
        });
        id
    }

    /// Marks `id` deallocated (with its nested member objects) and records
    /// the event. Idempotent: double frees record nothing.
    pub fn deallocate(&mut self, id: ObjId) {
        let obj = &mut self.objects[id.0 as usize];
        if !obj.alive {
            return;
        }
        obj.alive = false;
        let class = obj.class;
        let kind = obj.kind;
        let is_nested = obj.is_nested;
        let mut stack = obj.nested.clone();
        while let Some(c) = stack.pop() {
            let child = &mut self.objects[c.0 as usize];
            if child.alive {
                child.alive = false;
                stack.extend(child.nested.iter().copied());
            }
        }
        if !is_nested {
            let time = self.tick();
            self.trace.push(HeapEvent {
                time,
                class,
                delta: -1,
                kind,
            });
            self.live_count -= 1;
        }
    }

    /// The object `id`.
    pub fn object(&self, id: ObjId) -> &HeapObject {
        &self.objects[id.0 as usize]
    }

    /// Mutable access to object `id`.
    pub fn object_mut(&mut self, id: ObjId) -> &mut HeapObject {
        &mut self.objects[id.0 as usize]
    }

    /// The field cell for `member` of object `id`, if present.
    pub fn field(&self, id: ObjId, member: MemberRef) -> Option<CellRef> {
        self.objects[id.0 as usize].fields.get(&member).cloned()
    }

    /// The event trace.
    pub fn trace(&self) -> &HeapTrace {
        &self.trace
    }

    /// Consumes the store, returning the trace.
    pub fn into_trace(self) -> HeapTrace {
        self.trace
    }

    /// Number of objects currently live.
    pub fn live_objects(&self) -> i64 {
        self.live_count
    }

    /// Total number of objects ever allocated.
    pub fn total_allocated(&self) -> usize {
        self.objects.len()
    }
}

/// The zero value for a declared type (C++ leaves locals uninitialized;
/// the deterministic interpreter zero-fills instead, which any
/// well-defined benchmark cannot observe the difference of).
#[allow(clippy::only_used_in_recursion)]
pub fn default_value(program: &Program, ty: &ddm_cppfront::ast::Type) -> Value {
    match &ty.kind {
        TypeKind::Float | TypeKind::Double => Value::Float(0.0),
        TypeKind::Pointer(_) | TypeKind::Reference(_) => Value::null(),
        TypeKind::MemberPointer { .. } => Value::null(),
        TypeKind::Array(elem, n) => {
            let cells = (0..*n)
                .map(|_| cell(default_value(program, elem)))
                .collect();
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(cells)))
        }
        // Direct by-value class members are wired to nested objects by
        // `ObjectStore::allocate`; arrays of class type are outside the
        // supported subset and fall back to null.
        TypeKind::Named(_) => Value::null(),
        _ => Value::Int(0),
    }
}

/// The class id of a *direct* by-value class member type (`N n;`).
/// Arrays of class type are not part of the supported subset.
fn member_class(program: &Program, ty: &ddm_cppfront::ast::Type) -> Option<ClassId> {
    match &ty.kind {
        TypeKind::Named(n) => program.class_by_name(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn allocate_creates_cells_for_all_subobject_members() {
        let p = program(
            "class A { public: int a; }; class B : public A { public: int b1; int b2; };\n\
             int main() { return 0; }",
        );
        let mut store = ObjectStore::new();
        let b = p.class_by_name("B").unwrap();
        let id = store.allocate(&p, b, AllocKind::Stack);
        assert_eq!(store.object(id).fields.len(), 3);
        let a = p.class_by_name("A").unwrap();
        assert!(store.field(id, MemberRef::new(a, 0)).is_some());
        assert!(store.field(id, MemberRef::new(b, 1)).is_some());
    }

    #[test]
    fn trace_records_alloc_and_dealloc_in_order() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        let a = p.class_by_name("A").unwrap();
        let mut store = ObjectStore::new();
        let o1 = store.allocate(&p, a, AllocKind::Heap);
        let _o2 = store.allocate(&p, a, AllocKind::Heap);
        store.deallocate(o1);
        let events = store.trace().events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].delta, 1);
        assert_eq!(events[2].delta, -1);
        assert!(events[0].time < events[1].time && events[1].time < events[2].time);
        assert_eq!(store.trace().allocation_count(), 2);
        assert_eq!(store.live_objects(), 1);
    }

    #[test]
    fn double_free_records_single_event() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        let a = p.class_by_name("A").unwrap();
        let mut store = ObjectStore::new();
        let o = store.allocate(&p, a, AllocKind::Heap);
        store.deallocate(o);
        store.deallocate(o);
        assert_eq!(store.trace().events().len(), 2);
    }

    #[test]
    fn default_values_by_type() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        assert!(matches!(
            default_value(&p, &ddm_cppfront::ast::Type::int()),
            Value::Int(0)
        ));
        assert!(matches!(
            default_value(&p, &ddm_cppfront::ast::Type::plain(TypeKind::Double)),
            Value::Float(_)
        ));
        let arr_ty = ddm_cppfront::ast::Type::plain(TypeKind::Array(
            Box::new(ddm_cppfront::ast::Type::int()),
            4,
        ));
        match default_value(&p, &arr_ty) {
            Value::Array(a) => assert_eq!(a.borrow().len(), 4),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
