//! Runtime values and storage cells.

use ddm_hierarchy::{FuncId, MemberRef};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A mutable storage cell. Locals, object fields and array elements are
/// all cells, so pointers can uniformly reference any of them.
pub type CellRef = Rc<RefCell<Value>>;

/// An array of cells (scalar arrays; object arrays hold `ObjId`s via
/// pointers stored in the cells).
pub type ArrayRef = Rc<RefCell<Vec<CellRef>>>;

/// Identifies a class object in the interpreter's object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// What a pointer value refers to.
#[derive(Debug, Clone)]
pub enum PtrTarget {
    /// The null pointer.
    Null,
    /// A class object (the result of `&obj`, `new T`, or `this`).
    Object(ObjId),
    /// A scalar storage cell (`&local`, `&obj.member`).
    Cell(CellRef),
    /// An element of a scalar array.
    Element {
        /// The array.
        array: ArrayRef,
        /// Element index.
        index: usize,
    },
}

impl PtrTarget {
    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        matches!(self, PtrTarget::Null)
    }
}

impl PartialEq for PtrTarget {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PtrTarget::Null, PtrTarget::Null) => true,
            (PtrTarget::Object(a), PtrTarget::Object(b)) => a == b,
            (PtrTarget::Cell(a), PtrTarget::Cell(b)) => Rc::ptr_eq(a, b),
            (
                PtrTarget::Element { array: a, index: i },
                PtrTarget::Element { array: b, index: j },
            ) => Rc::ptr_eq(a, b) && i == j,
            _ => false,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integers, characters, booleans, enumerators.
    Int(i64),
    /// `float` / `double`.
    Float(f64),
    /// Any data pointer or reference.
    Ptr(PtrTarget),
    /// A function pointer.
    FnPtr(FuncId),
    /// A pointer to data member (`&C::m`).
    MemberPtr(MemberRef),
    /// A string literal.
    Str(Rc<str>),
    /// An array value (member or local of array type).
    Array(ArrayRef),
    /// The absence of a value (`void` calls).
    Void,
}

impl Value {
    /// The null-pointer value.
    pub fn null() -> Value {
        Value::Ptr(PtrTarget::Null)
    }

    /// C++ truthiness: nonzero numbers and non-null pointers are true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr(p) => !p.is_null(),
            Value::FnPtr(_) | Value::MemberPtr(_) | Value::Str(_) | Value::Array(_) => true,
            Value::Void => false,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Structural equality used by `==` / `!=` at runtime.
    pub fn runtime_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Ptr(a), Value::Ptr(b)) => a == b,
            (Value::FnPtr(a), Value::FnPtr(b)) => a == b,
            (Value::MemberPtr(a), Value::MemberPtr(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Comparing a pointer against literal 0 (pre-nullptr style).
            (Value::Ptr(p), Value::Int(0)) | (Value::Int(0), Value::Ptr(p)) => p.is_null(),
            _ => false,
        }
    }
}

/// Creates a fresh cell holding `v`.
pub fn cell(v: Value) -> CellRef {
    Rc::new(RefCell::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_cpp() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(!Value::null().is_truthy());
        assert!(Value::Ptr(PtrTarget::Object(ObjId(3))).is_truthy());
        assert!(!Value::Void.is_truthy());
    }

    #[test]
    fn pointer_equality_is_identity() {
        let c1 = cell(Value::Int(1));
        let c2 = cell(Value::Int(1));
        assert_eq!(PtrTarget::Cell(c1.clone()), PtrTarget::Cell(c1.clone()));
        assert_ne!(PtrTarget::Cell(c1), PtrTarget::Cell(c2));
        assert_eq!(PtrTarget::Null, PtrTarget::Null);
        assert_ne!(PtrTarget::Object(ObjId(1)), PtrTarget::Object(ObjId(2)));
    }

    #[test]
    fn element_pointers_compare_by_array_and_index() {
        let arr: ArrayRef = Rc::new(RefCell::new(vec![cell(Value::Int(0)), cell(Value::Int(1))]));
        let p0 = PtrTarget::Element {
            array: arr.clone(),
            index: 0,
        };
        let p0b = PtrTarget::Element {
            array: arr.clone(),
            index: 0,
        };
        let p1 = PtrTarget::Element {
            array: arr,
            index: 1,
        };
        assert_eq!(p0, p0b);
        assert_ne!(p0, p1);
    }

    #[test]
    fn null_pointer_equals_literal_zero() {
        assert!(Value::null().runtime_eq(&Value::Int(0)));
        assert!(!Value::Ptr(PtrTarget::Object(ObjId(0))).runtime_eq(&Value::Int(0)));
    }

    #[test]
    fn mixed_numeric_equality() {
        assert!(Value::Int(2).runtime_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).runtime_eq(&Value::Float(2.5)));
    }
}
