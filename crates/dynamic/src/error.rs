//! Runtime errors.

use std::error::Error;
use std::fmt;

/// An error raised while interpreting a program.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The program has no `main` function.
    NoMain,
    /// Dereference of a null pointer.
    NullDeref,
    /// A member access on a value that is not an object.
    NotAnObject(String),
    /// A member name that the object does not contain.
    UnknownMember(String),
    /// A call with the wrong number of arguments.
    ArityMismatch {
        /// The callee's display name.
        function: String,
        /// Declared parameter count.
        expected: usize,
        /// Call-site argument count.
        got: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Array or pointer index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The container length.
        len: usize,
    },
    /// The step budget was exhausted (likely an infinite loop).
    OutOfFuel,
    /// A construct the interpreter does not model.
    Unsupported(String),
    /// A value had the wrong shape for an operation.
    TypeMismatch(String),
    /// Member lookup failed at runtime.
    Lookup(String),
    /// A call to a pure-virtual / body-less function.
    MissingBody(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoMain => write!(f, "program has no `main` function"),
            RuntimeError::NullDeref => write!(f, "null pointer dereference"),
            RuntimeError::NotAnObject(what) => write!(f, "member access on non-object: {what}"),
            RuntimeError::UnknownMember(name) => write!(f, "object has no member `{name}`"),
            RuntimeError::ArityMismatch {
                function,
                expected,
                got,
            } => write!(f, "`{function}` expects {expected} arguments, got {got}"),
            RuntimeError::DivideByZero => write!(f, "integer division by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            RuntimeError::OutOfFuel => write!(f, "execution step budget exhausted"),
            RuntimeError::Unsupported(what) => write!(f, "unsupported at runtime: {what}"),
            RuntimeError::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            RuntimeError::Lookup(what) => write!(f, "member lookup failed: {what}"),
            RuntimeError::MissingBody(name) => {
                write!(f, "call to function without a body: `{name}`")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(RuntimeError::NullDeref.to_string().contains("null"));
        let e = RuntimeError::ArityMismatch {
            function: "f".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expects 2"));
        assert!(RuntimeError::IndexOutOfBounds { index: 9, len: 4 }
            .to_string()
            .contains("9"));
    }
}
