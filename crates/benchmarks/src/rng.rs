//! Minimal deterministic pseudo-random number generator.
//!
//! The generator and scaling benchmarks only need reproducible streams,
//! not cryptographic quality, so a self-contained SplitMix64 keeps the
//! workspace free of external crates (the build environment has no
//! network access to a registry). Equal seeds produce equal streams on
//! every platform.

/// A seeded SplitMix64 stream (Steele, Lea & Flood, OOPSLA'14).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `range` (which must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range over empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded sampling; the tiny modulo bias of a
        // plain `%` is irrelevant here, but this form is branch-free and
        // just as cheap.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
        // Tight range is always its single value.
        assert_eq!(r.gen_range(5..6), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(4);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Rng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
