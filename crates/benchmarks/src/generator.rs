//! Seeded random program generator.
//!
//! Produces valid, terminating programs in the analysed C++ subset, used
//! for two purposes:
//!
//! 1. **Property tests** — the generated programs execute deterministically
//!    in the interpreter, so the dynamic member-observation oracle can be
//!    checked against the static analysis for soundness;
//! 2. **Scaling benchmarks** — the paper claims the analysis runs in
//!    `O(N + C×M)` (§3.4); the generator sweeps the number of expressions
//!    `N` and the class/member product `C×M` independently.
//!
//! Generated programs deliberately mix the paper's liveness mechanisms:
//! read fields, write-only fields, fields read only from never-called
//! methods, inheritance chains with virtual dispatch, heap and stack
//! allocation, and `delete`.

use crate::rng::Rng;
use std::fmt::Write as _;

/// Size and shape parameters for one generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of classes.
    pub classes: usize,
    /// Data members per class.
    pub members_per_class: usize,
    /// Methods per class.
    pub methods_per_class: usize,
    /// Statements per method body.
    pub stmts_per_method: usize,
    /// Objects created (and exercised) in `main`.
    pub objects_in_main: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            classes: 6,
            members_per_class: 4,
            methods_per_class: 3,
            stmts_per_method: 4,
            objects_in_main: 6,
        }
    }
}

/// Generates a program from `config` and `seed`. Equal inputs produce
/// byte-identical output.
///
/// # Examples
///
/// ```
/// use ddm_benchmarks::generator::{generate, GeneratorConfig};
/// let src = generate(&GeneratorConfig::default(), 42);
/// let program = ddm_hierarchy::Program::build(&ddm_cppfront::parse(&src).unwrap()).unwrap();
/// assert!(program.class_count() >= 6);
/// ```
pub fn generate(config: &GeneratorConfig, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = String::new();
    let _ = writeln!(out, "// generated: seed={seed} config={config:?}");

    let nclasses = config.classes.max(1);
    // Decide the inheritance shape up front: class i may derive from a
    // class with a smaller index (guaranteeing acyclicity).
    let mut base_of: Vec<Option<usize>> = vec![None; nclasses];
    for (i, slot) in base_of.iter_mut().enumerate().skip(1) {
        if rng.gen_bool(0.4) {
            *slot = Some(rng.gen_range(0..i));
        }
    }

    #[allow(clippy::needless_range_loop)]
    for i in 0..nclasses {
        let head = match base_of[i] {
            Some(b) => format!("class K{i} : public K{b} {{"),
            None => format!("class K{i} {{"),
        };
        let _ = writeln!(out, "{head}\npublic:");
        for m in 0..config.members_per_class {
            let _ = writeln!(out, "    int f{i}_{m};");
        }
        // Constructor zero-fills every member (writes never liven).
        let _ = write!(out, "    K{i}()");
        if let Some(b) = base_of[i] {
            let _ = write!(out, " : K{b}()");
        }
        let _ = writeln!(out, " {{");
        for m in 0..config.members_per_class {
            let _ = writeln!(out, "        f{i}_{m} = {};", rng.gen_range(0..100));
        }
        let _ = writeln!(out, "    }}");
        for mth in 0..config.methods_per_class {
            let virt = if rng.gen_bool(0.5) && base_of[i].is_none() {
                "virtual "
            } else {
                ""
            };
            let _ = writeln!(out, "    {virt}int m{mth}() {{");
            let _ = writeln!(out, "        int acc = {};", rng.gen_range(1..10));
            for _ in 0..config.stmts_per_method {
                let target = rng.gen_range(0..config.members_per_class);
                match rng.gen_range(0..5) {
                    // Read a member into the accumulator.
                    0 | 1 => {
                        let _ = writeln!(out, "        acc = acc + f{i}_{target};");
                    }
                    // Pure write from the accumulator (write-only unless
                    // some other statement reads the member).
                    2 => {
                        let _ = writeln!(out, "        f{i}_{target} = acc * 2;");
                    }
                    // Conditional update exercising control flow.
                    3 => {
                        let read = rng.gen_range(0..config.members_per_class);
                        let _ = writeln!(
                            out,
                            "        if (acc > {}) {{ acc = acc - f{i}_{read}; }}",
                            rng.gen_range(5..50)
                        );
                    }
                    // A switch with fallthrough, reading one member.
                    _ => {
                        let read = rng.gen_range(0..config.members_per_class);
                        let _ = writeln!(out, "        switch (acc % 4) {{");
                        let _ = writeln!(out, "        case 0: acc = acc + 1;");
                        let _ = writeln!(out, "        case 1: acc = acc + f{i}_{read}; break;");
                        let _ = writeln!(out, "        default: acc = acc + 2;");
                        let _ = writeln!(out, "        }}");
                    }
                }
            }
            let _ = writeln!(out, "        return acc;\n    }}");
        }
        let _ = writeln!(out, "}};\n");
    }

    // A never-called function that reads one member of every class: those
    // reads must NOT liven anything (unreachable code).
    let _ = writeln!(out, "int never_called() {{");
    let _ = writeln!(out, "    int ghost = 0;");
    for i in 0..nclasses {
        let _ = writeln!(out, "    K{i} g{i};");
        let _ = writeln!(out, "    ghost = ghost + g{i}.f{i}_0;");
    }
    let _ = writeln!(out, "    return ghost;\n}}\n");

    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "    int total = 0;");
    for obj in 0..config.objects_in_main {
        let class = rng.gen_range(0..nclasses);
        if rng.gen_bool(0.5) {
            let _ = writeln!(out, "    K{class} s{obj};");
            if config.methods_per_class > 0 {
                let mth = rng.gen_range(0..config.methods_per_class);
                let _ = writeln!(out, "    total = total + s{obj}.m{mth}();");
            }
            if rng.gen_bool(0.6) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    total = total + s{obj}.f{class}_{member};");
            }
            if rng.gen_bool(0.4) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    s{obj}.f{class}_{member} = total;");
            }
        } else {
            let _ = writeln!(out, "    K{class}* h{obj} = new K{class}();");
            if config.methods_per_class > 0 {
                let mth = rng.gen_range(0..config.methods_per_class);
                let _ = writeln!(out, "    total = total + h{obj}->m{mth}();");
            }
            if rng.gen_bool(0.6) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    total = total + h{obj}->f{class}_{member};");
            }
            if rng.gen_bool(0.7) {
                let _ = writeln!(out, "    delete h{obj};");
            }
        }
    }
    let _ = writeln!(out, "    print_int(total);");
    let _ = writeln!(out, "    return total & 127;\n}}");
    out
}

/// Shape parameters for the large-program scale mode
/// ([`generate_scale`]): a few independent deep virtual hierarchies plus
/// long call ladders that force the call-graph fixpoint through many
/// rounds — the workload the delta worklist engine exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Independent class hierarchies (each a linear chain).
    pub chains: usize,
    /// Classes per chain; every class overrides every virtual method of
    /// its base, so dispatch through the chain root has `depth`
    /// candidate targets.
    pub depth: usize,
    /// Virtual methods declared by each chain root (and overridden at
    /// every depth).
    pub methods_per_class: usize,
    /// Data members per class.
    pub members_per_class: usize,
    /// Call-ladder length per chain: `step{c}_{i}` calls
    /// `step{c}_{i+1}`, so reachability is discovered one rung per
    /// fixpoint round — the old full-sweep engines re-walked the entire
    /// reachable set each of those rounds (quadratic), the delta engine
    /// processes each rung once.
    pub rungs: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            chains: 4,
            depth: 25,
            methods_per_class: 4,
            members_per_class: 3,
            rungs: 250,
        }
    }
}

/// The number of functions [`generate_scale`] emits for `config`:
/// `chains × (depth × methods_per_class + rungs)` plus `main`.
pub fn scale_function_count(config: &ScaleConfig) -> usize {
    config.chains * (config.depth * config.methods_per_class + config.rungs) + 1
}

/// Generates a large program from `config` and `seed` (deterministic,
/// like [`generate`]). Targets the ~10k–50k function range the paper's
/// 31-function suite cannot exercise.
///
/// Each chain `c` is a linear hierarchy `S{c}_0 .. S{c}_{depth-1}` whose
/// every class overrides every virtual method, plus a call ladder
/// `step{c}_0 .. step{c}_{rungs-1}`. Rung `i` instantiates the class at
/// depth `i × (depth-1) / rungs`, dispatches a virtual method through a
/// chain-root pointer, and calls the next rung — so dispatch sites are
/// processed long before the deeper receiver classes exist, exercising
/// the pending-dispatch parking/release machinery at scale, while the
/// ladder stretches the fixpoint over ~`rungs` rounds. The ladder stops
/// short of the deepest class, so (for `depth > 1`) RTA must prune its
/// overrides.
pub fn generate_scale(config: &ScaleConfig, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let chains = config.chains.max(1);
    let depth = config.depth.max(1);
    let methods = config.methods_per_class.max(1);
    let members = config.members_per_class.max(1);
    let rungs = config.rungs.max(1);

    let mut out = String::with_capacity(scale_function_count(config) * 96);
    let _ = writeln!(out, "// generated (scale): seed={seed} config={config:?}");

    for c in 0..chains {
        for d in 0..depth {
            let head = if d == 0 {
                format!("class S{c}_0 {{")
            } else {
                format!("class S{c}_{d} : public S{c}_{} {{", d - 1)
            };
            let _ = writeln!(out, "{head}\npublic:");
            for j in 0..members {
                let _ = writeln!(out, "    int v{c}_{d}_{j};");
            }
            for m in 0..methods {
                // Each method reads a seed-chosen subset of the class's
                // members; members outside every subset stay dead.
                let r1 = rng.gen_range(0..members);
                let r2 = rng.gen_range(0..members);
                let _ = writeln!(
                    out,
                    "    virtual int get{m}() {{ return v{c}_{d}_{r1} + v{c}_{d}_{r2} + {d}; }}"
                );
            }
            let _ = writeln!(out, "}};");
        }
        let _ = writeln!(out);
    }

    for c in 0..chains {
        for i in 0..rungs {
            // Instantiate progressively deeper classes along the ladder,
            // so earlier rungs' dispatch sites park candidates that later
            // rungs' instantiations release.
            let d = i * (depth - 1) / rungs;
            let m = rng.gen_range(0..methods);
            let _ = writeln!(out, "int step{c}_{i}() {{");
            let _ = writeln!(out, "    S{c}_{d} x;");
            let _ = writeln!(out, "    S{c}_0* p = &x;");
            let _ = writeln!(out, "    int acc = p->get{m}();");
            let _ = writeln!(
                out,
                "    acc = acc + x.v{c}_{d}_{};",
                rng.gen_range(0..members)
            );
            if i + 1 < rungs {
                let _ = writeln!(out, "    return acc + step{c}_{}();", i + 1);
            } else {
                let _ = writeln!(out, "    return acc;");
            }
            let _ = writeln!(out, "}}");
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "    int total = 0;");
    for c in 0..chains {
        let _ = writeln!(out, "    total = total + step{c}_0();");
    }
    let _ = writeln!(out, "    return total & 127;\n}}");
    out
}

/// Which adversarial stressor a fuzz case layers on top of the base
/// program ([`generate_fuzz`]). The benign generator exercises the
/// paper's liveness mechanisms on friendly shapes; these shapes target
/// the schedule-sensitive paths the engine-equivalence proofs have so
/// far only seen on benign programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzShape {
    /// The benign base generator only.
    Benign,
    /// Chained nested unions, a union-typed class member, and a
    /// never-instantiated union — stressing the union-propagation
    /// fixpoint and its interaction with containment closures.
    DeepUnions,
    /// Bursts of `reinterpret_cast` / C-style / `static_cast` over the
    /// hierarchy, including pointer-to-integer smuggling — stressing
    /// the `MarkAllContainedMembers` closure and cast classification.
    CastStorm,
    /// Virtual and non-virtual diamond hierarchies with overrides on
    /// every edge and dispatch sites that appear textually before the
    /// joining class is ever instantiated — stressing subobject layout
    /// and the pending-dispatch parking/release schedule.
    Diamonds,
    /// Dead-code-heavy: most functions are unreachable chains that read
    /// members, plus reachable bodies with statically dead branches —
    /// stressing the reachability frontier of the liveness scan.
    DeadCodeHeavy,
    /// Multi-TU only: repeated header copies drift by comments and
    /// blank lines — textual near-misses that must still be
    /// ODR-identical and link cleanly.
    OdrBenignDrift,
    /// Multi-TU only: one header copy differs by a single constant in
    /// one method body — a genuine ODR violation whose diagnostic must
    /// be byte-identical across engines, worker counts, and cache
    /// states.
    OdrConflict,
    /// Deep linear inheritance ladders (chains × depth) with an
    /// override on every rung and dispatch sites that run before the
    /// deeper rungs are instantiated — a miniature of the scale
    /// generator's park/release schedule, with the deepest class never
    /// instantiated so RTA must prune its overrides.
    DeepLadder,
}

impl FuzzShape {
    /// Short stable name (CLI `--shapes` values, report keys).
    pub fn name(self) -> &'static str {
        match self {
            FuzzShape::Benign => "benign",
            FuzzShape::DeepUnions => "unions",
            FuzzShape::CastStorm => "casts",
            FuzzShape::Diamonds => "diamonds",
            FuzzShape::DeadCodeHeavy => "deadcode",
            FuzzShape::OdrBenignDrift => "odr",
            FuzzShape::OdrConflict => "odr-conflict",
            FuzzShape::DeepLadder => "ladder",
        }
    }
}

/// Every shape, in a fixed order (sweeps cycle through this).
pub const FUZZ_SHAPES: [FuzzShape; 8] = [
    FuzzShape::Benign,
    FuzzShape::DeepUnions,
    FuzzShape::CastStorm,
    FuzzShape::Diamonds,
    FuzzShape::DeadCodeHeavy,
    FuzzShape::OdrBenignDrift,
    FuzzShape::OdrConflict,
    FuzzShape::DeepLadder,
];

/// Shape parameters for one adversarial fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Size of the benign substrate (classes, members, methods, ...).
    pub base: GeneratorConfig,
    /// The adversarial stressor layered on top.
    pub shape: FuzzShape,
    /// Translation units; the ODR shapes force at least 2.
    pub tus: usize,
}

/// The placeholder [`generate_fuzz`] substitutes per header copy: the
/// canonical value in every TU, a different one in the conflicting TU
/// of [`FuzzShape::OdrConflict`] cases.
const ODR_HOLE: &str = "@ODR@";

/// Generates a multi-TU project from `config` and `seed` (deterministic:
/// equal inputs produce byte-identical files). Returns `(file, source)`
/// pairs; TU 0 holds `main` plus prototypes for every function defined
/// by the other TUs. With `tus == 1` the whole program lands in one
/// file, so single-TU and project pipelines see the same shapes.
///
/// Generated programs always parse; the `OdrConflict` shape (and
/// nothing else) links with a deliberate ODR violation, so the
/// differential oracle also covers diagnostic determinism.
pub fn generate_fuzz(config: &FuzzConfig, seed: u64) -> Vec<(String, String)> {
    let mut rng = Rng::seed_from_u64(seed);
    let base = &config.base;
    let nclasses = base.classes.max(1);
    let members = base.members_per_class.max(1);
    let tus = match config.shape {
        FuzzShape::OdrBenignDrift | FuzzShape::OdrConflict => config.tus.max(2),
        _ => config.tus.max(1),
    };

    // --- Shared header: the benign hierarchy, with the ODR hole in one
    // seed-chosen method body. ---
    let mut base_of: Vec<Option<usize>> = vec![None; nclasses];
    for (i, slot) in base_of.iter_mut().enumerate().skip(1) {
        if rng.gen_bool(0.4) {
            *slot = Some(rng.gen_range(0..i));
        }
    }
    let hole_class = rng.gen_range(0..nclasses);
    let mut header = String::new();
    #[allow(clippy::needless_range_loop)]
    for i in 0..nclasses {
        match base_of[i] {
            Some(b) => {
                let _ = writeln!(header, "class K{i} : public K{b} {{\npublic:");
            }
            None => {
                let _ = writeln!(header, "class K{i} {{\npublic:");
            }
        }
        for m in 0..members {
            let _ = writeln!(header, "    int f{i}_{m};");
        }
        let _ = write!(header, "    K{i}()");
        if let Some(b) = base_of[i] {
            let _ = write!(header, " : K{b}()");
        }
        let _ = writeln!(header, " {{");
        for m in 0..members {
            let _ = writeln!(header, "        f{i}_{m} = {};", rng.gen_range(0..100));
        }
        let _ = writeln!(header, "    }}");
        for mth in 0..base.methods_per_class {
            let virt = if rng.gen_bool(0.5) && base_of[i].is_none() {
                "virtual "
            } else {
                ""
            };
            let _ = writeln!(header, "    {virt}int m{mth}() {{");
            let _ = writeln!(header, "        int acc = {};", rng.gen_range(1..10));
            if i == hole_class && mth == 0 {
                let _ = writeln!(header, "        acc = acc + {ODR_HOLE};");
            }
            for _ in 0..base.stmts_per_method {
                let target = rng.gen_range(0..members);
                match rng.gen_range(0..5) {
                    0 | 1 => {
                        let _ = writeln!(header, "        acc = acc + f{i}_{target};");
                    }
                    2 => {
                        let _ = writeln!(header, "        f{i}_{target} = acc * 2;");
                    }
                    3 => {
                        let read = rng.gen_range(0..members);
                        let _ = writeln!(
                            header,
                            "        if (acc > {}) {{ acc = acc - f{i}_{read}; }}",
                            rng.gen_range(5..50)
                        );
                    }
                    _ => {
                        let read = rng.gen_range(0..members);
                        let _ = writeln!(header, "        switch (acc % 4) {{");
                        let _ = writeln!(header, "        case 0: acc = acc + 1;");
                        let _ =
                            writeln!(header, "        case 1: acc = acc + f{i}_{read}; break;");
                        let _ = writeln!(header, "        default: acc = acc + 2;");
                        let _ = writeln!(header, "        }}");
                    }
                }
            }
            let _ = writeln!(header, "        return acc;\n    }}");
        }
        let _ = writeln!(header, "}};\n");
    }
    header.push_str(&shape_types(config.shape, members, &mut rng));

    // --- Shape-specific free functions: (prototypes, definitions),
    // spread across TUs round-robin. Entry functions are collected so
    // `main` reaches every stressor. ---
    let mut sections: Vec<(String, String)> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    for t in 0..tus.max(1) {
        let workers = base.methods_per_class.max(1);
        let mut protos = String::new();
        let mut defs = String::new();
        for f in 0..workers {
            let class = rng.gen_range(0..nclasses);
            let _ = writeln!(protos, "int w{t}_{f}();");
            let _ = writeln!(defs, "int w{t}_{f}() {{");
            if rng.gen_bool(0.5) {
                let _ = writeln!(defs, "    K{class} s;");
                let _ = writeln!(defs, "    int acc = s.f{class}_{};", rng.gen_range(0..members));
                if base.methods_per_class > 0 {
                    let _ = writeln!(
                        defs,
                        "    acc = acc + s.m{}();",
                        rng.gen_range(0..base.methods_per_class)
                    );
                }
            } else {
                let _ = writeln!(defs, "    K{class}* h = new K{class}();");
                let _ = writeln!(
                    defs,
                    "    int acc = h->f{class}_{};",
                    rng.gen_range(0..members)
                );
                if rng.gen_bool(0.7) {
                    let _ = writeln!(defs, "    delete h;");
                }
            }
            let _ = writeln!(defs, "    return acc;\n}}");
            entries.push(format!("w{t}_{f}()"));
        }
        sections.push((protos, defs));
    }
    let shape_tu = rng.gen_range(0..tus.max(1));
    {
        let (protos, defs, calls) =
            shape_functions(config.shape, nclasses, members, &base_of, &mut rng);
        sections[shape_tu].0.push_str(&protos);
        sections[shape_tu].1.push_str(&defs);
        entries.extend(calls);
    }

    // --- Assemble the TUs. ---
    let canonical = |h: &str| h.replace(ODR_HOLE, "7");
    let conflicting = |h: &str| h.replace(ODR_HOLE, "8");
    let conflict_tu = if config.shape == FuzzShape::OdrConflict {
        1 + (rng.gen_range(0..tus.max(2) - 1))
    } else {
        usize::MAX
    };
    let mut files = Vec::with_capacity(tus);
    for t in 0..tus {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// generated (fuzz): seed={seed} shape={} tu={t}/{tus}",
            config.shape.name()
        );
        if config.shape == FuzzShape::OdrBenignDrift && t > 0 {
            // Textual near-miss: comments and blank lines shift every
            // declaration's location without changing its record.
            let _ = writeln!(out, "// odr drift: tu {t} marker {:x}\n", rng.next_u64());
        }
        if t == conflict_tu {
            out.push_str(&conflicting(&header));
        } else {
            out.push_str(&canonical(&header));
        }
        if t == 0 {
            for (p, _) in sections.iter().skip(1) {
                out.push_str(p);
            }
            out.push_str(&sections[0].1);
            let _ = writeln!(out, "int main() {{");
            let _ = writeln!(out, "    int total = 0;");
            for obj in 0..base.objects_in_main {
                let class = rng.gen_range(0..nclasses);
                if rng.gen_bool(0.5) {
                    let _ = writeln!(out, "    K{class} s{obj};");
                    if base.methods_per_class > 0 {
                        let mth = rng.gen_range(0..base.methods_per_class);
                        let _ = writeln!(out, "    total = total + s{obj}.m{mth}();");
                    }
                    if rng.gen_bool(0.6) {
                        let member = rng.gen_range(0..members);
                        let _ =
                            writeln!(out, "    total = total + s{obj}.f{class}_{member};");
                    }
                } else {
                    let _ = writeln!(out, "    K{class}* h{obj} = new K{class}();");
                    if base.methods_per_class > 0 {
                        let mth = rng.gen_range(0..base.methods_per_class);
                        let _ = writeln!(out, "    total = total + h{obj}->m{mth}();");
                    }
                    if rng.gen_bool(0.7) {
                        let _ = writeln!(out, "    delete h{obj};");
                    }
                }
            }
            for call in &entries {
                let _ = writeln!(out, "    total = total + {call};");
            }
            let _ = writeln!(out, "    return total & 127;\n}}");
        } else {
            out.push_str(&sections[t].1);
        }
        files.push((format!("fuzz_tu{t}.cpp"), out));
    }
    files
}

/// Ladder dimensions for [`FuzzShape::DeepLadder`], shared by
/// [`shape_types`] (class emission) and [`shape_functions`] (dispatch
/// helpers), which draw from the RNG at different points and so cannot
/// re-derive matching values from it.
const LADDER_CHAINS: usize = 3;
const LADDER_DEPTH: usize = 7;

/// Shape-specific type declarations appended to the shared header.
fn shape_types(shape: FuzzShape, members: usize, rng: &mut Rng) -> String {
    let mut out = String::new();
    match shape {
        FuzzShape::DeepUnions => {
            let depth = 2 + rng.gen_range(0..3);
            let _ = writeln!(out, "union W0 {{ int w0_a; int w0_b; }};");
            for d in 1..=depth {
                let _ = writeln!(
                    out,
                    "union W{d} {{ W{} inner; int w{d}_a; int w{d}_b; }};",
                    d - 1
                );
            }
            // A class holding the deepest union by value: union
            // propagation must flow through the containment closure.
            let _ = writeln!(out, "class UnionHolder {{\npublic:");
            let _ = writeln!(out, "    W{depth} packed;");
            for m in 0..members {
                let _ = writeln!(out, "    int plain{m};");
            }
            let _ = writeln!(out, "    int peek() {{ return packed.w{depth}_a + plain0; }}");
            let _ = writeln!(out, "}};");
            // Never instantiated: the union rule must not fire on it.
            let _ = writeln!(out, "union WGhost {{ int g_a; int g_b; }};\n");
        }
        FuzzShape::Diamonds => {
            let vm = 1 + rng.gen_range(0..members);
            let emit_class = |out: &mut String, name: &str, bases: &str, pfx: &str, n: usize, body: &str| {
                let _ = writeln!(out, "class {name}{bases} {{\npublic:");
                for m in 0..n {
                    let _ = writeln!(out, "    int {pfx}_m{m};");
                }
                let _ = writeln!(out, "    virtual int poke() {{ return {body}; }}");
                let _ = writeln!(out, "}};");
            };
            // Virtual diamond: one shared VTop subobject.
            emit_class(&mut out, "VTop", "", "vt", vm, "vt_m0");
            emit_class(&mut out, "VL", " : virtual public VTop", "vl", vm, "vl_m0 + vt_m0");
            emit_class(&mut out, "VR", " : virtual public VTop", "vr", vm, "vr_m0 + vt_m0");
            emit_class(
                &mut out,
                "VJ",
                " : public VL, public VR",
                "vj",
                vm,
                "vj_m0 + vl_m0 + vr_m0",
            );
            // Non-virtual diamond: NTop duplicated under NJ; NJ's own
            // override only touches unambiguous members.
            emit_class(&mut out, "NTop", "", "nt", vm, "nt_m0");
            emit_class(&mut out, "NL", " : public NTop", "nl", vm, "nl_m0 + nt_m0");
            emit_class(&mut out, "NR", " : public NTop", "nr", vm, "nr_m0 + nt_m0");
            emit_class(
                &mut out,
                "NJ",
                " : public NL, public NR",
                "nj",
                vm,
                "nj_m0 + nl_m0 + nr_m0",
            );
            out.push('\n');
        }
        FuzzShape::DeepLadder => {
            // Deep linear hierarchies with an override on every rung;
            // sized past the benign substrate so park/release schedules
            // stretch over many fixpoint rounds. The dimensions are
            // fixed (not seed-drawn) because `shape_functions` must
            // name the same classes after unrelated RNG draws.
            for c in 0..LADDER_CHAINS {
                for d in 0..LADDER_DEPTH {
                    if d == 0 {
                        let _ = writeln!(out, "class L{c}_0 {{\npublic:");
                    } else {
                        let _ = writeln!(out, "class L{c}_{d} : public L{c}_{} {{\npublic:", d - 1);
                    }
                    for m in 0..members {
                        let _ = writeln!(out, "    int l{c}_{d}_{m};");
                    }
                    let _ = writeln!(
                        out,
                        "    virtual int rung() {{ return l{c}_{d}_0 + {d}; }}"
                    );
                    let _ = writeln!(out, "}};");
                }
            }
            out.push('\n');
        }
        _ => {}
    }
    out
}

/// Shape-specific free functions: `(prototypes, definitions, entry
/// calls)`. Definitions land in one seed-chosen TU; prototypes let
/// `main` (TU 0) call the entries cross-TU.
fn shape_functions(
    shape: FuzzShape,
    nclasses: usize,
    members: usize,
    base_of: &[Option<usize>],
    rng: &mut Rng,
) -> (String, String, Vec<String>) {
    let mut protos = String::new();
    let mut defs = String::new();
    let mut calls = Vec::new();
    match shape {
        FuzzShape::DeepUnions => {
            let _ = writeln!(protos, "int union_entry();");
            let _ = writeln!(defs, "int union_entry() {{");
            let _ = writeln!(defs, "    UnionHolder uh;");
            let _ = writeln!(defs, "    int acc = uh.peek();");
            let _ = writeln!(defs, "    W0 w;");
            let _ = writeln!(defs, "    acc = acc + w.w0_{};", if rng.gen_bool(0.5) { "a" } else { "b" });
            let _ = writeln!(defs, "    return acc;\n}}");
            calls.push("union_entry()".to_string());
        }
        FuzzShape::CastStorm => {
            // Derived/base pairs for up- and down-casts; fall back to
            // same-class casts when the hierarchy is flat.
            let pairs: Vec<(usize, usize)> = base_of
                .iter()
                .enumerate()
                .filter_map(|(d, b)| b.map(|b| (d, b)))
                .collect();
            let bursts = 3 + rng.gen_range(0..2);
            let style_offset = rng.gen_range(0..3);
            let mut entry = String::new();
            for k in 0..bursts {
                let (d, b) = if pairs.is_empty() {
                    let c = rng.gen_range(0..nclasses);
                    (c, c)
                } else {
                    pairs[rng.gen_range(0..pairs.len())]
                };
                // Cycle the three cast styles (seed-rotated) so every
                // storm exercises reinterpret, C-style down, and
                // static up casts.
                match (k + style_offset) % 3 {
                    0 => {
                        // Pointer smuggled through an integer: unsafe,
                        // fires the contained-members closure.
                        let _ = writeln!(protos, "long cast{k}_addr(K{d}* p);");
                        let _ = writeln!(
                            defs,
                            "long cast{k}_addr(K{d}* p) {{ return reinterpret_cast<long>(p); }}"
                        );
                        let _ = writeln!(entry, "    K{d}* x{k} = new K{d}();");
                        let _ =
                            writeln!(entry, "    acc = acc + (int)cast{k}_addr(x{k});");
                        let _ = writeln!(entry, "    delete x{k};");
                    }
                    1 => {
                        // C-style down-cast, gated by the down-cast
                        // policy at replay time.
                        let _ = writeln!(protos, "K{d}* cast{k}_down(K{b}* p);");
                        let _ = writeln!(
                            defs,
                            "K{d}* cast{k}_down(K{b}* p) {{ return (K{d}*)p; }}"
                        );
                        let _ = writeln!(entry, "    K{d}* y{k} = new K{d}();");
                        let _ = writeln!(
                            entry,
                            "    acc = acc + cast{k}_down(y{k})->f{d}_{};",
                            rng.gen_range(0..members)
                        );
                        let _ = writeln!(entry, "    delete y{k};");
                    }
                    _ => {
                        // Up-cast: always safe, must not widen anything.
                        let _ = writeln!(protos, "K{b}* cast{k}_up(K{d}* p);");
                        let _ = writeln!(
                            defs,
                            "K{b}* cast{k}_up(K{d}* p) {{ return static_cast<K{b}*>(p); }}"
                        );
                        let _ = writeln!(entry, "    K{d}* z{k} = new K{d}();");
                        let _ = writeln!(
                            entry,
                            "    acc = acc + cast{k}_up(z{k})->f{b}_{};",
                            rng.gen_range(0..members)
                        );
                        let _ = writeln!(entry, "    delete z{k};");
                    }
                }
            }
            let _ = writeln!(protos, "int cast_entry();");
            let _ = writeln!(defs, "int cast_entry() {{\n    int acc = 0;");
            defs.push_str(&entry);
            let _ = writeln!(defs, "    return acc;\n}}");
            calls.push("cast_entry()".to_string());
        }
        FuzzShape::Diamonds => {
            // The dispatch helper appears before any VJ/NJ exists, so
            // its candidates are parked and only released when the
            // entry instantiates the joins.
            let _ = writeln!(protos, "int dia_disp(VTop* p);");
            let _ = writeln!(defs, "int dia_disp(VTop* p) {{ return p->poke(); }}");
            let _ = writeln!(protos, "int dia_disp_n(NL* p);");
            let _ = writeln!(defs, "int dia_disp_n(NL* p) {{ return p->poke(); }}");
            let _ = writeln!(protos, "int dia_entry();");
            let _ = writeln!(defs, "int dia_entry() {{");
            let _ = writeln!(defs, "    VJ vj;");
            let _ = writeln!(defs, "    VTop* vt = &vj;");
            let _ = writeln!(defs, "    int acc = dia_disp(vt);");
            let _ = writeln!(defs, "    VL* vl = &vj;");
            let _ = writeln!(defs, "    acc = acc + vl->poke();");
            let _ = writeln!(defs, "    NJ* nj = new NJ();");
            let _ = writeln!(defs, "    NL* nl = nj;");
            let _ = writeln!(defs, "    acc = acc + dia_disp_n(nl);");
            let _ = writeln!(defs, "    delete nj;");
            let _ = writeln!(defs, "    return acc;\n}}");
            calls.push("dia_entry()".to_string());
        }
        FuzzShape::DeadCodeHeavy => {
            // A long never-called chain reading members of every class,
            // plus a reachable body whose branch is statically dead —
            // the flow-insensitive scan must still agree across engines.
            let chain = 2 * nclasses + rng.gen_range(0..5);
            for k in 0..chain {
                let class = rng.gen_range(0..nclasses);
                let _ = writeln!(defs, "int dead{k}() {{");
                let _ = writeln!(defs, "    K{class} g;");
                if k + 1 < chain {
                    let _ = writeln!(
                        defs,
                        "    return g.f{class}_{} + dead{}();",
                        rng.gen_range(0..members),
                        k + 1
                    );
                } else {
                    let _ = writeln!(defs, "    return g.f{class}_{};", rng.gen_range(0..members));
                }
                let _ = writeln!(defs, "}}");
            }
            let class = rng.gen_range(0..nclasses);
            let _ = writeln!(protos, "int deadcode_entry();");
            let _ = writeln!(defs, "int deadcode_entry() {{");
            let _ = writeln!(defs, "    int acc = 1;");
            let _ = writeln!(defs, "    if (0) {{");
            let _ = writeln!(defs, "        K{class} t;");
            let _ = writeln!(
                defs,
                "        acc = acc + t.f{class}_{};",
                rng.gen_range(0..members)
            );
            let _ = writeln!(defs, "    }}");
            let _ = writeln!(defs, "    return acc;\n}}");
            calls.push("deadcode_entry()".to_string());
        }
        FuzzShape::DeepLadder => {
            // One dispatch helper per chain, called with progressively
            // deeper receivers: the helper's candidate set is parked at
            // every depth the entry has not reached yet, and the
            // deepest rung is never instantiated at all.
            for c in 0..LADDER_CHAINS {
                let _ = writeln!(protos, "int ladder_disp{c}(L{c}_0* p);");
                let _ = writeln!(
                    defs,
                    "int ladder_disp{c}(L{c}_0* p) {{ return p->rung(); }}"
                );
            }
            let _ = writeln!(protos, "int ladder_entry();");
            let _ = writeln!(defs, "int ladder_entry() {{\n    int acc = 0;");
            for c in 0..LADDER_CHAINS {
                // Stop one rung short of the deepest class so its
                // override stays unreachable under RTA.
                let stop = LADDER_DEPTH - 1 - rng.gen_range(0..2).min(LADDER_DEPTH - 2);
                let mut d = 0;
                while d < stop {
                    let _ = writeln!(defs, "    L{c}_{d} x{c}_{d};");
                    let _ = writeln!(
                        defs,
                        "    acc = acc + ladder_disp{c}(&x{c}_{d});"
                    );
                    let _ = writeln!(
                        defs,
                        "    acc = acc + x{c}_{d}.l{c}_{d}_{};",
                        rng.gen_range(0..members)
                    );
                    d += 1 + rng.gen_range(0..2);
                }
            }
            let _ = writeln!(defs, "    return acc;\n}}");
            calls.push("ladder_entry()".to_string());
        }
        FuzzShape::Benign | FuzzShape::OdrBenignDrift | FuzzShape::OdrConflict => {}
    }
    (protos, defs, calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_core::AnalysisPipeline;
    use ddm_dynamic::{Interpreter, RunConfig};

    #[test]
    fn generation_is_deterministic() {
        let c = GeneratorConfig::default();
        assert_eq!(generate(&c, 7), generate(&c, 7));
        assert_ne!(generate(&c, 7), generate(&c, 8));
    }

    #[test]
    fn generated_programs_parse_analyze_and_run() {
        for seed in 0..20 {
            let src = generate(&GeneratorConfig::default(), seed);
            let run = AnalysisPipeline::from_source(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let exec = Interpreter::new(run.program())
                .run(&RunConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(exec.steps > 0);
        }
    }

    #[test]
    fn soundness_oracle_on_generated_programs() {
        // Every member observed read (or address-taken) at run time must
        // be classified live by the static analysis.
        for seed in 0..30 {
            let src = generate(&GeneratorConfig::default(), seed);
            let run = AnalysisPipeline::from_source(&src).expect("pipeline");
            let exec = Interpreter::new(run.program())
                .run(&RunConfig::default())
                .expect("run");
            for m in &exec.members_observed {
                assert!(
                    run.liveness().is_live(*m),
                    "seed {seed}: member {m} read at run time but statically dead\n{src}"
                );
            }
        }
    }

    #[test]
    fn scaling_configs_produce_larger_programs() {
        let small = generate(
            &GeneratorConfig {
                classes: 2,
                ..Default::default()
            },
            1,
        );
        let large = generate(
            &GeneratorConfig {
                classes: 30,
                ..Default::default()
            },
            1,
        );
        assert!(large.len() > small.len() * 5);
    }

    #[test]
    fn scale_generation_is_deterministic() {
        let c = ScaleConfig {
            chains: 2,
            depth: 6,
            methods_per_class: 2,
            members_per_class: 2,
            rungs: 12,
        };
        assert_eq!(generate_scale(&c, 3), generate_scale(&c, 3));
        assert_ne!(generate_scale(&c, 3), generate_scale(&c, 4));
    }

    #[test]
    fn scale_programs_analyze_with_predicted_function_count() {
        let c = ScaleConfig {
            chains: 2,
            depth: 8,
            methods_per_class: 3,
            members_per_class: 2,
            rungs: 20,
        };
        let src = generate_scale(&c, 11);
        let run = AnalysisPipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("scale program rejected: {e}"));
        assert_eq!(
            run.program().function_count(),
            scale_function_count(&c),
            "scale_function_count must predict the emitted program"
        );
        // The ladder never instantiates past depth (rungs-1)*depth/rungs,
        // so under RTA the deepest overrides must be pruned while the
        // ladder itself is fully reachable.
        let reachable = run.callgraph().reachable().count();
        assert!(reachable < scale_function_count(&c));
        assert!(reachable > c.chains * c.rungs);
    }

    #[test]
    fn scale_programs_agree_across_engines() {
        use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
        use ddm_hierarchy::{MemberLookup, Program, ProgramSummary};

        let c = ScaleConfig {
            chains: 2,
            depth: 10,
            methods_per_class: 2,
            members_per_class: 2,
            rungs: 30,
        };
        let src = generate_scale(&c, 5);
        let program =
            Program::build(&ddm_cppfront::parse(&src).expect("parse")).expect("program");
        let lookup = MemberLookup::new(&program);
        for algorithm in [
            Algorithm::Everything,
            Algorithm::Cha,
            Algorithm::Rta,
            Algorithm::Pta,
        ] {
            let options = CallGraphOptions {
                algorithm,
                ..Default::default()
            };
            let summary = ProgramSummary::build(&program, algorithm == Algorithm::Pta, 1);
            let walked = CallGraph::build(&program, &lookup, &options).expect("walk");
            let replayed =
                CallGraph::build_from_summary(&program, &summary, &options).expect("replay");
            assert_eq!(walked, replayed, "{algorithm:?}");
        }
    }

    #[test]
    fn fuzz_generation_is_deterministic_per_shape() {
        for shape in FUZZ_SHAPES {
            let c = FuzzConfig {
                base: GeneratorConfig::default(),
                shape,
                tus: 3,
            };
            assert_eq!(generate_fuzz(&c, 9), generate_fuzz(&c, 9), "{shape:?}");
            assert_ne!(generate_fuzz(&c, 9), generate_fuzz(&c, 10), "{shape:?}");
        }
    }

    #[test]
    fn fuzz_shapes_emit_their_adversarial_constructs() {
        let c = |shape| FuzzConfig {
            base: GeneratorConfig::default(),
            shape,
            tus: 2,
        };
        let text = |shape| -> String {
            generate_fuzz(&c(shape), 17)
                .into_iter()
                .map(|(_, s)| s)
                .collect()
        };
        let unions = text(FuzzShape::DeepUnions);
        assert!(unions.contains("union W") && unions.contains("UnionHolder"));
        let casts = text(FuzzShape::CastStorm);
        assert!(casts.contains("reinterpret_cast<long>"));
        assert!(casts.contains("static_cast<"));
        let diamonds = text(FuzzShape::Diamonds);
        assert!(diamonds.contains(": virtual public VTop"));
        assert!(diamonds.contains("class NJ : public NL, public NR"));
        let dead = text(FuzzShape::DeadCodeHeavy);
        assert!(dead.contains("if (0) {"));
        let ladder = text(FuzzShape::DeepLadder);
        assert!(ladder.contains(&format!(
            "class L0_{} : public L0_{}",
            LADDER_DEPTH - 1,
            LADDER_DEPTH - 2
        )));
        assert!(ladder.contains("ladder_disp0(&x0_0)"));
        assert!(
            !ladder.contains(&format!("L0_{} x", LADDER_DEPTH - 1)),
            "the deepest rung must never be instantiated"
        );
    }

    #[test]
    fn fuzz_odr_shapes_drift_headers_without_or_with_conflict() {
        use ddm_core::{ProjectError, ProjectPipeline};
        use ddm_telemetry::Telemetry;
        let run = |shape| {
            let c = FuzzConfig {
                base: GeneratorConfig::default(),
                shape,
                tus: 1, // forced to 2 by the ODR shapes
            };
            let inputs = generate_fuzz(&c, 23);
            assert!(inputs.len() >= 2, "{shape:?} must emit a multi-TU project");
            // The repeated header must differ textually across TUs —
            // that's the near-miss being tested.
            assert_ne!(inputs[0].1, inputs[1].1);
            ProjectPipeline::run(
                &inputs,
                ddm_core::AnalysisConfig::default(),
                ddm_callgraph::Algorithm::Rta,
                1,
                ddm_core::Engine::Summary,
                None,
                &Telemetry::disabled(),
            )
        };
        assert!(run(FuzzShape::OdrBenignDrift).is_ok());
        match run(FuzzShape::OdrConflict) {
            Err(ProjectError::Link(e)) => {
                assert!(e.to_string().contains("defined differently"), "{e}")
            }
            other => panic!("OdrConflict must fail linking, got {other:?}"),
        }
    }

    #[test]
    fn fuzz_programs_parse_and_analyze_for_every_shape() {
        use ddm_core::ProjectPipeline;
        use ddm_telemetry::Telemetry;
        for shape in FUZZ_SHAPES {
            if shape == FuzzShape::OdrConflict {
                continue;
            }
            for seed in 0..6 {
                let c = FuzzConfig {
                    base: GeneratorConfig {
                        classes: 3 + seed as usize % 3,
                        ..Default::default()
                    },
                    shape,
                    tus: 1 + seed as usize % 3,
                };
                let inputs = generate_fuzz(&c, seed);
                ProjectPipeline::run(
                    &inputs,
                    ddm_core::AnalysisConfig::default(),
                    ddm_callgraph::Algorithm::Rta,
                    1,
                    ddm_core::Engine::Summary,
                    None,
                    &Telemetry::disabled(),
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "{shape:?} seed {seed}: {e}\n{}",
                        inputs
                            .iter()
                            .map(|(f, s)| format!("--- {f}\n{s}"))
                            .collect::<String>()
                    )
                });
            }
        }
    }
}
