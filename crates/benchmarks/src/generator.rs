//! Seeded random program generator.
//!
//! Produces valid, terminating programs in the analysed C++ subset, used
//! for two purposes:
//!
//! 1. **Property tests** — the generated programs execute deterministically
//!    in the interpreter, so the dynamic member-observation oracle can be
//!    checked against the static analysis for soundness;
//! 2. **Scaling benchmarks** — the paper claims the analysis runs in
//!    `O(N + C×M)` (§3.4); the generator sweeps the number of expressions
//!    `N` and the class/member product `C×M` independently.
//!
//! Generated programs deliberately mix the paper's liveness mechanisms:
//! read fields, write-only fields, fields read only from never-called
//! methods, inheritance chains with virtual dispatch, heap and stack
//! allocation, and `delete`.

use crate::rng::Rng;
use std::fmt::Write as _;

/// Size and shape parameters for one generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of classes.
    pub classes: usize,
    /// Data members per class.
    pub members_per_class: usize,
    /// Methods per class.
    pub methods_per_class: usize,
    /// Statements per method body.
    pub stmts_per_method: usize,
    /// Objects created (and exercised) in `main`.
    pub objects_in_main: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            classes: 6,
            members_per_class: 4,
            methods_per_class: 3,
            stmts_per_method: 4,
            objects_in_main: 6,
        }
    }
}

/// Generates a program from `config` and `seed`. Equal inputs produce
/// byte-identical output.
///
/// # Examples
///
/// ```
/// use ddm_benchmarks::generator::{generate, GeneratorConfig};
/// let src = generate(&GeneratorConfig::default(), 42);
/// let program = ddm_hierarchy::Program::build(&ddm_cppfront::parse(&src).unwrap()).unwrap();
/// assert!(program.class_count() >= 6);
/// ```
pub fn generate(config: &GeneratorConfig, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = String::new();
    let _ = writeln!(out, "// generated: seed={seed} config={config:?}");

    let nclasses = config.classes.max(1);
    // Decide the inheritance shape up front: class i may derive from a
    // class with a smaller index (guaranteeing acyclicity).
    let mut base_of: Vec<Option<usize>> = vec![None; nclasses];
    for (i, slot) in base_of.iter_mut().enumerate().skip(1) {
        if rng.gen_bool(0.4) {
            *slot = Some(rng.gen_range(0..i));
        }
    }

    #[allow(clippy::needless_range_loop)]
    for i in 0..nclasses {
        let head = match base_of[i] {
            Some(b) => format!("class K{i} : public K{b} {{"),
            None => format!("class K{i} {{"),
        };
        let _ = writeln!(out, "{head}\npublic:");
        for m in 0..config.members_per_class {
            let _ = writeln!(out, "    int f{i}_{m};");
        }
        // Constructor zero-fills every member (writes never liven).
        let _ = write!(out, "    K{i}()");
        if let Some(b) = base_of[i] {
            let _ = write!(out, " : K{b}()");
        }
        let _ = writeln!(out, " {{");
        for m in 0..config.members_per_class {
            let _ = writeln!(out, "        f{i}_{m} = {};", rng.gen_range(0..100));
        }
        let _ = writeln!(out, "    }}");
        for mth in 0..config.methods_per_class {
            let virt = if rng.gen_bool(0.5) && base_of[i].is_none() {
                "virtual "
            } else {
                ""
            };
            let _ = writeln!(out, "    {virt}int m{mth}() {{");
            let _ = writeln!(out, "        int acc = {};", rng.gen_range(1..10));
            for _ in 0..config.stmts_per_method {
                let target = rng.gen_range(0..config.members_per_class);
                match rng.gen_range(0..5) {
                    // Read a member into the accumulator.
                    0 | 1 => {
                        let _ = writeln!(out, "        acc = acc + f{i}_{target};");
                    }
                    // Pure write from the accumulator (write-only unless
                    // some other statement reads the member).
                    2 => {
                        let _ = writeln!(out, "        f{i}_{target} = acc * 2;");
                    }
                    // Conditional update exercising control flow.
                    3 => {
                        let read = rng.gen_range(0..config.members_per_class);
                        let _ = writeln!(
                            out,
                            "        if (acc > {}) {{ acc = acc - f{i}_{read}; }}",
                            rng.gen_range(5..50)
                        );
                    }
                    // A switch with fallthrough, reading one member.
                    _ => {
                        let read = rng.gen_range(0..config.members_per_class);
                        let _ = writeln!(out, "        switch (acc % 4) {{");
                        let _ = writeln!(out, "        case 0: acc = acc + 1;");
                        let _ = writeln!(out, "        case 1: acc = acc + f{i}_{read}; break;");
                        let _ = writeln!(out, "        default: acc = acc + 2;");
                        let _ = writeln!(out, "        }}");
                    }
                }
            }
            let _ = writeln!(out, "        return acc;\n    }}");
        }
        let _ = writeln!(out, "}};\n");
    }

    // A never-called function that reads one member of every class: those
    // reads must NOT liven anything (unreachable code).
    let _ = writeln!(out, "int never_called() {{");
    let _ = writeln!(out, "    int ghost = 0;");
    for i in 0..nclasses {
        let _ = writeln!(out, "    K{i} g{i};");
        let _ = writeln!(out, "    ghost = ghost + g{i}.f{i}_0;");
    }
    let _ = writeln!(out, "    return ghost;\n}}\n");

    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "    int total = 0;");
    for obj in 0..config.objects_in_main {
        let class = rng.gen_range(0..nclasses);
        if rng.gen_bool(0.5) {
            let _ = writeln!(out, "    K{class} s{obj};");
            if config.methods_per_class > 0 {
                let mth = rng.gen_range(0..config.methods_per_class);
                let _ = writeln!(out, "    total = total + s{obj}.m{mth}();");
            }
            if rng.gen_bool(0.6) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    total = total + s{obj}.f{class}_{member};");
            }
            if rng.gen_bool(0.4) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    s{obj}.f{class}_{member} = total;");
            }
        } else {
            let _ = writeln!(out, "    K{class}* h{obj} = new K{class}();");
            if config.methods_per_class > 0 {
                let mth = rng.gen_range(0..config.methods_per_class);
                let _ = writeln!(out, "    total = total + h{obj}->m{mth}();");
            }
            if rng.gen_bool(0.6) {
                let member = rng.gen_range(0..config.members_per_class);
                let _ = writeln!(out, "    total = total + h{obj}->f{class}_{member};");
            }
            if rng.gen_bool(0.7) {
                let _ = writeln!(out, "    delete h{obj};");
            }
        }
    }
    let _ = writeln!(out, "    print_int(total);");
    let _ = writeln!(out, "    return total & 127;\n}}");
    out
}

/// Shape parameters for the large-program scale mode
/// ([`generate_scale`]): a few independent deep virtual hierarchies plus
/// long call ladders that force the call-graph fixpoint through many
/// rounds — the workload the delta worklist engine exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Independent class hierarchies (each a linear chain).
    pub chains: usize,
    /// Classes per chain; every class overrides every virtual method of
    /// its base, so dispatch through the chain root has `depth`
    /// candidate targets.
    pub depth: usize,
    /// Virtual methods declared by each chain root (and overridden at
    /// every depth).
    pub methods_per_class: usize,
    /// Data members per class.
    pub members_per_class: usize,
    /// Call-ladder length per chain: `step{c}_{i}` calls
    /// `step{c}_{i+1}`, so reachability is discovered one rung per
    /// fixpoint round — the old full-sweep engines re-walked the entire
    /// reachable set each of those rounds (quadratic), the delta engine
    /// processes each rung once.
    pub rungs: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            chains: 4,
            depth: 25,
            methods_per_class: 4,
            members_per_class: 3,
            rungs: 250,
        }
    }
}

/// The number of functions [`generate_scale`] emits for `config`:
/// `chains × (depth × methods_per_class + rungs)` plus `main`.
pub fn scale_function_count(config: &ScaleConfig) -> usize {
    config.chains * (config.depth * config.methods_per_class + config.rungs) + 1
}

/// Generates a large program from `config` and `seed` (deterministic,
/// like [`generate`]). Targets the ~10k–50k function range the paper's
/// 31-function suite cannot exercise.
///
/// Each chain `c` is a linear hierarchy `S{c}_0 .. S{c}_{depth-1}` whose
/// every class overrides every virtual method, plus a call ladder
/// `step{c}_0 .. step{c}_{rungs-1}`. Rung `i` instantiates the class at
/// depth `i × (depth-1) / rungs`, dispatches a virtual method through a
/// chain-root pointer, and calls the next rung — so dispatch sites are
/// processed long before the deeper receiver classes exist, exercising
/// the pending-dispatch parking/release machinery at scale, while the
/// ladder stretches the fixpoint over ~`rungs` rounds. The ladder stops
/// short of the deepest class, so (for `depth > 1`) RTA must prune its
/// overrides.
pub fn generate_scale(config: &ScaleConfig, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let chains = config.chains.max(1);
    let depth = config.depth.max(1);
    let methods = config.methods_per_class.max(1);
    let members = config.members_per_class.max(1);
    let rungs = config.rungs.max(1);

    let mut out = String::with_capacity(scale_function_count(config) * 96);
    let _ = writeln!(out, "// generated (scale): seed={seed} config={config:?}");

    for c in 0..chains {
        for d in 0..depth {
            let head = if d == 0 {
                format!("class S{c}_0 {{")
            } else {
                format!("class S{c}_{d} : public S{c}_{} {{", d - 1)
            };
            let _ = writeln!(out, "{head}\npublic:");
            for j in 0..members {
                let _ = writeln!(out, "    int v{c}_{d}_{j};");
            }
            for m in 0..methods {
                // Each method reads a seed-chosen subset of the class's
                // members; members outside every subset stay dead.
                let r1 = rng.gen_range(0..members);
                let r2 = rng.gen_range(0..members);
                let _ = writeln!(
                    out,
                    "    virtual int get{m}() {{ return v{c}_{d}_{r1} + v{c}_{d}_{r2} + {d}; }}"
                );
            }
            let _ = writeln!(out, "}};");
        }
        let _ = writeln!(out);
    }

    for c in 0..chains {
        for i in 0..rungs {
            // Instantiate progressively deeper classes along the ladder,
            // so earlier rungs' dispatch sites park candidates that later
            // rungs' instantiations release.
            let d = i * (depth - 1) / rungs;
            let m = rng.gen_range(0..methods);
            let _ = writeln!(out, "int step{c}_{i}() {{");
            let _ = writeln!(out, "    S{c}_{d} x;");
            let _ = writeln!(out, "    S{c}_0* p = &x;");
            let _ = writeln!(out, "    int acc = p->get{m}();");
            let _ = writeln!(
                out,
                "    acc = acc + x.v{c}_{d}_{};",
                rng.gen_range(0..members)
            );
            if i + 1 < rungs {
                let _ = writeln!(out, "    return acc + step{c}_{}();", i + 1);
            } else {
                let _ = writeln!(out, "    return acc;");
            }
            let _ = writeln!(out, "}}");
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "    int total = 0;");
    for c in 0..chains {
        let _ = writeln!(out, "    total = total + step{c}_0();");
    }
    let _ = writeln!(out, "    return total & 127;\n}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_core::AnalysisPipeline;
    use ddm_dynamic::{Interpreter, RunConfig};

    #[test]
    fn generation_is_deterministic() {
        let c = GeneratorConfig::default();
        assert_eq!(generate(&c, 7), generate(&c, 7));
        assert_ne!(generate(&c, 7), generate(&c, 8));
    }

    #[test]
    fn generated_programs_parse_analyze_and_run() {
        for seed in 0..20 {
            let src = generate(&GeneratorConfig::default(), seed);
            let run = AnalysisPipeline::from_source(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let exec = Interpreter::new(run.program())
                .run(&RunConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(exec.steps > 0);
        }
    }

    #[test]
    fn soundness_oracle_on_generated_programs() {
        // Every member observed read (or address-taken) at run time must
        // be classified live by the static analysis.
        for seed in 0..30 {
            let src = generate(&GeneratorConfig::default(), seed);
            let run = AnalysisPipeline::from_source(&src).expect("pipeline");
            let exec = Interpreter::new(run.program())
                .run(&RunConfig::default())
                .expect("run");
            for m in &exec.members_observed {
                assert!(
                    run.liveness().is_live(*m),
                    "seed {seed}: member {m} read at run time but statically dead\n{src}"
                );
            }
        }
    }

    #[test]
    fn scaling_configs_produce_larger_programs() {
        let small = generate(
            &GeneratorConfig {
                classes: 2,
                ..Default::default()
            },
            1,
        );
        let large = generate(
            &GeneratorConfig {
                classes: 30,
                ..Default::default()
            },
            1,
        );
        assert!(large.len() > small.len() * 5);
    }

    #[test]
    fn scale_generation_is_deterministic() {
        let c = ScaleConfig {
            chains: 2,
            depth: 6,
            methods_per_class: 2,
            members_per_class: 2,
            rungs: 12,
        };
        assert_eq!(generate_scale(&c, 3), generate_scale(&c, 3));
        assert_ne!(generate_scale(&c, 3), generate_scale(&c, 4));
    }

    #[test]
    fn scale_programs_analyze_with_predicted_function_count() {
        let c = ScaleConfig {
            chains: 2,
            depth: 8,
            methods_per_class: 3,
            members_per_class: 2,
            rungs: 20,
        };
        let src = generate_scale(&c, 11);
        let run = AnalysisPipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("scale program rejected: {e}"));
        assert_eq!(
            run.program().function_count(),
            scale_function_count(&c),
            "scale_function_count must predict the emitted program"
        );
        // The ladder never instantiates past depth (rungs-1)*depth/rungs,
        // so under RTA the deepest overrides must be pruned while the
        // ladder itself is fully reachable.
        let reachable = run.callgraph().reachable().count();
        assert!(reachable < scale_function_count(&c));
        assert!(reachable > c.chains * c.rungs);
    }

    #[test]
    fn scale_programs_agree_across_engines() {
        use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
        use ddm_hierarchy::{MemberLookup, Program, ProgramSummary};

        let c = ScaleConfig {
            chains: 2,
            depth: 10,
            methods_per_class: 2,
            members_per_class: 2,
            rungs: 30,
        };
        let src = generate_scale(&c, 5);
        let program =
            Program::build(&ddm_cppfront::parse(&src).expect("parse")).expect("program");
        let lookup = MemberLookup::new(&program);
        for algorithm in [
            Algorithm::Everything,
            Algorithm::Cha,
            Algorithm::Rta,
            Algorithm::Pta,
        ] {
            let options = CallGraphOptions {
                algorithm,
                ..Default::default()
            };
            let summary = ProgramSummary::build(&program, algorithm == Algorithm::Pta, 1);
            let walked = CallGraph::build(&program, &lookup, &options).expect("walk");
            let replayed =
                CallGraph::build_from_summary(&program, &summary, &options).expect("replay");
            assert_eq!(walked, replayed, "{algorithm:?}");
        }
    }
}
