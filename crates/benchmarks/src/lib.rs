//! # ddm-benchmarks
//!
//! The benchmark suite of the dead-data-member study.
//!
//! The paper evaluates on eleven C++ programs (Table 1): `jikes`, `idl`,
//! `npic`, `lcom`, `taldict`, `ixx`, `simulate`, `sched`, `hotwire`,
//! `deltablue`, and `richards`. The original 1990s sources are
//! unobtainable, so this crate ships subset re-implementations:
//! `richards` and `deltablue` are faithful ports of the published
//! benchmark kernels, and the other nine are synthetic programs that
//! reproduce each original's *structural* properties — class counts,
//! library-usage style, allocation profile, and the mechanisms that
//! create dead members (unused library functionality, write-only
//! bookkeeping fields, abandoned features).
//!
//! [`suite`] returns all eleven with the paper's published numbers
//! attached for side-by-side comparison, and [`generator`] provides a
//! seeded random-program generator used by the property tests and the
//! scaling benchmarks.

pub mod generator;
pub mod rng;

use ddm_core::{AnalysisConfig, AnalysisPipeline, PipelineError};
use ddm_cppfront::SourceMap;

/// The paper's published numbers for one benchmark (Table 1, Figure 3,
/// Table 2). `None` marks values the paper reports only graphically or
/// that are illegible in the surviving scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Lines of source code (Table 1).
    pub loc: Option<usize>,
    /// Number of classes (Table 1).
    pub classes: Option<usize>,
    /// Number of used classes (Table 1, bracketed).
    pub used_classes: Option<usize>,
    /// Data members in used classes (Table 1).
    pub members: Option<usize>,
    /// Percentage of dead data members (Figure 3; approximate, read from
    /// the bar chart where the text gives no number).
    pub dead_pct: Option<f64>,
    /// Object space in bytes (Table 2).
    pub object_space: Option<u64>,
    /// Dead-data-member space in bytes (Table 2).
    pub dead_space: Option<u64>,
    /// High-water mark in bytes (Table 2).
    pub high_water_mark: Option<u64>,
    /// High-water mark without dead members (Table 2).
    pub high_water_mark_without_dead: Option<u64>,
}

/// One benchmark program with its metadata.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's benchmark name.
    pub name: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// Full source in the analysed C++ subset.
    pub source: &'static str,
    /// The paper's published measurements.
    pub paper: PaperRow,
}

impl Benchmark {
    /// Non-blank source lines (the paper's LOC metric).
    pub fn loc(&self) -> usize {
        SourceMap::new(self.name, self.source).loc()
    }

    /// Runs the full static analysis with the paper's configuration
    /// (down-casts verified safe, `sizeof` ignorable — neither construct
    /// occurs in the suite, so the setting is for parity only).
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`]s; the shipped suite always succeeds.
    pub fn analyze(&self) -> Result<AnalysisPipeline, PipelineError> {
        AnalysisPipeline::with_config(
            self.source,
            AnalysisConfig {
                assume_safe_downcasts: true,
                sizeof_policy: ddm_core::SizeofPolicy::Ignore,
                ..Default::default()
            },
            ddm_callgraph::Algorithm::Rta,
        )
    }
}

const NONE_ROW: PaperRow = PaperRow {
    loc: None,
    classes: None,
    used_classes: None,
    members: None,
    dead_pct: None,
    object_space: None,
    dead_space: None,
    high_water_mark: None,
    high_water_mark_without_dead: None,
};

/// The eleven benchmarks, in the paper's Table 1/2 row order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "jikes",
            description: "Java source-to-bytecode compiler",
            source: include_str!("../programs/jikes.cpp"),
            paper: PaperRow {
                loc: Some(58_296),
                classes: Some(268),
                used_classes: None,
                members: Some(1052),
                dead_pct: None,
                object_space: Some(2_921_490),
                dead_space: None,
                high_water_mark: Some(2_179_730),
                high_water_mark_without_dead: None,
            },
        },
        Benchmark {
            name: "idl",
            description: "SOM IDL compiler (virtual inheritance heavy)",
            source: include_str!("../programs/idl.cpp"),
            paper: PaperRow {
                dead_pct: Some(8.0),
                object_space: Some(708_249),
                dead_space: Some(15_388),
                high_water_mark: Some(701_273),
                high_water_mark_without_dead: Some(686_886),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "npic",
            description: "particle-in-cell plasma simulation",
            source: include_str!("../programs/npic.cpp"),
            paper: PaperRow {
                dead_pct: Some(12.0),
                object_space: Some(115_248),
                dead_space: Some(5_616),
                high_water_mark: Some(24_972),
                high_water_mark_without_dead: Some(23_840),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "lcom",
            description: "compiler for the hardware description language L",
            source: include_str!("../programs/lcom.cpp"),
            paper: PaperRow {
                dead_pct: Some(10.0),
                object_space: Some(2_274_956),
                dead_space: Some(241_435),
                high_water_mark: Some(1_652_828),
                high_water_mark_without_dead: Some(1_491_048),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "taldict",
            description: "Taligent dictionary benchmark (class library user)",
            source: include_str!("../programs/taldict.cpp"),
            paper: PaperRow {
                dead_pct: Some(27.3),
                object_space: Some(7_080),
                dead_space: Some(36),
                high_water_mark: None, // illegible in the scan (OCR "7,998")
                high_water_mark_without_dead: Some(6_972),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "ixx",
            description: "IDL-to-C++ translator (Fresco)",
            source: include_str!("../programs/ixx.cpp"),
            paper: PaperRow {
                dead_pct: Some(6.0),
                object_space: Some(551_160),
                dead_space: Some(29_745),
                high_water_mark: Some(299_516),
                high_water_mark_without_dead: Some(269_775),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "simulate",
            description: "discrete-event simulator (class library user)",
            source: include_str!("../programs/simulate.cpp"),
            paper: PaperRow {
                dead_pct: Some(24.0),
                object_space: Some(64_869),
                dead_space: Some(41),
                high_water_mark: Some(11_586),
                high_water_mark_without_dead: None, // illegible ("11,644")
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "sched",
            description: "RS/6000 instruction scheduler (C-style structs)",
            source: include_str!("../programs/sched.cpp"),
            paper: PaperRow {
                dead_pct: Some(3.0),
                object_space: Some(9_032_676),
                dead_space: Some(1_049_148),
                high_water_mark: Some(9_032_676),
                high_water_mark_without_dead: Some(7_983_528),
                ..NONE_ROW
            },
        },
        Benchmark {
            name: "hotwire",
            description: "scriptable graphical presentation builder",
            source: include_str!("../programs/hotwire.cpp"),
            paper: PaperRow {
                loc: Some(5_355),
                classes: Some(37),
                used_classes: Some(21),
                members: Some(166),
                dead_pct: Some(21.0),
                object_space: Some(10_780),
                dead_space: Some(284),
                high_water_mark: Some(10_780),
                high_water_mark_without_dead: Some(10_496),
            },
        },
        Benchmark {
            name: "deltablue",
            description: "incremental dataflow constraint solver",
            source: include_str!("../programs/deltablue.cpp"),
            paper: PaperRow {
                loc: Some(1_250),
                classes: Some(10),
                used_classes: Some(8),
                members: Some(23),
                dead_pct: Some(0.0),
                object_space: Some(276_364),
                dead_space: Some(0),
                high_water_mark: Some(196_212),
                high_water_mark_without_dead: Some(196_212),
            },
        },
        Benchmark {
            name: "richards",
            description: "simple operating system simulator",
            source: include_str!("../programs/richards.cpp"),
            paper: PaperRow {
                loc: Some(606),
                classes: Some(12),
                used_classes: Some(12),
                members: Some(28),
                dead_pct: Some(0.0),
                object_space: Some(4_889),
                dead_space: Some(0),
                high_water_mark: Some(4_880),
                high_water_mark_without_dead: Some(4_880),
            },
        },
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// The names of the two trivial benchmarks the paper reports as having
/// no dead data members at all.
pub const TRIVIAL: [&str; 2] = ["deltablue", "richards"];

/// The names of the three benchmarks built on externally-developed class
/// libraries — the paper's highest dead percentages.
pub const LIBRARY_USERS: [&str; 3] = ["taldict", "simulate", "hotwire"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_benchmarks_in_paper_order() {
        let s = suite();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].name, "jikes");
        assert_eq!(s[10].name, "richards");
    }

    #[test]
    fn every_benchmark_parses_and_analyzes() {
        for b in suite() {
            let run = b.analyze().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(run.report().class_count() > 0, "{}", b.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("richards").is_some());
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn loc_is_nonzero() {
        for b in suite() {
            assert!(b.loc() > 50, "{} suspiciously small", b.name);
        }
    }

    #[test]
    fn trivial_benchmarks_have_no_dead_members() {
        for name in TRIVIAL {
            let b = by_name(name).unwrap();
            let report = b.analyze().unwrap().report();
            assert_eq!(
                report.dead_members_in_used_classes(),
                0,
                "{name} must have zero dead members, like the paper"
            );
        }
    }

    #[test]
    fn library_users_have_the_highest_dead_percentages() {
        let results: Vec<(String, f64)> = suite()
            .into_iter()
            .map(|b| {
                let pct = b.analyze().unwrap().report().dead_percentage();
                (b.name.to_string(), pct)
            })
            .collect();
        let max_non_library = results
            .iter()
            .filter(|(n, _)| !LIBRARY_USERS.contains(&n.as_str()))
            .map(|(_, p)| *p)
            .fold(0.0f64, f64::max);
        for lib in LIBRARY_USERS {
            let (_, pct) = results.iter().find(|(n, _)| n == lib).unwrap();
            assert!(
                *pct > max_non_library * 0.9,
                "{lib} ({pct:.1}%) should be near the top (max non-library {max_non_library:.1}%)"
            );
        }
    }
}
