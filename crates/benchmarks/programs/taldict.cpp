// taldict -- Taligent dictionary benchmark stand-in.
// A dictionary micro-benchmark written against a general-purpose
// collections library. The application exercises only part of the
// library's functionality; members that are only read by *unused*
// library entry points (rehashing, iteration progress, statistics
// reporting) are dead — the paper's "unused functionality in class
// libraries" mechanism. The classes that carry dead members are
// instantiated once, while the frequently-allocated string and entry
// classes are fully live, so the static dead percentage is the highest
// of the suite while the dead *object space* stays tiny (the paper
// measured 36 dead bytes out of 7,080).

enum DictParams {
    BUCKET_COUNT = 16,
    WORKLOAD = 64
};

// ---------------------------------------------------------------- library

class LibString {
public:
    int hash_code;
    int length;
    int encoding;
    char first_char;

    LibString(int seed, int len) : hash_code(0), length(len), encoding(1) {
        int h = seed;
        for (int i = 0; i < len; i++) {
            h = h * 31 + i;
        }
        hash_code = h;
        first_char = (char)(97 + seed % 26);
    }

    int hash() { return hash_code; }

    bool equals(LibString* other) {
        return hash_code == other->hash_code && length == other->length
            && encoding == other->encoding && first_char == other->first_char;
    }
};

class DictEntry {
public:
    LibString* key;
    int value;
    int insert_order;
    DictEntry* next;

    DictEntry(LibString* k, int v, int ord, DictEntry* n)
        : key(k), value(v), insert_order(ord), next(n) { }
};

class HashPolicy {
public:
    int load_factor_pct;    // dead: only read by Dictionary::rehash()
    int growth_numerator;   // dead: only read by Dictionary::rehash()
    int growth_denominator; // dead: only read by Dictionary::rehash()
    int probe_strategy;     // dead: linear-probing variant never enabled

    HashPolicy() : load_factor_pct(75), growth_numerator(2), growth_denominator(1), probe_strategy(0) { }
};

class DictStats {
public:
    int lookups;
    int hits;
    int misses;
    int probes;
    int last_chain_len; // dead: pure-write bookkeeping, read only by report()
    int last_bucket;    // dead: pure-write bookkeeping, read only by report()
    int resize_count;   // dead: written by rehash(), which is never called

    DictStats() : lookups(0), hits(0), misses(0), probes(0), last_chain_len(0), last_bucket(0), resize_count(0) { }

    // Unused library functionality: never called by the application.
    void report() {
        print_int(last_chain_len);
        print_int(last_bucket);
        print_int(resize_count);
    }
};

class Dictionary {
public:
    DictEntry* buckets[16];
    int capacity;
    int count;
    HashPolicy* policy; // dead: only read by rehash(), which is never called
    DictStats* stats;

    Dictionary(HashPolicy* p, DictStats* s) : capacity(BUCKET_COUNT), count(0), policy(p), stats(s) {
        for (int i = 0; i < BUCKET_COUNT; i++) {
            buckets[i] = nullptr;
        }
    }

    int bucket_of(LibString* key) {
        int h = key->hash() % capacity;
        if (h < 0) {
            h = h + capacity;
        }
        return h;
    }

    void insert(LibString* key, int value) {
        int b = bucket_of(key);
        int chain = 0;
        DictEntry* e = buckets[b];
        while (e != nullptr) {
            chain = chain + 1;
            e = e->next;
        }
        stats->last_chain_len = chain;
        stats->last_bucket = b;
        buckets[b] = new DictEntry(key, value, count, buckets[b]);
        count = count + 1;
    }

    int lookup(LibString* key, int missing) {
        stats->lookups = stats->lookups + 1;
        DictEntry* e = buckets[bucket_of(key)];
        while (e != nullptr) {
            stats->probes = stats->probes + 1;
            if (e->key->equals(key)) {
                stats->hits = stats->hits + 1;
                return e->value;
            }
            e = e->next;
        }
        stats->misses = stats->misses + 1;
        return missing;
    }

    // Unused library functionality: the benchmark never grows past the
    // initial bucket array, so rehash() is unreachable.
    void rehash() {
        int threshold = capacity * policy->load_factor_pct / 100;
        if (count > threshold) {
            int target = count * policy->growth_numerator / policy->growth_denominator;
            stats->resize_count = stats->resize_count + 1;
            print_int(target + policy->probe_strategy);
        }
    }
};

class DictIterator {
public:
    Dictionary* dict;
    int bucket;
    DictEntry* entry;
    int last_order;  // dead: pure-write, read only by progress()

    DictIterator(Dictionary* d) : dict(d), bucket(0), entry(nullptr), last_order(0) {
        advance_bucket();
    }

    void advance_bucket() {
        while (bucket < BUCKET_COUNT && dict->buckets[bucket] == nullptr) {
            bucket = bucket + 1;
        }
        if (bucket < BUCKET_COUNT) {
            entry = dict->buckets[bucket];
        }
    }

    bool has_next() { return entry != nullptr; }

    DictEntry* next() {
        DictEntry* current = entry;
        last_order = current->insert_order;
        entry = entry->next;
        if (entry == nullptr) {
            bucket = bucket + 1;
            advance_bucket();
        }
        return current;
    }

    // Unused library functionality.
    int progress() {
        return last_order * 100 / dict->count;
    }
};

// ------------------------------------------------------------- application

class WordSource {
public:
    int next_seed;
    int step;
    int min_len;
    int max_len;
    int emitted;

    WordSource(int start, int s) : next_seed(start), step(s), min_len(4), max_len(12), emitted(0) { }

    LibString* next_word() {
        int len = min_len + next_seed % (max_len - min_len + 1);
        LibString* w = new LibString(next_seed, len);
        next_seed = next_seed + step;
        emitted = emitted + 1;
        return w;
    }
};

int main() {
    HashPolicy* policy = new HashPolicy();
    DictStats* stats = new DictStats();
    Dictionary* dict = new Dictionary(policy, stats);

    WordSource* filler = new WordSource(0, 1);
    for (int i = 0; i < WORKLOAD; i++) {
        dict->insert(filler->next_word(), i * 3);
    }

    WordSource* prober = new WordSource(0, 1);
    int total = 0;
    for (int i = 0; i < WORKLOAD; i++) {
        LibString* probe = prober->next_word();
        total = total + dict->lookup(probe, -1);
        delete probe;
    }

    int visited = 0;
    DictIterator* it = new DictIterator(dict);
    while (it->has_next()) {
        DictEntry* e = it->next();
        visited = visited + 1;
        total = total + (e->value + e->insert_order) % 7;
    }
    delete it;

    print_str("taldict: entries=");
    print_int(dict->count);
    print_str("taldict: visited=");
    print_int(visited);
    print_str("taldict: emitted=");
    print_int(filler->emitted + prober->emitted);
    print_str("taldict: hits=");
    print_int(stats->hits - stats->misses);
    print_str("taldict: probes=");
    print_int(stats->probes - stats->lookups);
    print_str("taldict: checksum=");
    print_int(total);
    return 0;
}
