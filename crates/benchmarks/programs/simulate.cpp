// simulate -- discrete-event simulation on top of a simulation library.
// The application drives a two-resource queueing model through a
// library offering far more than the model uses: utilization reports,
// antithetic random streams, trace records, and queue diagnostics are
// all unused entry points, and the members only they read are dead.
// Events are allocated and freed continuously, so total object space is
// much larger than the high-water mark, and the dead members sit in
// singleton library objects, so the dead *object space* is tiny (the
// paper measured 41 bytes out of 64,869).

enum SimParams {
    HORIZON = 4000,
    ARRIVAL_GAP = 3,
    SERVICE_TIME_A = 5,
    SERVICE_TIME_B = 7
};

enum EventKind {
    EV_ARRIVAL = 0,
    EV_DEPART_A = 1,
    EV_DEPART_B = 2
};

// ---------------------------------------------------------------- library

class Event {
public:
    int time;
    int kind;
    int payload;
    Event* next;

    Event(int t, int k, int p) : time(t), kind(k), payload(p), next(nullptr) { }
};

class EventQueue {
public:
    Event* head;
    int count;
    int last_insert_scan; // dead: pure-write diagnostic, read only by diagnose()
    int peak_count;       // dead: pure-write diagnostic, read only by diagnose()

    EventQueue() : head(nullptr), count(0), last_insert_scan(0), peak_count(0) { }

    void insert(Event* e) {
        int scanned = 0;
        if (head == nullptr || e->time < head->time) {
            e->next = head;
            head = e;
        } else {
            Event* p = head;
            while (p->next != nullptr && p->next->time <= e->time) {
                p = p->next;
                scanned = scanned + 1;
            }
            e->next = p->next;
            p->next = e;
        }
        count = count + 1;
        last_insert_scan = scanned;
        peak_count = count;
    }

    Event* pop() {
        Event* e = head;
        head = e->next;
        count = count - 1;
        return e;
    }

    bool isEmpty() { return head == nullptr; }

    // Unused library functionality.
    void diagnose() {
        print_int(last_insert_scan);
        print_int(peak_count);
    }
};

class RandomStream {
public:
    int seed;
    int stream_id;   // dead: read only by reseed(), never called
    int antithetic;  // dead: variance-reduction mode never enabled

    RandomStream(int s, int id) : seed(s), stream_id(id), antithetic(0) { }

    int next(int bound) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        return seed % bound;
    }

    // Unused library functionality.
    void reseed() {
        seed = stream_id * 2654435761 + antithetic;
    }
};

class Resource {
public:
    int busy;
    int queued;
    int completed;
    int busy_ticks;      // dead: pure-write, read only by utilization()

    Resource() : busy(0), queued(0), completed(0), busy_ticks(0) { }

    bool acquire(int now, int service) {
        if (busy != 0) {
            queued = queued + 1;
            return false;
        }
        busy = 1;
        busy_ticks = now + service;
        return true;
    }

    void release() {
        completed = completed + 1;
        if (queued > 0) {
            queued = queued - 1;
        } else {
            busy = 0;
        }
    }

    // Unused library functionality.
    int utilization(int now) {
        if (now == 0) {
            return 0;
        }
        return busy_ticks * 100 / now;
    }
};

class TraceBuffer {
public:
    int records;
    int last_time;   // dead: pure-write, replay() is never called
    int last_kind;   // dead: pure-write, replay() is never called
    int dropped;     // dead: overflow handling never triggers a read

    TraceBuffer() : records(0), last_time(0), last_kind(0), dropped(0) { }

    void record(int time, int kind) {
        last_time = time;
        last_kind = kind;
        dropped = kind - time;
        records = records + 1;
    }

    // Unused library functionality.
    void replay() {
        print_int(last_time);
        print_int(last_kind);
        print_int(dropped);
    }
};

// ------------------------------------------------------------- application

class JobRecord {
public:
    int arrived;
    int job_id;
    JobRecord* next;

    JobRecord(int t, int id, JobRecord* n) : arrived(t), job_id(id), next(n) { }
};

class Simulation {
public:
    EventQueue* queue;
    RandomStream* rng;
    Resource* station_a;
    Resource* station_b;
    TraceBuffer* trace;
    JobRecord* journal;
    int clock;
    int arrivals;
    int departures;

    Simulation() : journal(nullptr), clock(0), arrivals(0), departures(0) {
        queue = new EventQueue();
        rng = new RandomStream(42, 1);
        station_a = new Resource();
        station_b = new Resource();
        trace = new TraceBuffer();
    }

    void schedule(int delay, int kind, int payload) {
        queue->insert(new Event(clock + delay, kind, payload));
    }

    void run() {
        schedule(0, EV_ARRIVAL, 0);
        while (!queue->isEmpty()) {
            Event* e = queue->pop();
            if (e->time > HORIZON) {
                delete e;
                break;
            }
            clock = e->time;
            trace->record(clock, e->kind);
            if (e->kind == EV_ARRIVAL) {
                arrivals = arrivals + 1;
                journal = new JobRecord(clock, arrivals, journal);
                int jitter = rng->next(ARRIVAL_GAP);
                schedule(ARRIVAL_GAP + jitter, EV_ARRIVAL, arrivals);
                if (station_a->acquire(clock, SERVICE_TIME_A)) {
                    schedule(SERVICE_TIME_A, EV_DEPART_A, e->payload);
                }
            } else if (e->kind == EV_DEPART_A) {
                station_a->release();
                if (station_a->queued >= 0 && station_a->busy != 0) {
                    schedule(SERVICE_TIME_A, EV_DEPART_A, e->payload + 1);
                }
                if (station_b->acquire(clock, SERVICE_TIME_B)) {
                    schedule(SERVICE_TIME_B, EV_DEPART_B, e->payload);
                }
            } else {
                station_b->release();
                departures = departures + 1;
                if (station_b->busy != 0) {
                    schedule(SERVICE_TIME_B, EV_DEPART_B, e->payload + 1);
                }
            }
            delete e;
        }
        while (!queue->isEmpty()) {
            Event* leftover = queue->pop();
            delete leftover;
        }
    }
};

int main() {
    Simulation* sim = new Simulation();
    sim->run();
    print_str("simulate: clock=");
    print_int(sim->clock);
    print_str("simulate: arrivals=");
    print_int(sim->arrivals);
    print_str("simulate: completed_a=");
    print_int(sim->station_a->completed);
    print_str("simulate: departures=");
    print_int(sim->departures);
    int journal_len = 0;
    int journal_sum = 0;
    JobRecord* r = sim->journal;
    while (r != nullptr) {
        journal_len = journal_len + 1;
        journal_sum = journal_sum + r->arrived % 11 + r->job_id % 7;
        r = r->next;
    }
    print_str("simulate: journal=");
    print_int(journal_len);
    print_str("simulate: journal_sum=");
    print_int(journal_sum);
    return 0;
}
