// Multi-TU sample, TU 2 of 3: geometry. Defines `total_area`, declared
// as a prototype in shapes_main.cpp. The virtual dispatch on `area`
// needs the whole linked hierarchy to resolve its candidate set.

enum ShapeKind { KindCircle, KindRect };

class Shape {
public:
    Shape(int k) : kind(k), tag(0) { }
    virtual ~Shape() { }
    virtual int area() { return 0; }
    int kind;
    int tag;
};

class Circle : public Shape {
public:
    Circle(int r) : Shape(KindCircle), radius(r), cached(0) { }
    virtual int area() { return 3 * radius * radius; }
    int radius;
    int cached;
};

class Rect : public Shape {
public:
    Rect(int pw, int ph) : Shape(KindRect), w(pw), h(ph), perimeter(0) { }
    virtual int area() { return w * h; }
    int w;
    int h;
    int perimeter;
};

int total_area(Shape* a, Shape* b) {
    return a->area() + b->area();
}
