// Multi-TU sample, TU 1 of 3: the driver. The class definitions below
// are the project's "header", textually duplicated in every TU (the
// front end has no preprocessor); the linker merges them under ODR
// identity. Cross-TU calls go through the body-less prototypes.

enum ShapeKind { KindCircle, KindRect };

class Shape {
public:
    Shape(int k) : kind(k), tag(0) { }
    virtual ~Shape() { }
    virtual int area() { return 0; }
    int kind;
    int tag;
};

class Circle : public Shape {
public:
    Circle(int r) : Shape(KindCircle), radius(r), cached(0) { }
    virtual int area() { return 3 * radius * radius; }
    int radius;
    int cached;
};

class Rect : public Shape {
public:
    Rect(int pw, int ph) : Shape(KindRect), w(pw), h(ph), perimeter(0) { }
    virtual int area() { return w * h; }
    int w;
    int h;
    int perimeter;
};

int total_area(Shape* a, Shape* b);
int classify(Shape* s);

int main() {
    Shape* c = new Circle(2);
    Shape* r = new Rect(3, 4);
    int area = total_area(c, r);
    int kinds = classify(c) + classify(r);
    delete c;
    delete r;
    return area + kinds;
}
