// Multi-TU sample, TU 3 of 3: statistics. Defines `classify`, declared
// as a prototype in shapes_main.cpp. Writes `tag`, `cached`, and
// `perimeter` without ever reading them — all three stay dead even
// though every TU mentions them, because no reachable code reads them.

enum ShapeKind { KindCircle, KindRect };

class Shape {
public:
    Shape(int k) : kind(k), tag(0) { }
    virtual ~Shape() { }
    virtual int area() { return 0; }
    int kind;
    int tag;
};

class Circle : public Shape {
public:
    Circle(int r) : Shape(KindCircle), radius(r), cached(0) { }
    virtual int area() { return 3 * radius * radius; }
    int radius;
    int cached;
};

class Rect : public Shape {
public:
    Rect(int pw, int ph) : Shape(KindRect), w(pw), h(ph), perimeter(0) { }
    virtual int area() { return w * h; }
    int w;
    int h;
    int perimeter;
};

int classify(Shape* s) {
    s->tag = 1;
    return s->kind;
}
