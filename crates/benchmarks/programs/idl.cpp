// idl -- SOM IDL compiler stand-in. The paper singles out idl as "a
// highly object-oriented application with a complex class hierarchy and
// heavy use of virtual functions and virtual inheritance"; this model
// reproduces that shape: every declaration node sits on a diamond of
// virtual inheritance (Named and Typed both virtually derive from
// SyntaxNode), and code generation dispatches virtually. The compiler
// builds the whole AST, holds it, and emits at the end, so the
// high-water mark is nearly identical to total object space (the paper:
// 701,273 of 708,249 bytes). Dead members are repository-metadata
// fields only read by an unused interface-repository exporter.

enum IdlParams {
    MODULE_COUNT = 6,
    INTERFACES_PER_MODULE = 4,
    OPS_PER_INTERFACE = 5,
    ATTRS_PER_INTERFACE = 4,
    PARAMS_PER_OP = 3
};

enum TypeCode {
    TC_VOID = 0,
    TC_SHORT = 1,
    TC_LONG = 2,
    TC_FLOAT = 3,
    TC_STRING = 4,
    TC_OBJREF = 5,
    TYPE_CODE_COUNT = 6
};

enum ParamDirection {
    DIR_IN = 0,
    DIR_OUT = 1,
    DIR_INOUT = 2
};

class Emitter {
public:
    int checksum;
    int lines;
    int depth;
    int indent_width;
    int last_line;   // dead: pure-write, read only by the source-map dump

    Emitter() : checksum(0), lines(0), depth(0), indent_width(4), last_line(0) { }

    void emit(int code) {
        checksum = (checksum * 37 + code + depth * indent_width) & 16777215;
        lines = lines + 1;
    }

    void enter() { depth = depth + 1; }
    void leave() { depth = depth - 1; }

    // Unused source-map dump.
    int source_map_entry() {
        return last_line;
    }
};

class SyntaxNode {
public:
    int node_id;
    int line;

    SyntaxNode(int id, int ln) : node_id(id), line(ln) { }

    virtual void generate(Emitter* out) = 0;
    virtual int weight() { return 1; }
};

class Named : public virtual SyntaxNode {
public:
    int name_hash;
    int scope_depth;

    Named(int id, int ln, int name) : SyntaxNode(id, ln), name_hash(name), scope_depth(0) { }
};

class Typed : public virtual SyntaxNode {
public:
    int type_code;
    int is_sequence;

    Typed(int id, int ln, int tc) : SyntaxNode(id, ln), type_code(tc), is_sequence(tc % 5 == 4) { }
};

class Decl : public Named, public Typed {
public:
    Decl* next;
    int defined_in;

    Decl(int id, int ln, int name, int tc)
        : SyntaxNode(id, ln), Named(id, ln, name), Typed(id, ln, tc), next(nullptr), defined_in(0) { }

    virtual void generate(Emitter* out) {
        out->last_line = line;
        int seq_tag = 0;
        if (is_sequence) {
            seq_tag = 64;
        }
        out->emit(name_hash + type_code * 7 + node_id + scope_depth + seq_tag + defined_in);
    }
};

class ParamDecl : public Decl {
public:
    int direction;
    int has_default;

    ParamDecl(int id, int name, int tc, int dir) : Decl(id, 0, name, tc), direction(dir), has_default(dir == DIR_IN) { }

    virtual void generate(Emitter* out) {
        int dflt = 0;
        if (has_default != 0) {
            dflt = 9;
        }
        out->emit(direction * 100 + type_code + name_hash % 50 + dflt);
    }

    virtual int weight() { return 1; }
};

class AttributeDecl : public Decl {
public:
    int readonly_flag;

    AttributeDecl(int id, int name, int tc, int ro) : Decl(id, 0, name, tc), readonly_flag(ro) { }

    virtual void generate(Emitter* out) {
        // Getter, and a setter for writable attributes.
        out->emit(name_hash * 3 + type_code);
        if (readonly_flag == 0) {
            out->emit(name_hash * 5 + type_code);
        }
    }

    virtual int weight() { return 2; }
};

class OperationDecl : public Decl {
public:
    ParamDecl* params[3];
    int param_count;
    int oneway_flag;
    int context_count;

    OperationDecl(int id, int name, int tc, int ow) : Decl(id, 0, name, tc), param_count(0), oneway_flag(ow), context_count(tc % 2) { }

    void add_param(ParamDecl* p) {
        params[param_count] = p;
        param_count = param_count + 1;
    }

    virtual void generate(Emitter* out) {
        out->emit(name_hash + type_code * 11 + oneway_flag + context_count);
        out->enter();
        for (int i = 0; i < param_count; i++) {
            params[i]->generate(out);
        }
        out->leave();
    }

    virtual int weight() { return 1 + param_count; }
};

class InterfaceDecl : public Decl {
public:
    Decl* members_head;
    int member_count;
    int is_local;
    int version_major;  // dead: read only by the IR exporter, never run
    int version_minor;  // dead: read only by the IR exporter, never run
    int repository_tag; // dead: read only by the IR exporter, never run

    InterfaceDecl(int id, int name) : Decl(id, 0, name, TC_OBJREF), members_head(nullptr), member_count(0), is_local(name % 2), version_major(1), version_minor(0), repository_tag(0) {
        repository_tag = name * 31;
    }

    void add_member(Decl* d) {
        d->next = members_head;
        d->defined_in = name_hash;
        members_head = d;
        member_count = member_count + 1;
    }

    virtual void generate(Emitter* out) {
        out->emit(name_hash * 13 + is_local);
        out->enter();
        Decl* d = members_head;
        while (d != nullptr) {
            d->generate(out);
            d = d->next;
        }
        out->leave();
    }

    virtual int weight() {
        int total = 2;
        Decl* d = members_head;
        while (d != nullptr) {
            total = total + d->weight();
            d = d->next;
        }
        return total;
    }

    // Unused interface-repository exporter.
    int export_ir() {
        return version_major * 1000 + version_minor + repository_tag;
    }
};

class ModuleDecl : public Decl {
public:
    InterfaceDecl* interfaces[4];
    int interface_count;
    int prefix_hash;

    ModuleDecl(int id, int name) : Decl(id, 0, name, TC_VOID), interface_count(0), prefix_hash(name * 53) { }

    void add_interface(InterfaceDecl* i) {
        interfaces[interface_count] = i;
        interface_count = interface_count + 1;
    }

    virtual void generate(Emitter* out) {
        out->emit(name_hash * 17 + prefix_hash);
        out->enter();
        for (int i = 0; i < interface_count; i++) {
            interfaces[i]->generate(out);
        }
        out->leave();
    }

    virtual int weight() {
        int total = 1;
        for (int i = 0; i < interface_count; i++) {
            total = total + interfaces[i]->weight();
        }
        return total;
    }
};

int main() {
    Emitter* out = new Emitter();
    ModuleDecl* modules[6];
    int next_id = 1;
    int seed = 12345;

    for (int m = 0; m < MODULE_COUNT; m++) {
        ModuleDecl* mod = new ModuleDecl(next_id, 500 + m);
        next_id = next_id + 1;
        for (int i = 0; i < INTERFACES_PER_MODULE; i++) {
            InterfaceDecl* iface = new InterfaceDecl(next_id, m * 100 + i);
            next_id = next_id + 1;
            for (int a = 0; a < ATTRS_PER_INTERFACE; a++) {
                seed = (seed * 1103515245 + 12345) & 1048575;
                iface->add_member(new AttributeDecl(next_id, seed % 997, seed % TYPE_CODE_COUNT, a % 2));
                next_id = next_id + 1;
            }
            for (int o = 0; o < OPS_PER_INTERFACE; o++) {
                seed = (seed * 1103515245 + 12345) & 1048575;
                OperationDecl* op = new OperationDecl(next_id, seed % 991, seed % TYPE_CODE_COUNT, o % 3 == 0);
                next_id = next_id + 1;
                for (int pnum = 0; pnum < PARAMS_PER_OP; pnum++) {
                    seed = (seed * 1103515245 + 12345) & 1048575;
                    op->add_param(new ParamDecl(next_id, seed % 983, seed % TYPE_CODE_COUNT, pnum % 3));
                    next_id = next_id + 1;
                }
                iface->add_member(op);
            }
            mod->add_interface(iface);
        }
        modules[m] = mod;
    }

    int total_weight = 0;
    for (int m = 0; m < MODULE_COUNT; m++) {
        modules[m]->generate(out);
        total_weight = total_weight + modules[m]->weight();
    }

    print_str("idl: nodes=");
    print_int(next_id - 1);
    print_str("idl: weight=");
    print_int(total_weight);
    print_str("idl: lines=");
    print_int(out->lines);
    print_str("idl: checksum=");
    print_int(out->checksum);
    return 0;
}
