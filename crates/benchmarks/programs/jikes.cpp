// jikes -- Java-compiler front-end stand-in (the paper's largest
// benchmark). Lexes a stream of synthetic source "tokens", parses them
// into expression ASTs, resolves identifiers against a symbol table,
// and emits stack bytecode. The AST for each compilation unit is freed
// after code generation, so the high-water mark sits well below total
// object space (the paper measured ~75%). Dead members come from
// abandoned compiler features: position tracking for a column-precise
// error reporter that was never wired up, and cache fields of a
// retired optimization pass.

enum JikesParams {
    UNIT_COUNT = 30,
    EXPRS_PER_UNIT = 28
};

enum TokKind {
    TOK_NUM = 0,
    TOK_IDENT = 1,
    TOK_PLUS = 2,
    TOK_STAR = 3,
    TOK_LPAREN = 4,
    TOK_RPAREN = 5,
    TOK_EOF = 6
};

enum AstKind {
    AST_LIT = 0,
    AST_VAR = 1,
    AST_BIN = 2
};

class Token {
public:
    int kind;
    int value;
    int line;
    int column;
    int length;

    Token(int k, int v, int ln, int col, int len)
        : kind(k), value(v), line(ln), column(col), length(len) { }
};

class TokenStream {
public:
    int seed;
    int position;
    int emitted;
    int depth;

    TokenStream(int s) : seed(s), position(0), emitted(0), depth(0) { }

    Token* next() {
        seed = (seed * 1103515245 + 12345) & 1048575;
        position = position + 1;
        emitted = emitted + 1;
        int roll = seed % 10;
        int kind;
        if (depth > 0 && roll < 2) {
            kind = TOK_RPAREN;
            depth = depth - 1;
        } else if (roll < 3) {
            kind = TOK_LPAREN;
            depth = depth + 1;
        } else if (roll < 6) {
            kind = TOK_NUM;
        } else if (roll < 8) {
            kind = TOK_IDENT;
        } else if (roll < 9) {
            kind = TOK_PLUS;
        } else {
            kind = TOK_STAR;
        }
        Token* t = new Token(kind, seed % 100, position / 40, position % 40, 1 + seed % 6);
        position = position + t->length - 1;
        return t;
    }
};

class AstNode {
public:
    int kind;
    int line;
    int const_cache;  // dead: constant-folding cache of a retired pass

    AstNode(int k, int ln) : kind(k), line(ln), const_cache(0) { }

    virtual int eval() = 0;
    virtual int emit(int* buf, int at) = 0;
    virtual void release() = 0;
};

class AstLiteral : public AstNode {
public:
    int value;

    AstLiteral(int v, int ln) : AstNode(AST_LIT, ln), value(v) { }

    virtual int eval() { return value; }

    virtual int emit(int* buf, int at) {
        buf[at] = 100 + value;
        return at + 1;
    }

    virtual void release() { }
};

class Symbol;

class AstVar : public AstNode {
public:
    Symbol* sym;

    AstVar(Symbol* s, int ln) : AstNode(AST_VAR, ln), sym(s) { }

    virtual int eval() {
        sym->reads = sym->reads + 1;
        return sym->value;
    }

    virtual int emit(int* buf, int at) {
        buf[at] = 200 + sym->slot;
        return at + 1;
    }

    virtual void release() { }
};

class AstBinary : public AstNode {
public:
    int op;
    AstNode* lhs;
    AstNode* rhs;

    AstBinary(int o, AstNode* l, AstNode* r, int ln) : AstNode(AST_BIN, ln), op(o), lhs(l), rhs(r) { }

    virtual int eval() {
        if (op == TOK_PLUS) {
            return lhs->eval() + rhs->eval();
        }
        return lhs->eval() * rhs->eval();
    }

    virtual int emit(int* buf, int at) {
        at = lhs->emit(buf, at);
        at = rhs->emit(buf, at);
        buf[at] = op;
        return at + 1;
    }

    virtual void release() {
        lhs->release();
        rhs->release();
        delete lhs;
        delete rhs;
    }
};

class Symbol {
public:
    int name_hash;
    int slot;
    int value;
    int reads;
    Symbol* next;
    int decl_column;  // dead: written at declaration, reader never shipped

    Symbol(int h, int sl, int v, Symbol* n)
        : name_hash(h), slot(sl), value(v), reads(0), next(n), decl_column(0) { }
};

class SymbolTable {
public:
    Symbol* head;
    int count;
    int lookups;

    SymbolTable() : head(nullptr), count(0), lookups(0) { }

    Symbol* intern(int name_hash) {
        lookups = lookups + 1;
        Symbol* s = head;
        while (s != nullptr) {
            if (s->name_hash == name_hash) {
                return s;
            }
            s = s->next;
        }
        head = new Symbol(name_hash, count, name_hash % 17, head);
        head->decl_column = name_hash % 80;
        count = count + 1;
        return head;
    }
};

class CodeBuffer {
public:
    int* code;
    int len;
    int capacity;
    int checksum;

    CodeBuffer(int cap) : len(0), capacity(cap), checksum(0) {
        code = new int[cap];
    }

    void absorb(int upto) {
        if (len + upto > capacity) {
            return;
        }
        for (int i = 0; i < upto; i++) {
            checksum = (checksum * 33 + code[i]) & 16777215;
        }
        len = len + upto;
    }
};

class Parser {
public:
    TokenStream* tokens;
    SymbolTable* symtab;
    Token* lookahead;
    int nodes_built;
    int errors;
    int last_error_line; // dead: written on error, read only by report_verbose()

    Parser(TokenStream* ts, SymbolTable* st) : tokens(ts), symtab(st), nodes_built(0), errors(0), last_error_line(0) {
        lookahead = tokens->next();
    }

    void advance() {
        delete lookahead;
        lookahead = tokens->next();
    }

    // primary := NUM | IDENT | '(' expr ')'
    AstNode* primary() {
        if (lookahead->kind == TOK_NUM) {
            AstNode* n = new AstLiteral(lookahead->value, lookahead->line);
            nodes_built = nodes_built + 1;
            advance();
            return n;
        }
        if (lookahead->kind == TOK_IDENT) {
            Symbol* s = symtab->intern(lookahead->value % 23);
            AstNode* n = new AstVar(s, lookahead->line);
            nodes_built = nodes_built + 1;
            advance();
            return n;
        }
        if (lookahead->kind == TOK_LPAREN) {
            advance();
            AstNode* inner = expr();
            if (lookahead->kind == TOK_RPAREN) {
                advance();
            } else {
                errors = errors + 1;
                last_error_line = lookahead->line;
            }
            return inner;
        }
        // Error recovery: swallow one token, produce a zero literal that
        // remembers where recovery happened.
        errors = errors + 1;
        last_error_line = lookahead->line;
        int where = lookahead->column;
        advance();
        AstNode* n = new AstLiteral(0, where);
        nodes_built = nodes_built + 1;
        return n;
    }

    // term := primary ('*' primary)*
    AstNode* term() {
        AstNode* left = primary();
        while (lookahead->kind == TOK_STAR) {
            advance();
            AstNode* right = primary();
            left = new AstBinary(TOK_STAR, left, right, left->line);
            nodes_built = nodes_built + 1;
        }
        return left;
    }

    // expr := term ('+' term)*
    AstNode* expr() {
        AstNode* left = term();
        while (lookahead->kind == TOK_PLUS) {
            advance();
            AstNode* right = term();
            left = new AstBinary(TOK_PLUS, left, right, left->line);
            nodes_built = nodes_built + 1;
        }
        return left;
    }

    // Unused verbose error reporter.
    void report_verbose() {
        print_int(errors);
        print_int(last_error_line);
    }
};

int main() {
    SymbolTable* symtab = new SymbolTable();
    CodeBuffer* output = new CodeBuffer(4096);
    int value_sum = 0;
    int total_nodes = 0;
    int total_errors = 0;

    for (int unit = 0; unit < UNIT_COUNT; unit++) {
        TokenStream* ts = new TokenStream(unit * 2654435761 + 97);
        Parser* parser = new Parser(ts, symtab);
        int scratch[64];
        for (int e = 0; e < EXPRS_PER_UNIT; e++) {
            AstNode* tree = parser->expr();
            value_sum = (value_sum + tree->eval() + tree->kind) & 16777215;
            int emitted = tree->emit(scratch, 0);
            output->absorb(0);
            for (int i = 0; i < emitted; i++) {
                output->checksum = (output->checksum * 33 + scratch[i]) & 16777215;
            }
            output->len = output->len + emitted;
            // The front end keeps the whole program's ASTs; only tokens
            // are transient, so the HWM sits below the total but is a
            // substantial fraction of it.
        }
        total_nodes = total_nodes + parser->nodes_built;
        total_errors = total_errors + parser->errors;
        delete parser->lookahead;
        delete parser;
        delete ts;
    }

    print_str("jikes: units=");
    print_int(UNIT_COUNT);
    print_str("jikes: nodes=");
    print_int(total_nodes);
    print_str("jikes: symbols=");
    print_int(symtab->count);
    print_str("jikes: lookups=");
    print_int(symtab->lookups);
    print_str("jikes: errors=");
    print_int(total_errors);
    print_str("jikes: code_len=");
    print_int(output->len);
    print_str("jikes: value_sum=");
    print_int(value_sum);
    print_str("jikes: checksum=");
    print_int(output->checksum);
    return 0;
}
