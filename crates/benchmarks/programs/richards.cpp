// richards -- simple operating-system task scheduler simulator.
// Faithful adaptation of M. Richards' benchmark (the Deutsch/Bobrow
// variant popularized by the Smalltalk, Self, and V8 benchmark suites)
// to the analysed C++ subset. The paper's Table 1 lists richards at
// 606 lines, 12 classes, 28 data members, with zero dead data members.

enum TaskId {
    ID_IDLE = 0,
    ID_WORKER = 1,
    ID_HANDLER_A = 2,
    ID_HANDLER_B = 3,
    ID_DEVICE_A = 4,
    ID_DEVICE_B = 5,
    NUMBER_OF_IDS = 6
};

enum PacketKind {
    KIND_DEVICE = 0,
    KIND_WORK = 1
};

enum TaskState {
    STATE_RUNNING = 0,
    STATE_RUNNABLE = 1,
    STATE_SUSPENDED = 2,
    STATE_SUSPENDED_RUNNABLE = 3,
    STATE_HELD = 4,
    STATE_NOT_HELD_MASK = 11
};

enum BenchParams {
    DATA_SIZE = 4,
    COUNT = 1000,
    EXPECTED_QUEUE_COUNT = 2322,
    EXPECTED_HOLD_COUNT = 928
};

class Packet {
public:
    Packet* link;
    int id;
    int kind;
    int a1;
    int a2[4];

    Packet(Packet* lnk, int pid, int pkind) : link(lnk), id(pid), kind(pkind), a1(0) {
        for (int i = 0; i < DATA_SIZE; i++) {
            a2[i] = 0;
        }
    }

    Packet* addTo(Packet* queue) {
        link = nullptr;
        if (queue == nullptr) {
            return this;
        }
        Packet* peek = queue;
        Packet* next = peek->link;
        while (next != nullptr) {
            peek = next;
            next = peek->link;
        }
        peek->link = this;
        return queue;
    }
};

class Scheduler;

class Task {
public:
    Scheduler* sched;
    Task(Scheduler* s) : sched(s) { }
    virtual TaskControlBlock* run(Packet* packet) = 0;
};

class TaskControlBlock {
public:
    TaskControlBlock* link;
    int id;
    int priority;
    Packet* queue;
    Task* task;
    int state;

    TaskControlBlock(TaskControlBlock* lnk, int tid, int pri, Packet* q, Task* t)
        : link(lnk), id(tid), priority(pri), queue(q), task(t) {
        if (q == nullptr) {
            state = STATE_SUSPENDED;
        } else {
            state = STATE_SUSPENDED_RUNNABLE;
        }
    }

    void setRunning() { state = STATE_RUNNING; }
    void markAsNotHeld() { state = state & STATE_NOT_HELD_MASK; }
    void markAsHeld() { state = state | STATE_HELD; }
    bool isHeldOrSuspended() {
        return (state & STATE_HELD) != 0 || state == STATE_SUSPENDED;
    }
    void markAsSuspended() { state = state | STATE_SUSPENDED; }
    void markAsRunnable() { state = state | STATE_RUNNABLE; }

    TaskControlBlock* run() {
        Packet* packet;
        if (state == STATE_SUSPENDED_RUNNABLE) {
            packet = queue;
            queue = packet->link;
            if (queue == nullptr) {
                state = STATE_RUNNING;
            } else {
                state = STATE_RUNNABLE;
            }
        } else {
            packet = nullptr;
        }
        return task->run(packet);
    }

    TaskControlBlock* checkPriorityAdd(TaskControlBlock* t, Packet* packet) {
        if (queue == nullptr) {
            queue = packet;
            markAsRunnable();
            if (priority > t->priority) {
                return this;
            }
        } else {
            queue = packet->addTo(queue);
        }
        return t;
    }
};

class Scheduler {
public:
    int queueCount;
    int holdCount;
    TaskControlBlock* blocks[6];
    TaskControlBlock* list;
    TaskControlBlock* currentTcb;
    int currentId;

    Scheduler() : queueCount(0), holdCount(0), list(nullptr), currentTcb(nullptr), currentId(0) {
        for (int i = 0; i < NUMBER_OF_IDS; i++) {
            blocks[i] = nullptr;
        }
    }

    void addTask(int id, int priority, Packet* queue, Task* task) {
        currentTcb = new TaskControlBlock(list, id, priority, queue, task);
        list = currentTcb;
        blocks[id] = currentTcb;
    }

    void addRunningTask(int id, int priority, Packet* queue, Task* task) {
        addTask(id, priority, queue, task);
        currentTcb->setRunning();
    }

    void schedule() {
        currentTcb = list;
        while (currentTcb != nullptr) {
            if (currentTcb->isHeldOrSuspended()) {
                currentTcb = currentTcb->link;
            } else {
                currentId = currentTcb->id;
                currentTcb = currentTcb->run();
            }
        }
    }

    TaskControlBlock* release(int id) {
        TaskControlBlock* tcb = blocks[id];
        if (tcb == nullptr) {
            return tcb;
        }
        tcb->markAsNotHeld();
        if (tcb->priority > currentTcb->priority) {
            return tcb;
        }
        return currentTcb;
    }

    TaskControlBlock* holdCurrent() {
        holdCount = holdCount + 1;
        currentTcb->markAsHeld();
        return currentTcb->link;
    }

    TaskControlBlock* suspendCurrent() {
        currentTcb->markAsSuspended();
        return currentTcb;
    }

    TaskControlBlock* queuePacket(Packet* packet) {
        TaskControlBlock* t = blocks[packet->id];
        if (t == nullptr) {
            return t;
        }
        queueCount = queueCount + 1;
        packet->link = nullptr;
        packet->id = currentId;
        return t->checkPriorityAdd(currentTcb, packet);
    }
};

class IdleTask : public Task {
public:
    int v1;
    int count;

    IdleTask(Scheduler* s, int seed, int cnt) : Task(s), v1(seed), count(cnt) { }

    virtual TaskControlBlock* run(Packet* packet) {
        count = count - 1;
        if (count == 0) {
            return sched->holdCurrent();
        }
        if ((v1 & 1) == 0) {
            v1 = v1 >> 1;
            return sched->release(ID_DEVICE_A);
        }
        v1 = (v1 >> 1) ^ 53256;
        return sched->release(ID_DEVICE_B);
    }
};

class DeviceTask : public Task {
public:
    Packet* pending;

    DeviceTask(Scheduler* s) : Task(s), pending(nullptr) { }

    virtual TaskControlBlock* run(Packet* packet) {
        if (packet == nullptr) {
            if (pending == nullptr) {
                return sched->suspendCurrent();
            }
            Packet* v = pending;
            pending = nullptr;
            return sched->queuePacket(v);
        }
        pending = packet;
        return sched->holdCurrent();
    }
};

class WorkerTask : public Task {
public:
    int v1;
    int v2;

    WorkerTask(Scheduler* s, int dest, int counter) : Task(s), v1(dest), v2(counter) { }

    virtual TaskControlBlock* run(Packet* packet) {
        if (packet == nullptr) {
            return sched->suspendCurrent();
        }
        if (v1 == ID_HANDLER_A) {
            v1 = ID_HANDLER_B;
        } else {
            v1 = ID_HANDLER_A;
        }
        packet->id = v1;
        packet->a1 = 0;
        for (int i = 0; i < DATA_SIZE; i++) {
            v2 = v2 + 1;
            if (v2 > 26) {
                v2 = 1;
            }
            packet->a2[i] = v2;
        }
        return sched->queuePacket(packet);
    }
};

class HandlerTask : public Task {
public:
    Packet* workQueue;
    Packet* deviceQueue;

    HandlerTask(Scheduler* s) : Task(s), workQueue(nullptr), deviceQueue(nullptr) { }

    virtual TaskControlBlock* run(Packet* packet) {
        if (packet != nullptr) {
            if (packet->kind == KIND_WORK) {
                workQueue = packet->addTo(workQueue);
            } else {
                deviceQueue = packet->addTo(deviceQueue);
            }
        }
        if (workQueue != nullptr) {
            int count = workQueue->a1;
            if (count < DATA_SIZE) {
                if (deviceQueue != nullptr) {
                    Packet* v = deviceQueue;
                    deviceQueue = deviceQueue->link;
                    v->a1 = workQueue->a2[count];
                    workQueue->a1 = count + 1;
                    return sched->queuePacket(v);
                }
            } else {
                Packet* v = workQueue;
                workQueue = workQueue->link;
                return sched->queuePacket(v);
            }
        }
        return sched->suspendCurrent();
    }
};

int main() {
    Scheduler* scheduler = new Scheduler();
    scheduler->addRunningTask(ID_IDLE, 0, nullptr, new IdleTask(scheduler, 1, COUNT));

    Packet* queue = new Packet(nullptr, ID_WORKER, KIND_WORK);
    queue = new Packet(queue, ID_WORKER, KIND_WORK);
    scheduler->addTask(ID_WORKER, 1000, queue, new WorkerTask(scheduler, ID_HANDLER_A, 0));

    queue = new Packet(nullptr, ID_DEVICE_A, KIND_DEVICE);
    queue = new Packet(queue, ID_DEVICE_A, KIND_DEVICE);
    queue = new Packet(queue, ID_DEVICE_A, KIND_DEVICE);
    scheduler->addTask(ID_HANDLER_A, 2000, queue, new HandlerTask(scheduler));

    queue = new Packet(nullptr, ID_DEVICE_B, KIND_DEVICE);
    queue = new Packet(queue, ID_DEVICE_B, KIND_DEVICE);
    queue = new Packet(queue, ID_DEVICE_B, KIND_DEVICE);
    scheduler->addTask(ID_HANDLER_B, 3000, queue, new HandlerTask(scheduler));

    scheduler->addTask(ID_DEVICE_A, 4000, nullptr, new DeviceTask(scheduler));
    scheduler->addTask(ID_DEVICE_B, 5000, nullptr, new DeviceTask(scheduler));

    scheduler->schedule();

    print_str("richards: queueCount=");
    print_int(scheduler->queueCount);
    print_str("richards: holdCount=");
    print_int(scheduler->holdCount);

    if (scheduler->queueCount == EXPECTED_QUEUE_COUNT && scheduler->holdCount == EXPECTED_HOLD_COUNT) {
        print_str("richards: OK\n");
        return 0;
    }
    print_str("richards: FAILED\n");
    return 1;
}
