// sched -- RS/6000 instruction scheduler stand-in.
// Written in a deliberately C-ish style, like the paper's sched: almost
// everything is a struct, there is no inheritance, and the program
// allocates its instruction records up front and holds them until exit,
// so the high-water mark equals total object space. The dead members are
// profiling fields carried by the *hot* instruction struct (written by
// the emitter, read only by an unused trace dumper), which is why sched
// has the paper's smallest static dead percentage (3.0%) but its largest
// dead object space (11.6%).

enum SchedParams {
    BLOCK_COUNT = 16,
    INSNS_PER_BLOCK = 32,
    UNIT_COUNT = 4,
    REG_COUNT = 16
};

enum Opcode {
    OP_ADD = 0,
    OP_MUL = 1,
    OP_LOAD = 2,
    OP_STORE = 3,
    OP_BRANCH = 4,
    OP_FMA = 5,
    OPCODE_COUNT = 6
};

struct OpcodeInfo {
    int opcode;
    int latency;
    int unit_class;
    int writes_dest;
    int commutative;
    int mem_access;

    OpcodeInfo(int op) {
        opcode = op;
        if (op == OP_MUL || op == OP_FMA) {
            latency = 4;
        } else if (op == OP_LOAD) {
            latency = 3;
        } else {
            latency = 1;
        }
        if (op == OP_LOAD || op == OP_STORE) {
            unit_class = 2;
        } else if (op == OP_BRANCH) {
            unit_class = 3;
        } else {
            unit_class = op % 2;
        }
        if (op == OP_STORE || op == OP_BRANCH) {
            writes_dest = 0;
        } else {
            writes_dest = 1;
        }
        if (op == OP_ADD || op == OP_MUL) {
            commutative = 1;
        } else {
            commutative = 0;
        }
        if (op == OP_LOAD || op == OP_STORE) {
            mem_access = 1;
        } else {
            mem_access = 0;
        }
    }
};

struct Insn {
    int opcode;
    int dest;
    int src1;
    int src2;
    int latency;
    int unit_class;
    int ready_cycle;
    int issued_cycle;
    int dep_count;
    int is_mem;
    int profile_weight; // dead: written at emit, read only by dump_trace()
    int trace_tag;      // dead: written at emit, read only by dump_trace()

    Insn(OpcodeInfo* info, int d, int a, int b, int seq) {
        opcode = info->opcode;
        dest = d;
        src1 = a;
        src2 = b;
        latency = info->latency;
        unit_class = info->unit_class;
        is_mem = info->mem_access;
        ready_cycle = 0;
        issued_cycle = -1;
        dep_count = 0;
        profile_weight = seq * 3 + info->opcode;
        trace_tag = seq;
    }
};

struct DepEdge {
    Insn* from;
    Insn* to;
    DepEdge* next;

    DepEdge(Insn* f, Insn* t, DepEdge* n) : from(f), to(t), next(n) { }
};

struct FuncUnit {
    int unit_class;
    int busy_until;
    int issued;

    FuncUnit(int cls) : unit_class(cls), busy_until(0), issued(0) { }
};

struct RegState {
    Insn* last_writer;
    Insn* last_reader;
    int write_cycle;
    int read_cycle;

    RegState() : last_writer(nullptr), last_reader(nullptr), write_cycle(0), read_cycle(0) { }
};

struct BasicBlock {
    Insn* insns[32];
    int insn_count;
    DepEdge* edges;
    int schedule_len;
    int block_id;

    BasicBlock(int id) : insn_count(0), edges(nullptr), schedule_len(0), block_id(id) { }
};

struct BlockSummary {
    int block_id;
    int insns;
    int cycles;
    int ilp_x100;
    BlockSummary* next;

    BlockSummary(int id, int n, int c, BlockSummary* nx) : block_id(id), insns(n), cycles(c), next(nx) {
        if (c > 0) {
            ilp_x100 = n * 100 / c;
        } else {
            ilp_x100 = 0;
        }
    }
};

struct MachineDesc {
    int int_units;
    int fp_units;
    int mem_units;
    int branch_units;
    int issue_width;
    int reg_count;
    int dispatch_buffer;
    int completion_buffer;

    MachineDesc() {
        int_units = 1;
        fp_units = 1;
        mem_units = 1;
        branch_units = 1;
        issue_width = 4;
        reg_count = REG_COUNT;
        dispatch_buffer = 8;
        completion_buffer = 16;
    }

    int unit_total() {
        return int_units + fp_units + mem_units + branch_units;
    }
};

struct SchedStats {
    int total_cycles;
    int total_insns;
    int stalls;
    int blocks;

    SchedStats() : total_cycles(0), total_insns(0), stalls(0), blocks(0) { }
};

// Unreachable trace dumper: the only reader of the profiling fields.
void dump_trace(BasicBlock* bb) {
    for (int i = 0; i < bb->insn_count; i++) {
        print_int(bb->insns[i]->profile_weight);
        print_int(bb->insns[i]->trace_tag);
    }
}

int lcg(int x) {
    return (x * 1103515245 + 12345) & 1048575;
}

void add_edge(BasicBlock* bb, Insn* from, Insn* to) {
    bb->edges = new DepEdge(from, to, bb->edges);
    to->dep_count = to->dep_count + 1;
}

void build_block(BasicBlock* bb, OpcodeInfo** optab, int seed) {
    int r = seed;
    for (int i = 0; i < INSNS_PER_BLOCK; i++) {
        r = lcg(r);
        int op = r % OPCODE_COUNT;
        int dest = (r >> 3) % REG_COUNT;
        int s1 = (r >> 7) % REG_COUNT;
        int s2 = (r >> 11) % REG_COUNT;
        if (optab[op]->commutative != 0 && s1 > s2) {
            int tmp = s1;
            s1 = s2;
            s2 = tmp;
        }
        bb->insns[i] = new Insn(optab[op], dest, s1, s2, bb->block_id * 100 + i);
        bb->insn_count = bb->insn_count + 1;
    }
    RegState* regs[16];
    for (int i = 0; i < REG_COUNT; i++) {
        regs[i] = new RegState();
    }
    Insn* last_mem = nullptr;
    for (int i = 0; i < bb->insn_count; i++) {
        Insn* in = bb->insns[i];
        if (regs[in->src1]->last_writer != nullptr) {
            add_edge(bb, regs[in->src1]->last_writer, in);
        }
        if (regs[in->src2]->last_writer != nullptr && in->src2 != in->src1) {
            add_edge(bb, regs[in->src2]->last_writer, in);
        }
        regs[in->src1]->last_reader = in;
        regs[in->src1]->read_cycle = i;
        regs[in->src2]->last_reader = in;
        regs[in->src2]->read_cycle = i;
        if (in->is_mem != 0) {
            if (last_mem != nullptr) {
                add_edge(bb, last_mem, in);
            }
            last_mem = in;
        }
        // Output dependence: a later write to the same register must wait
        // for the earlier reader (anti dependence, simplified).
        if (regs[in->dest]->last_reader != nullptr
            && regs[in->dest]->last_reader != in
            && regs[in->dest]->read_cycle < i
            && regs[in->dest]->write_cycle <= regs[in->dest]->read_cycle) {
            add_edge(bb, regs[in->dest]->last_reader, in);
        }
        if (optab[in->opcode]->writes_dest != 0) {
            regs[in->dest]->last_writer = in;
            regs[in->dest]->write_cycle = i;
        }
    }
}

void schedule_block(BasicBlock* bb, FuncUnit** units, SchedStats* stats) {
    int cycle = 0;
    int issued_total = 0;
    while (issued_total < bb->insn_count) {
        bool issued_this_cycle = false;
        for (int i = 0; i < bb->insn_count; i++) {
            Insn* in = bb->insns[i];
            if (in->issued_cycle >= 0 || in->dep_count > 0 || in->ready_cycle > cycle) {
                continue;
            }
            for (int u = 0; u < UNIT_COUNT; u++) {
                if (units[u]->unit_class == in->unit_class && units[u]->busy_until <= cycle) {
                    in->issued_cycle = cycle;
                    units[u]->busy_until = cycle + 1;
                    units[u]->issued = units[u]->issued + 1;
                    issued_total = issued_total + 1;
                    issued_this_cycle = true;
                    // Wake successors.
                    DepEdge* e = bb->edges;
                    while (e != nullptr) {
                        if (e->from == in) {
                            e->to->dep_count = e->to->dep_count - 1;
                            int done = cycle + in->latency;
                            if (done > e->to->ready_cycle) {
                                e->to->ready_cycle = done;
                            }
                        }
                        e = e->next;
                    }
                    break;
                }
            }
        }
        if (!issued_this_cycle) {
            stats->stalls = stats->stalls + 1;
        }
        cycle = cycle + 1;
    }
    bb->schedule_len = cycle;
    stats->total_cycles = stats->total_cycles + cycle;
    stats->total_insns = stats->total_insns + bb->insn_count;
    stats->blocks = stats->blocks + 1;
}

int main() {
    MachineDesc* machine = new MachineDesc();
    OpcodeInfo* optab[6];
    for (int op = 0; op < OPCODE_COUNT; op++) {
        optab[op] = new OpcodeInfo(op);
    }
    FuncUnit* units[4];
    for (int u = 0; u < machine->unit_total(); u++) {
        units[u] = new FuncUnit(u);
    }
    SchedStats* stats = new SchedStats();
    BlockSummary* summaries = nullptr;

    int checksum = 0;
    for (int b = 0; b < BLOCK_COUNT; b++) {
        BasicBlock* bb = new BasicBlock(b);
        build_block(bb, optab, b * 7919 + 13);
        schedule_block(bb, units, stats);
        summaries = new BlockSummary(b, bb->insn_count, bb->schedule_len, summaries);
        checksum = checksum + bb->schedule_len * (b + 1) + bb->insns[0]->ready_cycle;
        // Blocks and instructions are retained (the scheduler keeps the
        // whole routine in memory), so the HWM equals total space.
    }

    int ilp_sum = 0;
    BlockSummary* s = summaries;
    while (s != nullptr) {
        ilp_sum = ilp_sum + s->ilp_x100 + s->block_id % 3 + s->insns % 5 + s->cycles % 7;
        s = s->next;
    }

    print_str("sched: blocks=");
    print_int(stats->blocks);
    print_str("sched: insns=");
    print_int(stats->total_insns);
    print_str("sched: cycles=");
    print_int(stats->total_cycles);
    print_str("sched: stalls=");
    print_int(stats->stalls);
    print_str("sched: ilp_sum=");
    print_int(ilp_sum);
    print_str("sched: machine=");
    print_int(machine->issue_width * 1000 + machine->reg_count * 10
        + machine->dispatch_buffer / 8 + machine->completion_buffer / 16);
    print_str("sched: checksum=");
    print_int(checksum);
    return 0;
}
