// ixx -- IDL-to-C++ translator stand-in (the Fresco/X Consortium tool).
// Reads a synthetic interface description, builds signature objects,
// and emits C++ stub and skeleton text as rolling checksums. Signature
// objects for each interface are freed once both its stub and skeleton
// are generated, while the string-pool and interface summaries persist,
// so the high-water mark lands near half of total object space (the
// paper: 299,516 of 551,160 ≈ 54%). Dead members are mangled-name
// caches whose reader — a binary-compatibility checker — never shipped.

enum IxxParams {
    IFACE_COUNT = 26,
    METHODS_PER_IFACE = 7,
    ARGS_PER_METHOD = 3
};

class PoolString {
public:
    int hash;
    int length;
    PoolString* next;

    PoolString(int h, int len, PoolString* n) : hash(h), length(len), next(n) { }
};

class StringPool {
public:
    PoolString* head;
    int count;
    int hits;

    StringPool() : head(nullptr), count(0), hits(0) { }

    PoolString* intern(int hash, int len) {
        PoolString* s = head;
        while (s != nullptr) {
            if (s->hash == hash && s->length == len) {
                hits = hits + 1;
                return s;
            }
            s = s->next;
        }
        head = new PoolString(hash, len, head);
        count = count + 1;
        return head;
    }
};

class ArgSig {
public:
    PoolString* type_name;
    int direction;
    ArgSig* next;

    ArgSig(PoolString* t, int dir, ArgSig* n) : type_name(t), direction(dir), next(n) { }
};

class MethodSig {
public:
    PoolString* name;
    PoolString* result_type;
    ArgSig* args;
    int arg_count;
    int mangle_cache;  // dead: read only by the ABI checker, never shipped
    MethodSig* next;

    MethodSig(PoolString* n, PoolString* r, MethodSig* nx)
        : name(n), result_type(r), args(nullptr), arg_count(0), mangle_cache(0), next(nx) {
        mangle_cache = n->hash * 31 + r->hash;
    }

    void add_arg(ArgSig* a) {
        args = a;
        arg_count = arg_count + 1;
    }
};

class InterfaceSummary {
public:
    PoolString* name;
    int method_count;
    int stub_bytes;
    int skel_bytes;
    int compat_flags;  // dead: written at creation, read only by the ABI checker
    InterfaceSummary* next;

    InterfaceSummary(PoolString* n, int mc, int sb, int kb, InterfaceSummary* nx)
        : name(n), method_count(mc), stub_bytes(sb), skel_bytes(kb), compat_flags(0), next(nx) {
        compat_flags = sb * 2 + kb;
    }

    // Unused ABI-compatibility summary.
    int abi_flags() {
        return compat_flags;
    }
};

class RetainedIface {
public:
    PoolString* name;
    MethodSig* methods;
    RetainedIface* next;

    RetainedIface(PoolString* n, MethodSig* m, RetainedIface* nx) : name(n), methods(m), next(nx) { }
};

class TextSink {
public:
    int checksum;
    int bytes;

    TextSink() : checksum(0), bytes(0) { }

    void put(int token) {
        checksum = (checksum * 131 + token) & 16777215;
        bytes = bytes + 1;
    }
};

class StubGen {
public:
    TextSink* out;
    int stubs_emitted;

    StubGen(TextSink* o) : out(o), stubs_emitted(0) { }

    int emit(PoolString* iface_name, MethodSig* methods) {
        int before = out->bytes;
        out->put(iface_name->hash);
        MethodSig* m = methods;
        while (m != nullptr) {
            out->put(m->name->hash + m->result_type->hash);
            ArgSig* a = m->args;
            while (a != nullptr) {
                out->put(a->type_name->hash * 3 + a->direction);
                a = a->next;
            }
            m = m->next;
        }
        stubs_emitted = stubs_emitted + 1;
        return out->bytes - before;
    }
};

class SkelGen {
public:
    TextSink* out;
    int skels_emitted;

    SkelGen(TextSink* o) : out(o), skels_emitted(0) { }

    int emit(PoolString* iface_name, MethodSig* methods) {
        int before = out->bytes;
        out->put(iface_name->hash * 2);
        MethodSig* m = methods;
        while (m != nullptr) {
            out->put(m->name->hash * 5 + m->arg_count);
            m = m->next;
        }
        skels_emitted = skels_emitted + 1;
        return out->bytes - before;
    }
};

// Unused binary-compatibility checker: the only reader of mangle caches.
int abi_fingerprint(MethodSig* methods) {
    int fp = 0;
    MethodSig* m = methods;
    while (m != nullptr) {
        fp = fp * 17 + m->mangle_cache;
        m = m->next;
    }
    return fp;
}

int main() {
    StringPool* pool = new StringPool();
    TextSink* sink = new TextSink();
    StubGen* stubs = new StubGen(sink);
    SkelGen* skels = new SkelGen(sink);
    InterfaceSummary* summaries = nullptr;
    RetainedIface* retained = nullptr;

    int seed = 777;
    for (int i = 0; i < IFACE_COUNT; i++) {
        seed = (seed * 1103515245 + 12345) & 1048575;
        PoolString* iface_name = pool->intern(1000 + i, 8 + i % 5);

        // Build the signature graph for this interface.
        MethodSig* methods = nullptr;
        for (int mnum = 0; mnum < METHODS_PER_IFACE; mnum++) {
            seed = (seed * 1103515245 + 12345) & 1048575;
            PoolString* mname = pool->intern(seed % 211, 5 + seed % 7);
            PoolString* rtype = pool->intern(seed % 13, 3 + seed % 4);
            methods = new MethodSig(mname, rtype, methods);
            for (int anum = 0; anum < ARGS_PER_METHOD; anum++) {
                seed = (seed * 1103515245 + 12345) & 1048575;
                PoolString* tname = pool->intern(seed % 17, 3 + seed % 5);
                methods->add_arg(new ArgSig(tname, anum % 3, methods->args));
            }
        }

        int stub_bytes = stubs->emit(iface_name, methods);
        int skel_bytes = skels->emit(iface_name, methods);
        summaries = new InterfaceSummary(iface_name, METHODS_PER_IFACE, stub_bytes, skel_bytes, summaries);

        if (i % 2 == 0) {
            // Interfaces marked for inlining keep their signatures for the
            // final cross-reference pass.
            retained = new RetainedIface(iface_name, methods, retained);
        } else {
            // Other signatures are freed once both sides are emitted.
            MethodSig* m = methods;
            while (m != nullptr) {
                ArgSig* a = m->args;
                while (a != nullptr) {
                    ArgSig* dead_arg = a;
                    a = a->next;
                    delete dead_arg;
                }
                MethodSig* dead_method = m;
                m = m->next;
                delete dead_method;
            }
        }
    }

    // Cross-reference pass over the retained signature graphs.
    int xref = 0;
    RetainedIface* r = retained;
    while (r != nullptr) {
        MethodSig* m = r->methods;
        while (m != nullptr) {
            ArgSig* a = m->args;
            while (a != nullptr) {
                xref = (xref * 7 + a->type_name->hash + a->direction) & 16777215;
                a = a->next;
            }
            xref = (xref + m->name->hash + m->arg_count + r->name->length) & 16777215;
            m = m->next;
        }
        r = r->next;
    }

    int summary_checksum = 0;
    InterfaceSummary* s = summaries;
    while (s != nullptr) {
        summary_checksum = (summary_checksum * 29 + s->name->hash + s->stub_bytes * 3 + s->skel_bytes * 5 + s->method_count) & 16777215;
        s = s->next;
    }

    print_str("ixx: interfaces=");
    print_int(IFACE_COUNT);
    print_str("ixx: pooled=");
    print_int(pool->count);
    print_str("ixx: pool_hits=");
    print_int(pool->hits);
    print_str("ixx: stubs=");
    print_int(stubs->stubs_emitted);
    print_str("ixx: skels=");
    print_int(skels->skels_emitted);
    print_str("ixx: bytes=");
    print_int(sink->bytes);
    print_str("ixx: xref=");
    print_int(xref);
    print_str("ixx: checksum=");
    print_int(summary_checksum);
    return 0;
}
