// deltablue -- incremental dataflow constraint solver.
// Faithful adaptation of the classic DeltaBlue benchmark (Freeman-Benson
// & Maloney; the Smalltalk/JS benchmark lineage) to the analysed C++
// subset, including the chain and projection tests. The paper's Table 1
// lists deltablue at 1,250 lines, 10 classes, 23 data members, with zero
// dead data members.

enum Strength {
    REQUIRED = 0,
    STRONG_PREFERRED = 1,
    PREFERRED = 2,
    STRONG_DEFAULT = 3,
    NORMAL = 4,
    WEAK_DEFAULT = 5,
    WEAKEST = 6
};

enum Direction {
    BACKWARD = 0,
    NONE = 1,
    FORWARD = 2
};

bool stronger(int s1, int s2) { return s1 < s2; }
bool weaker(int s1, int s2) { return s1 > s2; }
int weakest_of(int s1, int s2) { if (weaker(s1, s2)) { return s1; } return s2; }
int next_weaker(int s) { return s + 1; }

int error_count = 0;

class Constraint;
class Variable;
class Planner;

Planner* planner = nullptr;

class ConstraintList {
public:
    Constraint** items;
    int size;
    int capacity;

    ConstraintList() : size(0), capacity(8) {
        items = new Constraint*[8];
    }

    ~ConstraintList() {
        delete[] items;
    }

    void push(Constraint* c) {
        if (size == capacity) {
            int bigger = capacity * 2;
            Constraint** grown = new Constraint*[bigger];
            for (int i = 0; i < size; i++) {
                grown[i] = items[i];
            }
            delete[] items;
            items = grown;
            capacity = bigger;
        }
        items[size] = c;
        size = size + 1;
    }

    Constraint* removeFirst() {
        Constraint* head = items[0];
        size = size - 1;
        for (int i = 0; i < size; i++) {
            items[i] = items[i + 1];
        }
        return head;
    }

    void removeItem(Constraint* c) {
        int out = 0;
        for (int i = 0; i < size; i++) {
            if (items[i] != c) {
                items[out] = items[i];
                out = out + 1;
            }
        }
        size = out;
    }

    bool isEmpty() { return size == 0; }
};

class VariableList {
public:
    Variable** items;
    int size;
    int capacity;

    VariableList() : size(0), capacity(8) {
        items = new Variable*[8];
    }

    ~VariableList() {
        delete[] items;
    }

    void push(Variable* v) {
        if (size == capacity) {
            int bigger = capacity * 2;
            Variable** grown = new Variable*[bigger];
            for (int i = 0; i < size; i++) {
                grown[i] = items[i];
            }
            delete[] items;
            items = grown;
            capacity = bigger;
        }
        items[size] = v;
        size = size + 1;
    }

    Variable* removeFirst() {
        Variable* head = items[0];
        size = size - 1;
        for (int i = 0; i < size; i++) {
            items[i] = items[i + 1];
        }
        return head;
    }

    bool isEmpty() { return size == 0; }
};

class Variable {
public:
    int value;
    ConstraintList* constraints;
    Constraint* determinedBy;
    int mark;
    int walkStrength;
    bool stay;
    int id;

    Variable(int vid, int initial) : value(initial), determinedBy(nullptr), mark(0),
                                     walkStrength(WEAKEST), stay(true), id(vid) {
        constraints = new ConstraintList();
    }

    void addConstraint(Constraint* c) { constraints->push(c); }
    void removeConstraint(Constraint* c) { constraints->removeItem(c); }
};

void fail(int code, Variable* v) {
    print_str("deltablue: check failed ");
    print_int(code);
    print_int(v->id);
    error_count = error_count + 1;
}

class Constraint {
public:
    int strength;

    Constraint(int s) : strength(s) { }

    virtual void addToGraph() = 0;
    virtual void removeFromGraph() = 0;
    virtual void chooseMethod(int mark) = 0;
    virtual bool isSatisfied() = 0;
    virtual void markInputs(int mark) = 0;
    virtual bool inputsKnown(int mark) = 0;
    virtual Variable* output() = 0;
    virtual void execute() = 0;
    virtual void recalculate() = 0;
    virtual void markUnsatisfied() = 0;
    virtual bool isInput() { return false; }

    Constraint* satisfy(int mark) {
        chooseMethod(mark);
        if (!isSatisfied()) {
            if (strength == REQUIRED) {
                print_str("deltablue: could not satisfy a required constraint\n");
                error_count = error_count + 1;
            }
            return nullptr;
        }
        markInputs(mark);
        Variable* out = output();
        Constraint* overridden = out->determinedBy;
        if (overridden != nullptr) {
            overridden->markUnsatisfied();
        }
        out->determinedBy = this;
        if (!planner->addPropagate(this, mark)) {
            print_str("deltablue: cycle encountered\n");
            error_count = error_count + 1;
        }
        out->mark = mark;
        return overridden;
    }

    void addConstraint() {
        addToGraph();
        planner->incrementalAdd(this);
    }

    void destroyConstraint() {
        if (isSatisfied()) {
            planner->incrementalRemove(this);
        } else {
            removeFromGraph();
        }
    }
};

class Planner {
public:
    int currentMark;

    Planner() : currentMark(0) { }

    int newMark() {
        currentMark = currentMark + 1;
        return currentMark;
    }

    void addConstraintsConsumingTo(Variable* v, ConstraintList* coll) {
        Constraint* determining = v->determinedBy;
        ConstraintList* cc = v->constraints;
        for (int i = 0; i < cc->size; i++) {
            Constraint* c = cc->items[i];
            if (c != determining && c->isSatisfied()) {
                coll->push(c);
            }
        }
    }

    bool addPropagate(Constraint* c, int mark) {
        ConstraintList* todo = new ConstraintList();
        todo->push(c);
        while (!todo->isEmpty()) {
            Constraint* d = todo->removeFirst();
            if (d->output()->mark == mark) {
                incrementalRemove(c);
                delete todo;
                return false;
            }
            d->recalculate();
            addConstraintsConsumingTo(d->output(), todo);
        }
        delete todo;
        return true;
    }

    void incrementalAdd(Constraint* c) {
        int mark = newMark();
        Constraint* overridden = c->satisfy(mark);
        while (overridden != nullptr) {
            overridden = overridden->satisfy(mark);
        }
    }

    ConstraintList* removePropagateFrom(Variable* out) {
        ConstraintList* unsatisfied = new ConstraintList();
        out->determinedBy = nullptr;
        out->walkStrength = WEAKEST;
        out->stay = true;
        VariableList* todo = new VariableList();
        todo->push(out);
        while (!todo->isEmpty()) {
            Variable* v = todo->removeFirst();
            ConstraintList* cc = v->constraints;
            for (int i = 0; i < cc->size; i++) {
                Constraint* c = cc->items[i];
                if (!c->isSatisfied()) {
                    unsatisfied->push(c);
                }
            }
            Constraint* determining = v->determinedBy;
            for (int i = 0; i < cc->size; i++) {
                Constraint* c = cc->items[i];
                if (c != determining && c->isSatisfied()) {
                    c->recalculate();
                    todo->push(c->output());
                }
            }
        }
        delete todo;
        return unsatisfied;
    }

    void incrementalRemove(Constraint* c) {
        Variable* out = c->output();
        c->markUnsatisfied();
        c->removeFromGraph();
        ConstraintList* unsatisfied = removePropagateFrom(out);
        int strength = REQUIRED;
        while (true) {
            for (int i = 0; i < unsatisfied->size; i++) {
                Constraint* u = unsatisfied->items[i];
                if (u->strength == strength) {
                    incrementalAdd(u);
                }
            }
            if (strength == WEAKEST) {
                break;
            }
            strength = next_weaker(strength);
        }
        delete unsatisfied;
    }
};

class UnaryConstraint : public Constraint {
public:
    Variable* myOutput;
    bool satisfied;

    UnaryConstraint(Variable* v, int s) : Constraint(s), myOutput(v), satisfied(false) { }

    virtual void addToGraph() {
        myOutput->addConstraint(this);
        satisfied = false;
    }

    virtual void chooseMethod(int mark) {
        satisfied = myOutput->mark != mark && stronger(strength, myOutput->walkStrength);
    }

    virtual bool isSatisfied() { return satisfied; }
    virtual void markInputs(int mark) { }
    virtual bool inputsKnown(int mark) { return true; }
    virtual Variable* output() { return myOutput; }

    virtual void recalculate() {
        myOutput->walkStrength = strength;
        myOutput->stay = !isInput();
        if (myOutput->stay) {
            execute();
        }
    }

    virtual void markUnsatisfied() { satisfied = false; }

    virtual void removeFromGraph() {
        if (myOutput != nullptr) {
            myOutput->removeConstraint(this);
        }
        satisfied = false;
    }
};

class StayConstraint : public UnaryConstraint {
public:
    StayConstraint(Variable* v, int s) : UnaryConstraint(v, s) { }
    virtual void execute() { }
};

class EditConstraint : public UnaryConstraint {
public:
    EditConstraint(Variable* v, int s) : UnaryConstraint(v, s) { }
    virtual bool isInput() { return true; }
    virtual void execute() { }
};

class BinaryConstraint : public Constraint {
public:
    Variable* v1;
    Variable* v2;
    int direction;

    BinaryConstraint(Variable* a, Variable* b, int s) : Constraint(s), v1(a), v2(b), direction(NONE) { }

    virtual void chooseMethod(int mark) {
        if (v1->mark == mark) {
            if (v2->mark != mark && stronger(strength, v2->walkStrength)) {
                direction = FORWARD;
            } else {
                direction = NONE;
            }
            return;
        }
        if (v2->mark == mark) {
            if (v1->mark != mark && stronger(strength, v1->walkStrength)) {
                direction = BACKWARD;
            } else {
                direction = NONE;
            }
            return;
        }
        if (weaker(v1->walkStrength, v2->walkStrength)) {
            if (stronger(strength, v1->walkStrength)) {
                direction = BACKWARD;
            } else {
                direction = NONE;
            }
        } else {
            if (stronger(strength, v2->walkStrength)) {
                direction = FORWARD;
            } else {
                direction = NONE;
            }
        }
    }

    virtual void addToGraph() {
        v1->addConstraint(this);
        v2->addConstraint(this);
        direction = NONE;
    }

    virtual bool isSatisfied() { return direction != NONE; }

    virtual void markInputs(int mark) {
        input()->mark = mark;
    }

    Variable* input() {
        if (direction == FORWARD) {
            return v1;
        }
        return v2;
    }

    virtual Variable* output() {
        if (direction == FORWARD) {
            return v2;
        }
        return v1;
    }

    virtual bool inputsKnown(int mark) {
        Variable* i = input();
        return i->mark == mark || i->stay || i->determinedBy == nullptr;
    }

    virtual void recalculate() {
        Variable* ihn = input();
        Variable* out = output();
        out->walkStrength = weakest_of(strength, ihn->walkStrength);
        out->stay = ihn->stay;
        if (out->stay) {
            execute();
        }
    }

    virtual void markUnsatisfied() { direction = NONE; }

    virtual void removeFromGraph() {
        if (v1 != nullptr) {
            v1->removeConstraint(this);
        }
        if (v2 != nullptr) {
            v2->removeConstraint(this);
        }
        direction = NONE;
    }
};

class EqualityConstraint : public BinaryConstraint {
public:
    EqualityConstraint(Variable* a, Variable* b, int s) : BinaryConstraint(a, b, s) { }
    virtual void execute() {
        output()->value = input()->value;
    }
};

class ScaleConstraint : public BinaryConstraint {
public:
    Variable* scale;
    Variable* offset;

    ScaleConstraint(Variable* src, Variable* sc, Variable* off, Variable* dest, int s)
        : BinaryConstraint(src, dest, s), scale(sc), offset(off) { }

    virtual void addToGraph() {
        v1->addConstraint(this);
        v2->addConstraint(this);
        scale->addConstraint(this);
        offset->addConstraint(this);
        direction = NONE;
    }

    virtual void removeFromGraph() {
        if (v1 != nullptr) { v1->removeConstraint(this); }
        if (v2 != nullptr) { v2->removeConstraint(this); }
        if (scale != nullptr) { scale->removeConstraint(this); }
        if (offset != nullptr) { offset->removeConstraint(this); }
        direction = NONE;
    }

    virtual void markInputs(int mark) {
        input()->mark = mark;
        scale->mark = mark;
        offset->mark = mark;
    }

    virtual void execute() {
        if (direction == FORWARD) {
            v2->value = v1->value * scale->value + offset->value;
        } else {
            v1->value = (v2->value - offset->value) / scale->value;
        }
    }

    virtual void recalculate() {
        Variable* ihn = input();
        Variable* out = output();
        out->walkStrength = weakest_of(strength, ihn->walkStrength);
        out->stay = ihn->stay && scale->stay && offset->stay;
        if (out->stay) {
            execute();
        }
    }
};

class Plan {
public:
    ConstraintList* list;

    Plan() {
        list = new ConstraintList();
    }

    ~Plan() {
        delete list;
    }

    void addConstraint(Constraint* c) { list->push(c); }

    void execute() {
        for (int i = 0; i < list->size; i++) {
            list->items[i]->execute();
        }
    }
};

Plan* makePlan(ConstraintList* sources) {
    int mark = planner->newMark();
    Plan* plan = new Plan();
    ConstraintList* todo = sources;
    while (!todo->isEmpty()) {
        Constraint* c = todo->removeFirst();
        if (c->output()->mark != mark && c->inputsKnown(mark)) {
            plan->addConstraint(c);
            c->output()->mark = mark;
            planner->addConstraintsConsumingTo(c->output(), todo);
        }
    }
    return plan;
}

Plan* extractPlanFromConstraints(ConstraintList* constraints) {
    ConstraintList* sources = new ConstraintList();
    for (int i = 0; i < constraints->size; i++) {
        Constraint* c = constraints->items[i];
        if (c->isInput() && c->isSatisfied()) {
            sources->push(c);
        }
    }
    Plan* plan = makePlan(sources);
    delete sources;
    return plan;
}

void change(Variable* v, int newValue) {
    EditConstraint* edit = new EditConstraint(v, PREFERRED);
    edit->addConstraint();
    ConstraintList* editList = new ConstraintList();
    editList->push(edit);
    Plan* plan = extractPlanFromConstraints(editList);
    for (int i = 0; i < 10; i++) {
        v->value = newValue;
        plan->execute();
    }
    edit->destroyConstraint();
    delete edit;
    delete plan;
    delete editList;
}

void chainTest(int n) {
    planner = new Planner();
    Variable* prev = nullptr;
    Variable* first = nullptr;
    Variable* last = nullptr;
    for (int i = 0; i <= n; i++) {
        Variable* v = new Variable(i, 0);
        if (prev != nullptr) {
            EqualityConstraint* eq = new EqualityConstraint(prev, v, REQUIRED);
            eq->addConstraint();
        }
        if (i == 0) { first = v; }
        if (i == n) { last = v; }
        prev = v;
    }
    StayConstraint* stay = new StayConstraint(last, STRONG_DEFAULT);
    stay->addConstraint();
    EditConstraint* edit = new EditConstraint(first, PREFERRED);
    edit->addConstraint();
    ConstraintList* editList = new ConstraintList();
    editList->push(edit);
    Plan* plan = extractPlanFromConstraints(editList);
    for (int i = 0; i < 50; i++) {
        first->value = i;
        plan->execute();
        if (last->value != i) {
            fail(1, last);
        }
    }
    edit->destroyConstraint();
    delete plan;
    delete editList;
    delete planner;
    planner = nullptr;
}

void projectionTest(int n) {
    planner = new Planner();
    Variable* scale = new Variable(9001, 10);
    Variable* offset = new Variable(9002, 1000);
    Variable* src = nullptr;
    Variable* dst = nullptr;
    VariableList* dests = new VariableList();
    for (int i = 0; i < n; i++) {
        src = new Variable(2000 + i, i);
        dst = new Variable(3000 + i, i);
        dests->push(dst);
        StayConstraint* stay = new StayConstraint(src, NORMAL);
        stay->addConstraint();
        ScaleConstraint* sc = new ScaleConstraint(src, scale, offset, dst, REQUIRED);
        sc->addConstraint();
    }
    change(src, 17);
    if (dst->value != 1170) {
        fail(2, dst);
    }
    change(dst, 1050);
    if (src->value != 5) {
        fail(3, src);
    }
    change(scale, 5);
    for (int i = 0; i < n - 1; i++) {
        if (dests->items[i]->value != i * 5 + 1000) {
            fail(4, dests->items[i]);
        }
    }
    change(offset, 2000);
    for (int i = 0; i < n - 1; i++) {
        if (dests->items[i]->value != i * 5 + 2000) {
            fail(5, dests->items[i]);
        }
    }
    delete dests;
    delete planner;
    planner = nullptr;
}

int main() {
    chainTest(40);
    projectionTest(40);
    if (error_count == 0) {
        print_str("deltablue: OK\n");
        return 0;
    }
    print_str("deltablue: FAILED\n");
    return error_count;
}
