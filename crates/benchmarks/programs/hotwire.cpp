// hotwire -- scriptable graphical presentation builder stand-in.
// Builds a deck of slides full of shapes from a small script, lays the
// shapes out, and "renders" them to a checksum canvas. The drawing
// library carries animation, styling, and export features the
// application never invokes; the members only those features read are
// dead. Everything is allocated and held until exit, so the high-water
// mark equals total object space — the paper measured hotwire at
// 10,780 total bytes with an identical high-water mark and 284 dead
// bytes (2.6%).

enum HotwireParams {
    SLIDE_COUNT = 12,
    SHAPES_PER_SLIDE = 12,
    CANVAS_W = 640,
    CANVAS_H = 480
};

// ----------------------------------------------------------- draw library

class Style {
public:
    int color;
    int line_width;
    int fill_pattern;  // dead: patterned fills never enabled by the app
    int shadow_depth;  // dead: read only by render_fancy(), never called
    int gradient_to;   // dead: read only by render_fancy(), never called

    Style(int c, int w) : color(c), line_width(w), fill_pattern(0), shadow_depth(2), gradient_to(0) { }

    // Unused library functionality.
    int render_fancy() {
        return fill_pattern + shadow_depth * 3 + gradient_to;
    }
};

class Canvas {
public:
    int width;
    int height;
    int checksum;
    int ops;

    Canvas(int w, int h) : width(w), height(h), checksum(0), ops(0) { }

    void mark(int x, int y, int color) {
        int cx = x % width;
        int cy = y % height;
        if (cx < 0) { cx = cx + width; }
        if (cy < 0) { cy = cy + height; }
        checksum = (checksum * 31 + cx * 7 + cy * 13 + color) & 16777215;
        ops = ops + 1;
    }
};

class Shape {
public:
    int x;
    int y;
    Style* style;
    int anim_phase;

    Shape(int px, int py, Style* s) : x(px), y(py), style(s), anim_phase(0) { }

    virtual void draw(Canvas* canvas) = 0;
    virtual int area() = 0;

    void moveBy(int dx, int dy) {
        x = x + dx;
        y = y + dy;
        anim_phase = dx + dy;
    }

    // Unused library functionality.
    virtual int animate(int tick) {
        return anim_phase * tick;
    }
};

class BoxShape : public Shape {
public:
    int w;
    int h;

    BoxShape(int px, int py, int pw, int ph, Style* s) : Shape(px, py, s), w(pw), h(ph) { }

    virtual void draw(Canvas* canvas) {
        canvas->mark(x + anim_phase, y, style->color);
        canvas->mark(x + w, y + h, style->color + style->line_width);
    }

    virtual int area() { return w * h; }
};

class LineShape : public Shape {
public:
    int x2;
    int y2;
    int arrow_kind;

    LineShape(int px, int py, int qx, int qy, Style* s)
        : Shape(px, py, s), x2(qx), y2(qy), arrow_kind(1) { }

    virtual void draw(Canvas* canvas) {
        canvas->mark(x, y, style->color + arrow_kind);
        canvas->mark(x2 + anim_phase, y2, style->color);
    }

    virtual int area() {
        int dx = x2 - x;
        int dy = y2 - y;
        return dx * dx + dy * dy;
    }

    // Unused library functionality.
    void draw_arrow(Canvas* canvas) {
        canvas->mark(x2 + arrow_kind, y2 + arrow_kind, style->color);
    }
};

class TextShape : public Shape {
public:
    int glyph_count;
    int font_id;
    int kerning;

    TextShape(int px, int py, int glyphs, int font, Style* s)
        : Shape(px, py, s), glyph_count(glyphs), font_id(font), kerning(1) { }

    virtual void draw(Canvas* canvas) {
        for (int i = 0; i < glyph_count; i++) {
            canvas->mark(x + i * (8 + kerning), y, style->color + font_id);
        }
    }

    virtual int area() { return glyph_count * 8 * 12; }

    // Unused library functionality.
    int export_pdf() {
        return kerning * glyph_count;
    }
};

// ------------------------------------------------------------- application

class Slide {
public:
    Shape* shapes[12];
    int shape_count;
    int title_hash;
    int transition;   // dead: slide transitions never played
    int duration_ms;  // dead: read only by play(), never called

    Slide(int title) : shape_count(0), title_hash(title * 2654435761), transition(1), duration_ms(5000) { }

    void add(Shape* s) {
        shapes[shape_count] = s;
        shape_count = shape_count + 1;
    }

    void render(Canvas* canvas) {
        for (int i = 0; i < shape_count; i++) {
            shapes[i]->draw(canvas);
        }
        canvas->mark(title_hash % CANVAS_W, 0, title_hash % 255);
    }

    int total_area() {
        int total = 0;
        for (int i = 0; i < shape_count; i++) {
            total = total + shapes[i]->area();
        }
        return total;
    }

    // Unused library functionality.
    int play() {
        return transition * duration_ms;
    }
};

class Deck {
public:
    Slide* slides[12];
    int slide_count;
    int author_id;  // dead: metadata written at creation, only read by export_meta()

    Deck(int author) : slide_count(0), author_id(author) { }

    void add(Slide* s) {
        slides[slide_count] = s;
        slide_count = slide_count + 1;
    }

    // Unused library functionality.
    int export_meta() {
        return author_id;
    }
};

class ScriptOp {
public:
    int opcode;
    int arg1;
    int arg2;

    ScriptOp(int op, int a, int b) : opcode(op), arg1(a), arg2(b) { }
};

int main() {
    Deck* deck = new Deck(7);
    Style* heading = new Style(3, 2);
    Style* body = new Style(9, 1);

    for (int s = 0; s < SLIDE_COUNT; s++) {
        Slide* slide = new Slide(s + 1);
        for (int i = 0; i < SHAPES_PER_SLIDE; i++) {
            int kind = (s + i) % 3;
            if (kind == 0) {
                slide->add(new BoxShape(i * 20, s * 30, 40 + i, 25 + s, body));
            } else if (kind == 1) {
                slide->add(new LineShape(i * 10, s * 10, i * 10 + 50, s * 10 + 5, body));
            } else {
                slide->add(new TextShape(i * 15, s * 40, 6 + i, 2, heading));
            }
        }
        deck->add(slide);
    }

    // A tiny "script" nudges shapes around before rendering.
    ScriptOp* ops[4];
    ops[0] = new ScriptOp(1, 2, 3);
    ops[1] = new ScriptOp(1, -1, 4);
    ops[2] = new ScriptOp(1, 5, -2);
    ops[3] = new ScriptOp(1, 0, 1);
    for (int o = 0; o < 4; o++) {
        for (int s = 0; s < deck->slide_count; s++) {
            Slide* slide = deck->slides[s];
            for (int i = 0; i < slide->shape_count; i++) {
                if (ops[o]->opcode == 1) {
                    slide->shapes[i]->moveBy(ops[o]->arg1, ops[o]->arg2);
                }
            }
        }
    }

    Canvas* canvas = new Canvas(CANVAS_W, CANVAS_H);
    int area = 0;
    for (int s = 0; s < deck->slide_count; s++) {
        deck->slides[s]->render(canvas);
        area = area + deck->slides[s]->total_area();
    }

    print_str("hotwire: slides=");
    print_int(deck->slide_count);
    print_str("hotwire: ops=");
    print_int(canvas->ops);
    print_str("hotwire: area=");
    print_int(area);
    print_str("hotwire: checksum=");
    print_int(canvas->checksum);
    return 0;
}
