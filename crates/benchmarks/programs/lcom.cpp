// lcom -- compiler for the hardware description language "L" (stand-in).
// Elaborates a gate-level netlist from a seeded generator, levelizes
// it, and runs vector simulation. The netlist itself is retained for
// the whole run while per-vector work lists are freed, putting the
// high-water mark at a substantial fraction of total space (the paper:
// 1,652,828 of 2,274,956 ≈ 73%). The dead members are per-gate area
// and power estimates kept for a floorplanner that was never integrated
// — per-gate dead weight is what gives lcom the paper's second-largest
// dead object space (241,435 of 2,274,956 ≈ 10.6%).

enum LcomParams {
    INPUT_COUNT = 12,
    GATE_COUNT = 360,
    VECTOR_COUNT = 8
};

enum GateKind {
    GK_INPUT = 0,
    GK_AND = 1,
    GK_OR = 2,
    GK_NOT = 3,
    GK_XOR = 4
};

class Net {
public:
    int net_id;
    int value;
    int fanout;
    int last_change_vec;
    int cap_femto;  // dead: wire-load estimate, timing analyzer never integrated

    Net(int id) : net_id(id), value(0), fanout(0), last_change_vec(-1), cap_femto(0) {
        cap_femto = id * 3 + 20;
    }
};

class Gate {
public:
    Net* out;
    Net* in_a;
    Net* in_b;
    int level;
    int evals;
    int area_milli;   // dead: floorplanner estimate, reader never integrated

    Gate(Net* o, Net* a, Net* b) : out(o), in_a(a), in_b(b), level(0), evals(0), area_milli(0) { }

    virtual int eval() = 0;

    void propagate(int vec) {
        int v = eval();
        evals = evals + 1;
        if (v != out->value) {
            out->value = v;
            out->last_change_vec = vec;
        }
    }
};

class AndGate : public Gate {
public:
    AndGate(Net* o, Net* a, Net* b) : Gate(o, a, b) {
        area_milli = 1300;
    }
    virtual int eval() { return in_a->value & in_b->value; }
};

class OrGate : public Gate {
public:
    OrGate(Net* o, Net* a, Net* b) : Gate(o, a, b) {
        area_milli = 1200;
    }
    virtual int eval() { return in_a->value | in_b->value; }
};

class NotGate : public Gate {
public:
    NotGate(Net* o, Net* a) : Gate(o, a, a) {
        area_milli = 600;
    }
    virtual int eval() { return 1 - in_a->value; }
};

class XorGate : public Gate {
public:
    XorGate(Net* o, Net* a, Net* b) : Gate(o, a, b) {
        area_milli = 2100;
    }
    virtual int eval() { return in_a->value ^ in_b->value; }
};

class WorkItem {
public:
    Gate* gate;
    WorkItem* next;

    WorkItem(Gate* g, WorkItem* n) : gate(g), next(n) { }
};

class Netlist {
public:
    Net* nets[400];
    Gate* gates[360];
    int net_count;
    int gate_count;
    int max_level;

    Netlist() : net_count(0), gate_count(0), max_level(0) { }

    Net* new_net() {
        Net* n = new Net(net_count);
        nets[net_count] = n;
        net_count = net_count + 1;
        return n;
    }

    void add_gate(Gate* g) {
        gates[gate_count] = g;
        gate_count = gate_count + 1;
        g->in_a->fanout = g->in_a->fanout + 1;
        g->in_b->fanout = g->in_b->fanout + 1;
    }

    void levelize() {
        // Gates were created in topological order; levels follow inputs.
        for (int i = 0; i < gate_count; i++) {
            Gate* g = gates[i];
            int la = 0;
            int lb = 0;
            for (int j = 0; j < i; j++) {
                if (gates[j]->out == g->in_a && gates[j]->level + 1 > la) {
                    la = gates[j]->level + 1;
                }
                if (gates[j]->out == g->in_b && gates[j]->level + 1 > lb) {
                    lb = gates[j]->level + 1;
                }
            }
            if (la > lb) {
                g->level = la;
            } else {
                g->level = lb;
            }
            if (g->level > max_level) {
                max_level = g->level;
            }
        }
    }

    // Unused floorplanner hook: the only reader of the estimates.
    int floorplan_cost() {
        int total = 0;
        for (int i = 0; i < gate_count; i++) {
            total = total + gates[i]->area_milli;
        }
        for (int i = 0; i < net_count; i++) {
            total = total + nets[i]->cap_femto;
        }
        return total;
    }
};

int main() {
    Netlist* nl = new Netlist();
    Net* inputs[12];
    for (int i = 0; i < INPUT_COUNT; i++) {
        inputs[i] = nl->new_net();
    }

    int seed = 424243;
    for (int g = 0; g < GATE_COUNT; g++) {
        seed = (seed * 1103515245 + 12345) & 1048575;
        int kind = 1 + seed % 4;
        // Pick already-driven nets as inputs to stay acyclic.
        int na = seed % nl->net_count;
        int nb = (seed >> 5) % nl->net_count;
        Net* out = nl->new_net();
        if (kind == GK_AND) {
            nl->add_gate(new AndGate(out, nl->nets[na], nl->nets[nb]));
        } else if (kind == GK_OR) {
            nl->add_gate(new OrGate(out, nl->nets[na], nl->nets[nb]));
        } else if (kind == GK_NOT) {
            nl->add_gate(new NotGate(out, nl->nets[na]));
        } else {
            nl->add_gate(new XorGate(out, nl->nets[na], nl->nets[nb]));
        }
    }
    nl->levelize();

    int activity = 0;
    int checksum = 0;
    for (int vec = 0; vec < VECTOR_COUNT; vec++) {
        // Drive primary inputs from the vector index.
        for (int i = 0; i < INPUT_COUNT; i++) {
            inputs[i]->value = (vec >> (i % 5)) & 1;
        }
        // Build a per-vector work list (freed afterwards: transient space).
        WorkItem* work = nullptr;
        for (int i = 0; i < nl->gate_count; i++) {
            work = new WorkItem(nl->gates[i], work);
        }
        WorkItem* w = work;
        while (w != nullptr) {
            w->gate->propagate(vec);
            w = w->next;
        }
        // Evaluate once more in level order for stability, then free.
        for (int lvl = 0; lvl <= nl->max_level; lvl++) {
            for (int i = 0; i < nl->gate_count; i++) {
                if (nl->gates[i]->level == lvl) {
                    nl->gates[i]->propagate(vec);
                }
            }
        }
        w = work;
        while (w != nullptr) {
            WorkItem* dead_item = w;
            w = w->next;
            delete dead_item;
        }
        for (int i = 0; i < nl->net_count; i++) {
            if (nl->nets[i]->last_change_vec == vec) {
                activity = activity + 1;
            }
            checksum = (checksum * 31 + nl->nets[i]->value + nl->nets[i]->net_id % 3) & 16777215;
        }
    }

    int fanout_sum = 0;
    for (int i = 0; i < nl->net_count; i++) {
        fanout_sum = fanout_sum + nl->nets[i]->fanout;
    }
    int eval_sum = 0;
    for (int i = 0; i < nl->gate_count; i++) {
        eval_sum = eval_sum + nl->gates[i]->evals;
    }

    print_str("lcom: gates=");
    print_int(nl->gate_count);
    print_str("lcom: nets=");
    print_int(nl->net_count);
    print_str("lcom: max_level=");
    print_int(nl->max_level);
    print_str("lcom: activity=");
    print_int(activity);
    print_str("lcom: fanout=");
    print_int(fanout_sum);
    print_str("lcom: evals=");
    print_int(eval_sum);
    print_str("lcom: checksum=");
    print_int(checksum);
    return 0;
}
