// npic -- particle-in-cell plasma simulation stand-in. Each timestep
// injects particles, pushes them through the grid's field, deposits
// charge, and absorbs particles that leave the domain (freeing them),
// so total object space is several times the high-water mark (the
// paper: 115,248 total vs a 24,972-byte high-water mark). Dead members
// are diagnostic moments and boundary bookkeeping read only by an
// unused analysis report.

enum NpicParams {
    GRID_W = 8,
    GRID_H = 8,
    STEPS = 120,
    INJECT_PER_STEP = 12
};

class Particle {
public:
    int x_q16;
    int y_q16;
    int vx_q16;
    int vy_q16;
    int charge;
    char spin_tag;  // dead: written at injection, read only by dump_spins()
    Particle* next;

    Particle(int x, int y, int vx, int vy, int q)
        : x_q16(x), y_q16(y), vx_q16(vx), vy_q16(vy), charge(q), next(nullptr) {
        spin_tag = (char)(q + 2);
    }
};

// Unreachable spin diagnostic: the only reader of spin_tag.
int dump_spins(Particle* head) {
    int sum = 0;
    Particle* p = head;
    while (p != nullptr) {
        sum = sum + p->spin_tag;
        p = p->next;
    }
    return sum;
}

class Cell {
public:
    int ex_q16;
    int ey_q16;
    int rho;
    int visits;

    Cell() : ex_q16(0), ey_q16(0), rho(0), visits(0) { }
};

class Grid {
public:
    Cell* cells[64];
    int width;
    int height;
    int cell_count;

    Grid(int w, int h) : width(w), height(h), cell_count(w * h) {
        for (int i = 0; i < cell_count; i++) {
            cells[i] = new Cell();
        }
    }

    Cell* at(int cx, int cy) {
        int ix = cx % width;
        int iy = cy % height;
        if (ix < 0) { ix = ix + width; }
        if (iy < 0) { iy = iy + height; }
        return cells[iy * width + ix];
    }
};

class FieldSolver {
public:
    int iterations;
    int tolerance_q16;
    int last_residual;  // dead: read only by convergence_report(), never run

    FieldSolver() : iterations(2), tolerance_q16(64), last_residual(0) { }

    void solve(Grid* grid) {
        for (int it = 0; it < iterations; it++) {
            int residual = 0;
            for (int y = 0; y < grid->height; y++) {
                for (int x = 0; x < grid->width; x++) {
                    Cell* c = grid->at(x, y);
                    Cell* right = grid->at(x + 1, y);
                    Cell* down = grid->at(x, y + 1);
                    int new_ex = (right->rho - c->rho) * 3;
                    int new_ey = (down->rho - c->rho) * 3;
                    residual = residual + (new_ex - c->ex_q16) + (new_ey - c->ey_q16);
                    c->ex_q16 = new_ex;
                    c->ey_q16 = new_ey;
                }
            }
            last_residual = residual;
            if (residual < tolerance_q16 && residual > -tolerance_q16) {
                break;
            }
        }
    }

    // Unused diagnostics.
    int convergence_report() {
        return last_residual / iterations;
    }
};

class Diagnostics {
public:
    int pushed;
    int absorbed;
    int injected;
    int moment_x;    // dead: first moment, read only by full_report()
    int moment_y;    // dead: first moment, read only by full_report()

    Diagnostics() : pushed(0), absorbed(0), injected(0), moment_x(0), moment_y(0) { }

    void tally(Particle* p) {
        pushed = pushed + 1;
        moment_x = p->x_q16 * p->charge;
        moment_y = p->y_q16 * p->charge;
    }

    // Unused analysis report.
    void full_report() {
        print_int(moment_x);
        print_int(moment_y);
    }
};

class Plasma {
public:
    Grid* grid;
    FieldSolver* solver;
    Diagnostics* diag;
    Particle* head;
    int population;
    int peak_population;
    int seed;

    Plasma() : head(nullptr), population(0), peak_population(0), seed(20260707) {
        grid = new Grid(GRID_W, GRID_H);
        solver = new FieldSolver();
        diag = new Diagnostics();
    }

    int rand_q(int bound) {
        seed = (seed * 1103515245 + 12345) & 1048575;
        return seed % bound;
    }

    void inject(int count) {
        for (int i = 0; i < count; i++) {
            int x = rand_q(GRID_W * 65536);
            int y = rand_q(GRID_H * 65536);
            int vx = rand_q(524288) - 262144;
            int vy = rand_q(524288) - 262144;
            int q = 1;
            if (rand_q(2) == 0) {
                q = -1;
            }
            Particle* p = new Particle(x, y, vx, vy, q);
            p->next = head;
            head = p;
            population = population + 1;
            if (population > peak_population) {
                peak_population = population;
            }
            diag->injected = diag->injected + 1;
        }
    }

    void deposit() {
        for (int i = 0; i < grid->cell_count; i++) {
            grid->cells[i]->rho = 0;
        }
        Particle* p = head;
        while (p != nullptr) {
            Cell* c = grid->at(p->x_q16 / 65536, p->y_q16 / 65536);
            c->rho = c->rho + p->charge;
            c->visits = c->visits + 1;
            p = p->next;
        }
    }

    void push() {
        Particle* p = head;
        Particle* prev = nullptr;
        while (p != nullptr) {
            Cell* c = grid->at(p->x_q16 / 65536, p->y_q16 / 65536);
            p->vx_q16 = p->vx_q16 + c->ex_q16 * p->charge / 16;
            p->vy_q16 = p->vy_q16 + c->ey_q16 * p->charge / 16;
            p->x_q16 = p->x_q16 + p->vx_q16 / 8;
            p->y_q16 = p->y_q16 + p->vy_q16 / 8;
            diag->tally(p);
            bool out_of_domain = p->x_q16 < 0 || p->y_q16 < 0
                || p->x_q16 >= GRID_W * 65536 || p->y_q16 >= GRID_H * 65536;
            if (out_of_domain) {
                Particle* dead_particle = p;
                if (prev == nullptr) {
                    head = p->next;
                } else {
                    prev->next = p->next;
                }
                p = p->next;
                delete dead_particle;
                population = population - 1;
                diag->absorbed = diag->absorbed + 1;
            } else {
                prev = p;
                p = p->next;
            }
        }
    }
};

int main() {
    Plasma* plasma = new Plasma();
    for (int step = 0; step < STEPS; step++) {
        plasma->inject(INJECT_PER_STEP);
        plasma->deposit();
        plasma->solver->solve(plasma->grid);
        plasma->push();
    }

    int cell_checksum = 0;
    for (int i = 0; i < GRID_W * GRID_H; i++) {
        cell_checksum = (cell_checksum * 31 + plasma->grid->cells[i]->visits) & 16777215;
    }

    print_str("npic: injected=");
    print_int(plasma->diag->injected);
    print_str("npic: absorbed=");
    print_int(plasma->diag->absorbed);
    print_str("npic: population=");
    print_int(plasma->population);
    print_str("npic: peak=");
    print_int(plasma->peak_population);
    print_str("npic: pushed=");
    print_int(plasma->diag->pushed);
    print_str("npic: cells=");
    print_int(cell_checksum);
    return 0;
}
