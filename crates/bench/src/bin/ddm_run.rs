//! Ad-hoc driver: runs the full pipeline (analysis + interpretation +
//! profiling) on one source file and prints a compact summary line.
//! Used throughout development to calibrate the benchmark suite; the
//! user-facing equivalent with more options is the `ddm` binary in the
//! facade crate.

fn main() {
    let mut path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            args.next(); // value re-parsed by jobs_from_args
        } else if !a.starts_with('-') && path.is_none() {
            path = Some(a);
        }
    }
    let path = path.expect("usage: ddm_run <file.cpp> [--jobs N]");
    let jobs = ddm_bench::jobs_from_args();
    let src = std::fs::read_to_string(&path).expect("readable input file");
    let t0 = std::time::Instant::now();
    let run = match ddm_core::AnalysisPipeline::with_config_jobs(
        &src,
        Default::default(),
        ddm_callgraph::Algorithm::Rta,
        jobs,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("PIPELINE ERROR: {e}");
            std::process::exit(1);
        }
    };
    let report = run.report();
    println!(
        "classes={} used={} members={} dead={} ({:.1}%)",
        report.class_count(),
        report.used_class_count(),
        report.members_in_used_classes(),
        report.dead_members_in_used_classes(),
        report.dead_percentage()
    );
    for n in report.dead_member_names() {
        println!("  DEAD {n}");
    }
    let exec = match ddm_dynamic::Interpreter::new(run.program())
        .run(&ddm_dynamic::RunConfig::default())
    {
        Ok(e) => e,
        Err(e) => {
            eprintln!("RUNTIME ERROR: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", exec.output);
    let p = ddm_dynamic::profile_trace(run.program(), &exec.trace, run.liveness());
    println!("exit={} steps={} objs={} space={} dead_space={} hwm={} hwm_wo={} ({:.1}% dead space, {:.1}% hwm reduction) [{:?}]",
        exec.exit_code, exec.steps, p.objects_allocated, p.object_space, p.dead_member_space,
        p.high_water_mark, p.high_water_mark_without_dead,
        p.dead_space_percentage(), p.high_water_mark_reduction(), t0.elapsed());
}
