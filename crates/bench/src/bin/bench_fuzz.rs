//! `bench_fuzz` — corpus-scale differential fuzzing driver.
//!
//! Sweeps seeded adversarial generator configurations (see
//! [`ddm_bench::fuzz`]) through the oracle matrix — walk vs summary
//! engines × jobs {1, 8}, plus (on a configurable fraction of cases)
//! the persistent cache at cold/warm/1-changed × jobs {1, 8} —
//! byte-comparing reports, `--explain` output, and deterministic
//! counters. Any divergence is shrunk (config bisection, then chunk
//! delta-debugging) and emitted as self-contained `.cpp` repro files
//! plus the exact `ddm` invocations that disagree.
//!
//! ```text
//! bench_fuzz [--seed-range A..B] [--shape NAME] [--sweep-jobs N]
//!            [--full-every N] [--repro-dir DIR] [--json] [--smoke]
//! ```
//!
//! `--seed-range A..B` selects the seed block (default `0..2000`).
//! `--full-every N` runs the cached half of the matrix on every Nth
//! case (default 5; `1` = always). `--json` writes `BENCH_fuzz.json`.
//! `--smoke` sweeps a small fixed seed block under a wall-clock
//! ceiling and writes `BENCH_fuzz_smoke.json` — the CI gate.

use ddm_bench::fuzz::{case_for_seed_in, run_case, shrink_divergence, CaseResult, FuzzCase};
use ddm_bench::host_meta_json;
use ddm_benchmarks::generator::{FuzzShape, FUZZ_SHAPES};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for `--smoke` (generation + whole sweep).
const SMOKE_CEILING: Duration = Duration::from_secs(60);

/// The fixed seed block `--smoke` sweeps: two full shape cycles per
/// matrix flavour.
const SMOKE_SEEDS: std::ops::Range<u64> = 0..70;

/// The flag table: `(flag, value placeholder, help)` — the `--help`
/// text is rendered from it, so help and parser cannot drift.
const FLAGS: &[(&str, &str, &str)] = &[
    (
        "--seed-range",
        "<A..B>",
        "seed block to sweep, half-open (default 0..2000)",
    ),
    (
        "--shape",
        "<name>",
        "restrict to one shape: benign|unions|casts|diamonds|deadcode|odr|odr-conflict",
    ),
    (
        "--sweep-jobs",
        "<n>",
        "worker threads for the sweep itself (default 8)",
    ),
    (
        "--full-every",
        "<n>",
        "run the cached matrix on every Nth case (default 5)",
    ),
    (
        "--repro-dir",
        "<dir>",
        "where shrunk repros are written (default fuzz-repros)",
    ),
    ("--json", "", "write BENCH_fuzz.json (BENCH_fuzz_smoke.json with --smoke)"),
    (
        "--smoke",
        "",
        "fixed small seed block under a wall-clock ceiling (CI gate)",
    ),
    ("--help", "", "show this help"),
];

fn usage() -> String {
    let mut out = String::from("usage: bench_fuzz [options]\n\noptions:\n");
    let width = FLAGS
        .iter()
        .map(|(name, arg, _)| name.len() + if arg.is_empty() { 0 } else { arg.len() + 1 })
        .max()
        .unwrap_or(0);
    for (name, arg, help) in FLAGS {
        let left = if arg.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {arg}")
        };
        let _ = writeln!(out, "  {left:<width$}  {help}");
    }
    out
}

struct Options {
    seed_range: std::ops::Range<u64>,
    shapes: Vec<FuzzShape>,
    sweep_jobs: usize,
    full_every: u64,
    repro_dir: PathBuf,
    json: bool,
    smoke: bool,
}

/// Takes the next argument as `flag`'s value; anything missing or
/// `-`-leading fails loudly instead of being swallowed.
fn take_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with('-') => Ok(v),
        _ => Err(format!("{flag} needs a value")),
    }
}

/// Parses `A..B` into a non-empty half-open range.
fn parse_seed_range(text: &str) -> Result<std::ops::Range<u64>, String> {
    let (a, b) = text
        .split_once("..")
        .ok_or_else(|| format!("--seed-range wants `A..B`, got `{text}`"))?;
    let lo: u64 = a
        .parse()
        .map_err(|_| format!("--seed-range start `{a}` is not a number"))?;
    let hi: u64 = b
        .parse()
        .map_err(|_| format!("--seed-range end `{b}` is not a number"))?;
    if lo >= hi {
        return Err(format!(
            "--seed-range {lo}..{hi} is empty or inverted (need start < end)"
        ));
    }
    Ok(lo..hi)
}

fn parse_shape(name: &str) -> Result<FuzzShape, String> {
    FUZZ_SHAPES
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = FUZZ_SHAPES.iter().map(|s| s.name()).collect();
            format!("unknown shape `{name}` (one of: {})", all.join(", "))
        })
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        seed_range: 0..2000,
        shapes: FUZZ_SHAPES.to_vec(),
        sweep_jobs: 8,
        full_every: 5,
        repro_dir: PathBuf::from("fuzz-repros"),
        json: false,
        smoke: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed-range" => {
                opts.seed_range = parse_seed_range(&take_value(&mut args, "--seed-range")?)?;
            }
            "--shape" => {
                opts.shapes = vec![parse_shape(&take_value(&mut args, "--shape")?)?];
            }
            "--sweep-jobs" => {
                let v = take_value(&mut args, "--sweep-jobs")?;
                opts.sweep_jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--sweep-jobs wants a positive integer, got `{v}`"))?;
            }
            "--full-every" => {
                let v = take_value(&mut args, "--full-every")?;
                opts.full_every = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--full-every wants a positive integer, got `{v}`"))?;
            }
            "--repro-dir" => {
                opts.repro_dir = PathBuf::from(take_value(&mut args, "--repro-dir")?);
            }
            "--json" => opts.json = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if opts.smoke {
        opts.seed_range = SMOKE_SEEDS;
        opts.full_every = opts.full_every.min(7);
    }
    Ok(opts)
}

#[derive(Default, Clone)]
struct ShapeTally {
    cases: u64,
    full_matrix: u64,
    error_outcomes: u64,
}

struct SweepOutcome {
    tallies: Vec<(FuzzShape, ShapeTally)>,
    diverged: Vec<FuzzCase>,
}

/// Sweeps `seeds` across `sweep_jobs` workers. Divergent cases are
/// collected, not shrunk here — shrinking re-runs the matrix many
/// times and is done once, on the smallest seed, after the sweep.
fn sweep(opts: &Options, scratch: &std::path::Path) -> SweepOutcome {
    let seeds: Vec<u64> = opts.seed_range.clone().collect();
    let next = AtomicUsize::new(0);
    let tallies: Mutex<Vec<(FuzzShape, ShapeTally)>> = Mutex::new(
        opts.shapes
            .iter()
            .map(|&s| (s, ShapeTally::default()))
            .collect(),
    );
    let diverged: Mutex<Vec<FuzzCase>> = Mutex::new(Vec::new());
    let workers = opts.sweep_jobs.min(seeds.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let case = case_for_seed_in(seed, &opts.shapes);
                let full = seed % opts.full_every == 0;
                let result = run_case(&case, scratch, full);
                let mut t = tallies.lock().unwrap();
                let entry = t
                    .iter_mut()
                    .find(|(s, _)| *s == case.config.shape)
                    .expect("shape tallied");
                entry.1.cases += 1;
                if full {
                    entry.1.full_matrix += 1;
                }
                match result {
                    CaseResult::Agree { error_outcome } => {
                        if error_outcome {
                            entry.1.error_outcomes += 1;
                        }
                    }
                    CaseResult::Diverged(d) => {
                        drop(t);
                        eprintln!(
                            "DIVERGENCE seed={seed} shape={}: {} vs {}",
                            case.config.shape.name(),
                            d.baseline.label,
                            d.other.label
                        );
                        diverged.lock().unwrap().push(case);
                    }
                }
            });
        }
    });

    let mut diverged = diverged.into_inner().unwrap();
    diverged.sort_by_key(|c| c.seed);
    SweepOutcome {
        tallies: tallies.into_inner().unwrap(),
        diverged,
    }
}

fn render_json(opts: &Options, outcome: &SweepOutcome, elapsed: Duration) -> String {
    let total: u64 = outcome.tallies.iter().map(|(_, t)| t.cases).sum();
    let full: u64 = outcome.tallies.iter().map(|(_, t)| t.full_matrix).sum();
    let errors: u64 = outcome.tallies.iter().map(|(_, t)| t.error_outcomes).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm differential fuzz\",\n");
    let _ = writeln!(out, "  \"host\": {},", host_meta_json());
    let _ = writeln!(
        out,
        "  \"seed_range\": \"{}..{}\",",
        opts.seed_range.start, opts.seed_range.end
    );
    let _ = writeln!(out, "  \"cases\": {total},");
    let _ = writeln!(out, "  \"full_matrix_cases\": {full},");
    let _ = writeln!(out, "  \"error_outcome_cases\": {errors},");
    let _ = writeln!(out, "  \"divergences\": {},", outcome.diverged.len());
    let _ = writeln!(out, "  \"elapsed_ms\": {},", elapsed.as_millis());
    out.push_str("  \"shapes\": [\n");
    for (i, (shape, t)) in outcome.tallies.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shape\": \"{}\", \"cases\": {}, \"full_matrix\": {}, \"error_outcomes\": {}}}",
            shape.name(),
            t.cases,
            t.full_matrix,
            t.error_outcomes
        );
        out.push_str(if i + 1 < outcome.tallies.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e == "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let scratch = std::env::temp_dir().join(format!("ddm-fuzz-{}", std::process::id()));
    let started = Instant::now();
    let outcome = sweep(&opts, &scratch);
    let elapsed = started.elapsed();
    let _ = std::fs::remove_dir_all(&scratch);

    let total: u64 = outcome.tallies.iter().map(|(_, t)| t.cases).sum();
    println!(
        "{:<14} {:>7} {:>12} {:>14}",
        "shape", "cases", "full-matrix", "error-outcome"
    );
    for (shape, t) in &outcome.tallies {
        println!(
            "{:<14} {:>7} {:>12} {:>14}",
            shape.name(),
            t.cases,
            t.full_matrix,
            t.error_outcomes
        );
    }
    println!(
        "swept {total} cases in {elapsed:.1?} ({} workers): {} divergence(s)",
        opts.sweep_jobs,
        outcome.diverged.len()
    );

    if opts.json {
        let path = if opts.smoke {
            "BENCH_fuzz_smoke.json"
        } else {
            "BENCH_fuzz.json"
        };
        std::fs::write(path, render_json(&opts, &outcome, elapsed)).expect("write fuzz JSON");
        println!("wrote {path}");
    }

    if let Some(case) = outcome.diverged.first() {
        println!(
            "shrinking divergence at seed {} (of {} divergent case(s))...",
            case.seed,
            outcome.diverged.len()
        );
        let shrink_scratch =
            std::env::temp_dir().join(format!("ddm-fuzz-shrink-{}", std::process::id()));
        let repro = shrink_divergence(case, &shrink_scratch);
        let _ = std::fs::remove_dir_all(&shrink_scratch);
        print!("{}", repro.render());
        match repro.write(&opts.repro_dir) {
            Ok(path) => println!("repro written to {}", path.display()),
            Err(e) => eprintln!("error: could not write repro: {e}"),
        }
        return ExitCode::FAILURE;
    }

    if opts.smoke {
        assert!(
            elapsed < SMOKE_CEILING,
            "fuzz smoke exceeded its wall-clock ceiling: {elapsed:.1?} >= {SMOKE_CEILING:?}"
        );
    }
    ExitCode::SUCCESS
}
