//! Scaling benchmark for the delta-driven call-graph fixpoint: generated
//! programs far beyond the paper suite's 31 functions (up to ~22k), with
//! deep virtual hierarchies and long call ladders that force the fixpoint
//! through hundreds of rounds.
//!
//! For each size the driver times call-graph construction under both
//! engines (walk and summary replay), captures the delta-worklist
//! telemetry (rounds, per-round delta sizes, worklist pops, readied-site
//! drains), and fits the scaling exponent between consecutive sizes:
//! `ln(t2/t1) / ln(n2/n1)`. A full-set round sweep is Θ(rounds × n) —
//! with rounds ≈ rungs growing linearly in `n`, that is quadratic
//! (exponent ≈ 2). The delta worklist pops each function once, so the
//! exponent stays well under 2.
//!
//! ```text
//! bench_scale [--json] [--samples N] [--smoke]
//! ```
//!
//! `--json` writes `BENCH_scale.json`. `--smoke` runs only the smallest
//! size with one sample and fails if it exceeds a wall-clock ceiling —
//! the CI gate.

use ddm_bench::timing;
use ddm_benchmarks::generator::{generate_scale, scale_function_count, ScaleConfig};
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_hierarchy::{MemberLookup, Program, ProgramSummary};
use ddm_telemetry::Telemetry;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for `--smoke` (generation + parse + both engines).
const SMOKE_CEILING: Duration = Duration::from_secs(30);

struct SizeResult {
    name: &'static str,
    config: ScaleConfig,
    functions: usize,
    walk_cg: Duration,
    summary_cg: Duration,
    rounds: u64,
    worklist_pops: u64,
    ready_drains: u64,
    deltas: Vec<u64>,
}

fn sizes(smoke: bool) -> Vec<(&'static str, ScaleConfig)> {
    let mut v = vec![(
        "small",
        ScaleConfig {
            chains: 4,
            depth: 25,
            methods_per_class: 4,
            members_per_class: 3,
            rungs: 250,
        },
    )];
    if !smoke {
        v.push((
            "medium",
            ScaleConfig {
                chains: 8,
                depth: 50,
                methods_per_class: 4,
                members_per_class: 3,
                rungs: 500,
            },
        ));
        v.push((
            "large",
            ScaleConfig {
                chains: 16,
                depth: 100,
                methods_per_class: 4,
                members_per_class: 3,
                rungs: 1000,
            },
        ));
    }
    v
}

fn measure(name: &'static str, config: ScaleConfig, samples: usize) -> SizeResult {
    let src = generate_scale(&config, 42);
    let tu = ddm_cppfront::parse(&src).expect("scale program parses");
    let program = Program::build(&tu).expect("scale program resolves");
    assert_eq!(program.function_count(), scale_function_count(&config));
    let options = CallGraphOptions {
        algorithm: Algorithm::Rta,
        ..Default::default()
    };

    let (walk_cg, _) = timing::time(samples, || {
        let lookup = MemberLookup::new(&program);
        CallGraph::build(&program, &lookup, &options).unwrap()
    });
    let (summary_cg, _) = timing::time(samples, || {
        let summary = ProgramSummary::build(&program, false, 1);
        CallGraph::build_from_summary(&program, &summary, &options).unwrap()
    });

    // Deterministic worklist telemetry: capture once per engine and
    // insist the two engines agree — the delta schedule is shared, so
    // pops, drains, and per-round delta sizes must be identical.
    let walk_tel = Telemetry::enabled();
    let lookup = MemberLookup::new(&program);
    let walked = CallGraph::build_with(&program, &lookup, &options, &walk_tel).unwrap();
    let summary_tel = Telemetry::enabled();
    let summary = ProgramSummary::build(&program, false, 1);
    let replayed =
        CallGraph::build_from_summary_with(&program, &summary, &options, &summary_tel).unwrap();
    assert_eq!(walked, replayed, "{name}: engines disagree on the graph");
    let wc = walk_tel.counters();
    let sc = summary_tel.counters();
    assert_eq!(
        (wc.cg_worklist_pops, wc.cg_ready_drains),
        (sc.cg_worklist_pops, sc.cg_ready_drains),
        "{name}: worklist counters differ across engines"
    );
    let ws = walk_tel.stats();
    let ss = summary_tel.stats();
    assert_eq!(
        ws.cg_round_deltas, ss.cg_round_deltas,
        "{name}: per-round delta sizes differ across engines"
    );

    SizeResult {
        name,
        config,
        functions: program.function_count(),
        walk_cg,
        summary_cg,
        rounds: ss.callgraph_rounds,
        worklist_pops: sc.cg_worklist_pops,
        ready_drains: sc.cg_ready_drains,
        deltas: ss.cg_round_deltas,
    }
}

/// log(t2/t1) / log(n2/n1): the empirical scaling exponent between two
/// measurements.
fn exponent(small: (usize, Duration), large: (usize, Duration)) -> f64 {
    let dt = (large.1.as_secs_f64() / small.1.as_secs_f64().max(f64::EPSILON)).ln();
    let dn = (large.0 as f64 / small.0 as f64).ln();
    dt / dn
}

fn render_json(results: &[SizeResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm-benchmarks scale generator\",\n");
    out.push_str("  \"algorithm\": \"rta\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.config;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"functions\": {}, \"config\": {{\"chains\": {}, \"depth\": {}, \"methods_per_class\": {}, \"members_per_class\": {}, \"rungs\": {}}},\n",
            r.name, r.functions, c.chains, c.depth, c.methods_per_class, c.members_per_class, c.rungs
        ));
        out.push_str(&format!(
            "     \"walk_callgraph_ns\": {}, \"summary_callgraph_ns\": {},\n",
            r.walk_cg.as_nanos(),
            r.summary_cg.as_nanos()
        ));
        let max_delta = r.deltas.iter().copied().max().unwrap_or(0);
        let sum_delta: u64 = r.deltas.iter().sum();
        out.push_str(&format!(
            "     \"rounds\": {}, \"worklist_pops\": {}, \"ready_drains\": {}, \"delta_sum\": {sum_delta}, \"delta_max\": {max_delta}}}",
            r.rounds, r.worklist_pops, r.ready_drains
        ));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if results.len() >= 2 {
        out.push_str(",\n  \"scaling_exponents\": [\n");
        for w in results.windows(2) {
            let walk = exponent(
                (w[0].functions, w[0].walk_cg),
                (w[1].functions, w[1].walk_cg),
            );
            let summary = exponent(
                (w[0].functions, w[0].summary_cg),
                (w[1].functions, w[1].summary_cg),
            );
            out.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"walk\": {walk:.3}, \"summary\": {summary:.3}}}{}",
                w[0].name,
                w[1].name,
                if w[1].name == results.last().unwrap().name { "\n" } else { ",\n" }
            ));
        }
        out.push_str("  ]\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(if smoke { 1 } else { 3 });

    let started = Instant::now();
    let results: Vec<SizeResult> = sizes(smoke)
        .into_iter()
        .map(|(name, config)| measure(name, config, samples))
        .collect();

    println!(
        "{:<8} {:>8} {:>8} {:>14} {:>16} {:>10} {:>10}",
        "size", "funcs", "rounds", "walk cg", "summary cg", "pops", "drains"
    );
    for r in &results {
        println!(
            "{:<8} {:>8} {:>8} {:>14.1?} {:>16.1?} {:>10} {:>10}",
            r.name, r.functions, r.rounds, r.walk_cg, r.summary_cg, r.worklist_pops, r.ready_drains
        );
    }
    for w in results.windows(2) {
        println!(
            "exponent {} -> {}: walk {:.3}, summary {:.3}  (full-sweep baseline ~2)",
            w[0].name,
            w[1].name,
            exponent(
                (w[0].functions, w[0].walk_cg),
                (w[1].functions, w[1].walk_cg)
            ),
            exponent(
                (w[0].functions, w[0].summary_cg),
                (w[1].functions, w[1].summary_cg)
            ),
        );
    }

    if json {
        // The smoke run measures one size only — keep it away from the
        // committed full-sweep BENCH_scale.json.
        let path = if smoke {
            "BENCH_scale_smoke.json"
        } else {
            "BENCH_scale.json"
        };
        std::fs::write(path, render_json(&results, samples)).expect("write scale JSON");
        println!("wrote {path}");
    }

    if smoke {
        let elapsed = started.elapsed();
        assert!(
            elapsed < SMOKE_CEILING,
            "scale smoke exceeded its wall-clock ceiling: {elapsed:.1?} >= {SMOKE_CEILING:?}"
        );
        println!("smoke OK in {elapsed:.1?} (ceiling {SMOKE_CEILING:?})");
    }
}
