//! Scaling benchmark for the delta-driven call-graph fixpoint: generated
//! programs far beyond the paper suite's 31 functions (up to ~131k), with
//! deep virtual hierarchies and long call ladders that force the fixpoint
//! through dozens of park/release rounds.
//!
//! For each size the driver times call-graph construction under both
//! engines (walk and summary replay) at one worker and at eight, captures
//! the delta-worklist telemetry (rounds, per-round delta sizes, worklist
//! pops, readied-site drains), and fits the scaling exponent between
//! consecutive sizes: `ln(t2/t1) / ln(n2/n1)`. A full-set round sweep is
//! Θ(rounds × n); the delta worklist pops each function once and the
//! interned dense hot loops do no per-pop hashing, so the exponent stays
//! near 1.
//!
//! The ladder grows by adding *chains* (independent hierarchies) at a
//! fixed depth and rung count, so per-chain work is constant and the
//! ideal exponent is exactly 1 — any superlinearity is the engine's own.
//!
//! ```text
//! bench_scale [--json] [--samples N] [--smoke] [--emit PATH]
//! ```
//!
//! `--json` writes `BENCH_scale.json`. `--smoke` runs the two smallest
//! sizes with one sample and fails on a wall-clock ceiling, a scaling
//! exponent above [`SMOKE_EXPONENT_CEILING`], or an eight-worker run
//! slower than one worker beyond noise — the CI gates. `--emit PATH`
//! writes the smallest size's generated source to `PATH` so the CI
//! trace gate has a program big enough to shard eight ways.

use ddm_bench::{effective_jobs, host_meta_json, timing};
use ddm_benchmarks::generator::{generate_scale, scale_function_count, ScaleConfig};
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_hierarchy::{MemberLookup, Program, ProgramSummary};
use ddm_telemetry::Telemetry;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for `--smoke` (generation + parse + both engines
/// at both worker counts, two sizes).
const SMOKE_CEILING: Duration = Duration::from_secs(30);

/// `--smoke` fails if any adjacent-size scaling exponent exceeds this.
/// The committed full sweep stays under 1.25; 1.4 leaves headroom for
/// small-size noise while still catching a quadratic regression (~2)
/// immediately.
const SMOKE_EXPONENT_CEILING: f64 = 1.4;

/// `--smoke` fails if an eight-worker run is slower than one worker by
/// more than this factor. Sharding must pay for itself (or, clamped to
/// one worker on a single-CPU host, be the identical schedule), so
/// anything past noise is a regression.
const SMOKE_JOBS_TOLERANCE: f64 = 1.15;

struct SizeResult {
    name: &'static str,
    config: ScaleConfig,
    functions: usize,
    walk_cg: Duration,
    walk_cg_j8: Duration,
    summary_cg: Duration,
    summary_cg_j8: Duration,
    rounds: u64,
    worklist_pops: u64,
    ready_drains: u64,
    deltas: Vec<u64>,
}

/// The ladder sizes: chains quadruple while depth, methods, and rungs
/// stay fixed, so function count quadruples with per-chain work held
/// constant. `huge` crosses 100k functions.
fn sizes(smoke: bool) -> Vec<(&'static str, ScaleConfig)> {
    let at = |chains| ScaleConfig {
        chains,
        depth: 16,
        methods_per_class: 4,
        members_per_class: 3,
        rungs: 64,
    };
    let mut v = vec![("small", at(16)), ("medium", at(64))];
    if !smoke {
        v.push(("large", at(256)));
        v.push(("huge", at(1024)));
    }
    v
}

fn measure(name: &'static str, config: ScaleConfig, samples: usize) -> SizeResult {
    let src = generate_scale(&config, 42);
    let tu = ddm_cppfront::parse(&src).expect("scale program parses");
    let program = Program::build(&tu).expect("scale program resolves");
    assert_eq!(program.function_count(), scale_function_count(&config));
    let options = CallGraphOptions {
        algorithm: Algorithm::Rta,
        ..Default::default()
    };
    let jobs8 = effective_jobs(8);
    let options_j8 = CallGraphOptions {
        algorithm: Algorithm::Rta,
        jobs: jobs8,
        ..Default::default()
    };

    let (walk_cg, _) = timing::time(samples, || {
        let lookup = MemberLookup::new(&program);
        CallGraph::build(&program, &lookup, &options).unwrap()
    });
    let (walk_cg_j8, _) = timing::time(samples, || {
        let lookup = MemberLookup::new(&program);
        CallGraph::build(&program, &lookup, &options_j8).unwrap()
    });
    let (summary_cg, _) = timing::time(samples, || {
        let summary = ProgramSummary::build(&program, false, 1);
        CallGraph::build_from_summary(&program, &summary, &options).unwrap()
    });
    let (summary_cg_j8, _) = timing::time(samples, || {
        let summary = ProgramSummary::build(&program, false, jobs8);
        CallGraph::build_from_summary(&program, &summary, &options_j8).unwrap()
    });

    // Deterministic worklist telemetry: capture once per engine and
    // insist the two engines agree — the delta schedule is shared, so
    // pops, drains, and per-round delta sizes must be identical. The
    // eight-worker walk must also produce the identical graph and
    // counters: parallel rounds only pre-extract, never reschedule.
    let walk_tel = Telemetry::enabled();
    let lookup = MemberLookup::new(&program);
    let walked = CallGraph::build_with(&program, &lookup, &options, &walk_tel).unwrap();
    let walk8_tel = Telemetry::enabled();
    let walked8 = CallGraph::build_with(&program, &lookup, &options_j8, &walk8_tel).unwrap();
    assert_eq!(walked, walked8, "{name}: jobs=8 walk diverged from jobs=1");
    let summary_tel = Telemetry::enabled();
    let summary = ProgramSummary::build(&program, false, 1);
    let replayed =
        CallGraph::build_from_summary_with(&program, &summary, &options, &summary_tel).unwrap();
    assert_eq!(walked, replayed, "{name}: engines disagree on the graph");
    let wc = walk_tel.counters();
    let w8c = walk8_tel.counters();
    let sc = summary_tel.counters();
    assert_eq!(
        (wc.cg_worklist_pops, wc.cg_ready_drains),
        (sc.cg_worklist_pops, sc.cg_ready_drains),
        "{name}: worklist counters differ across engines"
    );
    assert_eq!(
        (wc.cg_worklist_pops, wc.cg_ready_drains),
        (w8c.cg_worklist_pops, w8c.cg_ready_drains),
        "{name}: worklist counters differ across worker counts"
    );
    let ws = walk_tel.stats();
    let ss = summary_tel.stats();
    assert_eq!(
        ws.cg_round_deltas, ss.cg_round_deltas,
        "{name}: per-round delta sizes differ across engines"
    );

    SizeResult {
        name,
        config,
        functions: program.function_count(),
        walk_cg,
        walk_cg_j8,
        summary_cg,
        summary_cg_j8,
        rounds: ss.callgraph_rounds,
        worklist_pops: sc.cg_worklist_pops,
        ready_drains: sc.cg_ready_drains,
        deltas: ss.cg_round_deltas,
    }
}

/// log(t2/t1) / log(n2/n1): the empirical scaling exponent between two
/// measurements.
fn exponent(small: (usize, Duration), large: (usize, Duration)) -> f64 {
    let dt = (large.1.as_secs_f64() / small.1.as_secs_f64().max(f64::EPSILON)).ln();
    let dn = (large.0 as f64 / small.0 as f64).ln();
    dt / dn
}

fn render_json(results: &[SizeResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm-benchmarks scale generator\",\n");
    out.push_str("  \"algorithm\": \"rta\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"jobs8_effective\": {},\n", effective_jobs(8)));
    out.push_str(&format!("  \"host\": {},\n", host_meta_json()));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.config;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"functions\": {}, \"config\": {{\"chains\": {}, \"depth\": {}, \"methods_per_class\": {}, \"members_per_class\": {}, \"rungs\": {}}},\n",
            r.name, r.functions, c.chains, c.depth, c.methods_per_class, c.members_per_class, c.rungs
        ));
        out.push_str(&format!(
            "     \"walk_callgraph_ns\": {}, \"walk_callgraph_jobs8_ns\": {}, \"summary_callgraph_ns\": {}, \"summary_callgraph_jobs8_ns\": {},\n",
            r.walk_cg.as_nanos(),
            r.walk_cg_j8.as_nanos(),
            r.summary_cg.as_nanos(),
            r.summary_cg_j8.as_nanos()
        ));
        let max_delta = r.deltas.iter().copied().max().unwrap_or(0);
        let sum_delta: u64 = r.deltas.iter().sum();
        out.push_str(&format!(
            "     \"rounds\": {}, \"worklist_pops\": {}, \"ready_drains\": {}, \"delta_sum\": {sum_delta}, \"delta_max\": {max_delta}}}",
            r.rounds, r.worklist_pops, r.ready_drains
        ));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if results.len() >= 2 {
        out.push_str(",\n  \"scaling_exponents\": [\n");
        for w in results.windows(2) {
            let walk = exponent(
                (w[0].functions, w[0].walk_cg),
                (w[1].functions, w[1].walk_cg),
            );
            let summary = exponent(
                (w[0].functions, w[0].summary_cg),
                (w[1].functions, w[1].summary_cg),
            );
            let summary_j8 = exponent(
                (w[0].functions, w[0].summary_cg_j8),
                (w[1].functions, w[1].summary_cg_j8),
            );
            out.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"walk\": {walk:.3}, \"summary\": {summary:.3}, \"summary_jobs8\": {summary_j8:.3}}}{}",
                w[0].name,
                w[1].name,
                if w[1].name == results.last().unwrap().name { "\n" } else { ",\n" }
            ));
        }
        out.push_str("  ]\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let emit = args
        .iter()
        .position(|a| a == "--emit")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --emit needs a path");
            std::process::exit(2);
        }));
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(if smoke { 1 } else { 3 });

    if let Some(path) = &emit {
        let (_, config) = sizes(true).remove(0);
        std::fs::write(path, generate_scale(&config, 42)).expect("write emitted source");
        println!(
            "emitted {path} ({} functions)",
            scale_function_count(&config)
        );
        if !json && !smoke {
            return; // emit-only invocation: no measurement requested
        }
    }

    let started = Instant::now();
    let results: Vec<SizeResult> = sizes(smoke)
        .into_iter()
        .map(|(name, config)| measure(name, config, samples))
        .collect();

    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "size", "funcs", "rounds", "walk", "walk j8", "summary", "summary j8", "pops", "drains"
    );
    for r in &results {
        println!(
            "{:<8} {:>8} {:>8} {:>12.1?} {:>12.1?} {:>12.1?} {:>12.1?} {:>9} {:>9}",
            r.name,
            r.functions,
            r.rounds,
            r.walk_cg,
            r.walk_cg_j8,
            r.summary_cg,
            r.summary_cg_j8,
            r.worklist_pops,
            r.ready_drains
        );
    }
    let mut worst_exponent: f64 = 0.0;
    for w in results.windows(2) {
        let walk = exponent(
            (w[0].functions, w[0].walk_cg),
            (w[1].functions, w[1].walk_cg),
        );
        let summary = exponent(
            (w[0].functions, w[0].summary_cg),
            (w[1].functions, w[1].summary_cg),
        );
        worst_exponent = worst_exponent.max(walk).max(summary);
        println!(
            "exponent {} -> {}: walk {walk:.3}, summary {summary:.3}  (full-sweep baseline ~2)",
            w[0].name, w[1].name,
        );
    }

    if json {
        // The smoke run measures the two smallest sizes only — keep it
        // away from the committed full-sweep BENCH_scale.json.
        let path = if smoke {
            "BENCH_scale_smoke.json"
        } else {
            "BENCH_scale.json"
        };
        std::fs::write(path, render_json(&results, samples)).expect("write scale JSON");
        println!("wrote {path}");
    }

    if smoke {
        let elapsed = started.elapsed();
        assert!(
            elapsed < SMOKE_CEILING,
            "scale smoke exceeded its wall-clock ceiling: {elapsed:.1?} >= {SMOKE_CEILING:?}"
        );
        assert!(
            worst_exponent <= SMOKE_EXPONENT_CEILING,
            "scaling exponent regressed: {worst_exponent:.3} > {SMOKE_EXPONENT_CEILING}"
        );
        for r in &results {
            for (label, j1, j8) in [
                ("walk", r.walk_cg, r.walk_cg_j8),
                ("summary", r.summary_cg, r.summary_cg_j8),
            ] {
                assert!(
                    j8 <= j1.mul_f64(SMOKE_JOBS_TOLERANCE),
                    "{} {label}: jobs=8 ({j8:.1?}) slower than jobs=1 ({j1:.1?}) beyond {SMOKE_JOBS_TOLERANCE}x",
                    r.name
                );
            }
        }
        println!(
            "smoke OK in {elapsed:.1?} (ceiling {SMOKE_CEILING:?}, worst exponent {worst_exponent:.3})"
        );
    }
}
