//! Regenerates the paper's **Table 1**: benchmark characteristics —
//! lines of code, number of classes (used classes in brackets), and the
//! number of data members in used classes.

use ddm_bench::{jobs_from_args, measure_suite_jobs, paper_cell};

fn main() {
    let rows = measure_suite_jobs(jobs_from_args()).expect("benchmark suite must measure cleanly");
    println!(
        "Table 1: Benchmark programs used to evaluate the dead data member detection algorithm"
    );
    println!("(measured on this reproduction's suite; `paper:` columns show the 1998 values where legible)\n");
    println!(
        "{:<10} {:>6} {:>14} {:>9}   {:>10} {:>14} {:>12}",
        "name", "LOC", "classes(used)", "members", "paper:LOC", "paper:classes", "paper:members"
    );
    for m in &rows {
        println!(
            "{:<10} {:>6} {:>9}({:>3}) {:>9}   {:>10} {:>14} {:>12}",
            m.name,
            m.loc,
            m.classes,
            m.used_classes,
            m.members,
            paper_cell(m.paper.loc),
            paper_cell(m.paper.classes),
            paper_cell(m.paper.members),
        );
    }
    let total_members: usize = rows.iter().map(|m| m.members).sum();
    println!(
        "\ntotals: {} benchmarks, {} data members in used classes",
        rows.len(),
        total_members
    );
}
