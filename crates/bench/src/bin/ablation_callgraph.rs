//! §3.1 ablation: the paper notes that "the accuracy of the call graph
//! may have an impact on the precision of the analysis" and walks
//! through how a better call graph would reclassify members of its
//! Figure 1 example. This binary quantifies that on the whole suite by
//! running the analysis under all four call-graph builders:
//! `everything` (all functions reachable), CHA, RTA (the paper's PVG
//! stand-in), and PTA (RTA plus the §3.1 points-to refinement). Dead
//! counts are monotone: everything ≤ CHA ≤ RTA ≤ PTA.

use ddm_callgraph::Algorithm;
use ddm_core::{AnalysisConfig, AnalysisPipeline, SizeofPolicy};

fn dead_count(source: &str, algorithm: Algorithm) -> (usize, usize, f64) {
    let run = AnalysisPipeline::with_config(
        source,
        AnalysisConfig {
            assume_safe_downcasts: true,
            sizeof_policy: SizeofPolicy::Ignore,
            ..Default::default()
        },
        algorithm,
    )
    .expect("suite analyzes cleanly");
    let report = run.report();
    (
        report.dead_members_in_used_classes(),
        report.members_in_used_classes(),
        report.dead_percentage(),
    )
}

fn main() {
    println!("Call-graph precision ablation (§3.1): dead members under each builder\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "name", "everything", "CHA", "RTA (paper's)", "PTA (§3.1)"
    );
    let mut totals = [0usize; 4];
    for b in ddm_benchmarks::suite() {
        let (de, me, pe) = dead_count(b.source, Algorithm::Everything);
        let (dc, _, pc) = dead_count(b.source, Algorithm::Cha);
        let (dr, _, pr) = dead_count(b.source, Algorithm::Rta);
        let (dp, _, pp) = dead_count(b.source, Algorithm::Pta);
        assert!(
            de <= dc && dc <= dr && dr <= dp,
            "monotonicity violated for {}",
            b.name
        );
        totals[0] += de;
        totals[1] += dc;
        totals[2] += dr;
        totals[3] += dp;
        println!(
            "{:<10} {:>8}/{:<3}{:>4.1}% {:>8}/{:<3}{:>4.1}% {:>8}/{:<3}{:>4.1}% {:>8}/{:<3}{:>4.1}%",
            b.name, de, me, pe, dc, me, pc, dr, me, pr, dp, me, pp
        );
    }
    println!(
        "\ntotals: everything={} CHA={} RTA={} PTA={} dead members",
        totals[0], totals[1], totals[2], totals[3]
    );
    println!("PTA ≥ RTA ≥ CHA ≥ everything, as §3.1 predicts: a more precise call");
    println!("graph excludes more unreachable member accesses and finds more dead members.");
}
