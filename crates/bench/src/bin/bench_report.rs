//! `bench_report` — the benchmark normalizer and regression gate.
//!
//! Every BENCH driver writes its own JSON shape. This driver folds them
//! into one schema (`ddm-bench-report/1`), appends each run to
//! `BENCH_history.jsonl` with host metadata so runs stay comparable
//! across machines, and compares the current tree against committed
//! baselines:
//!
//! * **timings** are warn-only — the CI host is a 1-CPU container and
//!   wall clock is noise there (threshold: ratio > 1.5× either way);
//! * **deterministic counters** for the 11 suite programs are a *hard
//!   failure* on any drift. The counters are recomputed in-process (not
//!   read from a file), so the gate checks the analysis itself, and the
//!   bit-identical counter discipline becomes an automatic
//!   semantic-regression tripwire.
//!
//! ```text
//! bench_report [--check] [--record] [--write-baseline] [--validate]
//!              [--smoke] [--baselines FILE] [--history FILE] [FILE...]
//! ```
//!
//! `--write-baseline` captures `BENCH_baselines.json` (recomputed
//! counters + the normalized timings of whatever BENCH_*.json files are
//! present). `--check` is the CI gate; `--smoke` lets it fall back to
//! the `*_smoke.json` variants and skip absent families. `--record`
//! appends one history line per family with a readable file. Exit code
//! 1 means a gate failed, 2 a usage error.

use ddm_bench::{capture_counters, host_cpus, host_meta_json};
use ddm_telemetry::json::{self, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Schema tag for normalized history lines.
const REPORT_SCHEMA: &str = "ddm-bench-report/1";
/// Schema tag for the committed baseline file.
const BASELINE_SCHEMA: &str = "ddm-bench-baselines/1";
/// Warn when a timing drifts past this ratio (either direction).
const TIMING_WARN_RATIO: f64 = 1.5;

/// `(family, full file, smoke fallback)` — the smoke fallback is what
/// the CI drivers write; an empty string means the family has no smoke
/// variant.
const FAMILIES: &[(&str, &str, &str)] = &[
    ("suite", "BENCH_suite.json", ""),
    ("scale", "BENCH_scale.json", "BENCH_scale_smoke.json"),
    (
        "incremental",
        "BENCH_incremental.json",
        "BENCH_incremental_smoke.json",
    ),
    ("fuzz", "BENCH_fuzz.json", "BENCH_fuzz_smoke.json"),
];

/// The flag table: `(flag, value placeholder, help)` — `--help` is
/// rendered from it, so help and parser cannot drift.
const FLAGS: &[(&str, &str, &str)] = &[
    (
        "--check",
        "",
        "gate: recompute suite counters vs baselines (hard fail), compare timings (warn)",
    ),
    (
        "--record",
        "",
        "append one normalized history line per family with a readable BENCH file",
    ),
    (
        "--write-baseline",
        "",
        "capture BENCH_baselines.json from in-process counters + current BENCH files",
    ),
    (
        "--validate",
        "",
        "JSON-validate every BENCH_*.json, the baselines, each history line, and any FILE args (.ndjson/.jsonl line-wise)",
    ),
    (
        "--smoke",
        "",
        "allow *_smoke.json fallbacks and skip families with no file (CI mode)",
    ),
    (
        "--baselines",
        "<file>",
        "baseline file (default BENCH_baselines.json)",
    ),
    (
        "--history",
        "<file>",
        "history file (default BENCH_history.jsonl)",
    ),
    ("--help", "", "show this help"),
];

fn usage() -> String {
    let mut out = String::from("usage: bench_report [options]\n\noptions:\n");
    let width = FLAGS
        .iter()
        .map(|(name, arg, _)| name.len() + if arg.is_empty() { 0 } else { arg.len() + 1 })
        .max()
        .unwrap_or(0);
    for (name, arg, help) in FLAGS {
        let left = if arg.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {arg}")
        };
        let _ = writeln!(out, "  {left:<width$}  {help}");
    }
    out
}

struct Options {
    check: bool,
    record: bool,
    write_baseline: bool,
    validate: bool,
    smoke: bool,
    baselines: PathBuf,
    history: PathBuf,
    /// Extra files for `--validate` — the shell-reachable form of the
    /// in-tree JSON validator (ci.sh points it at `--log-out` /
    /// `--metrics-out` output). Unlike the BENCH tree, these must exist.
    files: Vec<PathBuf>,
}

/// Takes the next argument as `flag`'s value; anything missing or
/// `-`-leading fails loudly instead of being swallowed.
fn take_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with('-') => Ok(v),
        _ => Err(format!("{flag} needs a value")),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        check: false,
        record: false,
        write_baseline: false,
        validate: false,
        smoke: false,
        baselines: PathBuf::from("BENCH_baselines.json"),
        history: PathBuf::from("BENCH_history.jsonl"),
        files: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--record" => opts.record = true,
            "--write-baseline" => opts.write_baseline = true,
            "--validate" => opts.validate = true,
            "--smoke" => opts.smoke = true,
            "--baselines" => opts.baselines = PathBuf::from(take_value(&mut args, "--baselines")?),
            "--history" => opts.history = PathBuf::from(take_value(&mut args, "--history")?),
            "--help" | "-h" => return Err("help".to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (see --help)"))
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if !opts.files.is_empty() && !opts.validate {
        return Err("positional FILE args only make sense with --validate".to_string());
    }
    if !(opts.check || opts.record || opts.write_baseline || opts.validate) {
        return Err(
            "nothing to do: pass --check, --record, --write-baseline, or --validate".to_string(),
        );
    }
    Ok(opts)
}

/// One readable BENCH file: where it came from and its parsed tree.
struct FamilyFile {
    family: &'static str,
    source: String,
    smoke: bool,
    tree: Value,
}

/// Loads the freshest readable file for `family` (full first, then the
/// smoke variant when `allow_smoke`).
fn load_family(family: &'static str, allow_smoke: bool) -> Option<Result<FamilyFile, String>> {
    let (_, full, smoke_path) = FAMILIES.iter().find(|(f, _, _)| *f == family)?;
    let mut candidates = vec![(*full, false)];
    if allow_smoke && !smoke_path.is_empty() {
        candidates.push((*smoke_path, true));
    }
    for (path, smoke) in candidates {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        return Some(
            json::parse_lenient(&text)
                .map(|tree| FamilyFile {
                    family,
                    source: path.to_string(),
                    smoke,
                    tree,
                })
                .map_err(|e| format!("{path}: {e}")),
        );
    }
    None
}

/// Flattens one family's report into `(metric, value)` rows — the one
/// schema every family shares. Timing metrics end in `_ns`/`_ms`; the
/// rest are counts and ratios.
fn normalize(file: &FamilyFile) -> Vec<(String, Value)> {
    let mut metrics = Vec::new();
    let t = &file.tree;
    match file.family {
        "suite" => {
            if let Some(totals) = t.get("totals").and_then(Value::as_obj) {
                for (k, v) in totals {
                    metrics.push((k.clone(), v.clone()));
                }
            }
        }
        "scale" => {
            for size in t.get("sizes").and_then(Value::as_arr).unwrap_or(&[]) {
                let Some(name) = size.get("name").and_then(Value::as_str) else {
                    continue;
                };
                for key in [
                    "walk_callgraph_ns",
                    "summary_callgraph_ns",
                    "summary_callgraph_jobs8_ns",
                    "rounds",
                    "worklist_pops",
                    "ready_drains",
                ] {
                    if let Some(v) = size.get(key) {
                        metrics.push((format!("{name}_{key}"), v.clone()));
                    }
                }
            }
        }
        "incremental" => {
            for size in t.get("sizes").and_then(Value::as_arr).unwrap_or(&[]) {
                let Some(name) = size.get("name").and_then(Value::as_str) else {
                    continue;
                };
                for key in [
                    "cold_ns",
                    "warm_ns",
                    "one_changed_ns",
                    "warm_speedup",
                    "one_changed_speedup",
                ] {
                    if let Some(v) = size.get(key) {
                        metrics.push((format!("{name}_{key}"), v.clone()));
                    }
                }
                for entry in size.get("k_changed").and_then(Value::as_arr).unwrap_or(&[]) {
                    if let (Some(k), Some(ns)) =
                        (entry.get("k").and_then(Value::as_f64), entry.get("ns"))
                    {
                        metrics.push((format!("{name}_k{}_changed_ns", k as u64), ns.clone()));
                    }
                }
                if let Some(phases) = size.get("one_changed_phases").and_then(Value::as_obj) {
                    for (key, v) in phases {
                        metrics.push((format!("{name}_one_changed_{key}"), v.clone()));
                    }
                }
            }
        }
        "fuzz" => {
            for key in ["cases", "full_matrix_cases", "error_outcome_cases", "divergences", "elapsed_ms"] {
                if let Some(v) = t.get(key) {
                    metrics.push((key.to_string(), v.clone()));
                }
            }
        }
        _ => unreachable!("unknown family"),
    }
    metrics
}

/// Builds the normalized history line for one family file.
fn history_line(file: &FamilyFile) -> String {
    let host = file.tree.get("host").cloned().unwrap_or_else(|| {
        json::parse(&host_meta_json()).expect("host meta renders valid JSON")
    });
    let mut fields = vec![
        ("schema".to_string(), Value::Str(REPORT_SCHEMA.to_string())),
        ("family".to_string(), Value::Str(file.family.to_string())),
        ("source".to_string(), Value::Str(file.source.clone())),
        ("smoke".to_string(), Value::Bool(file.smoke)),
        ("host".to_string(), host),
    ];
    if let Some(samples) = file.tree.get("samples") {
        fields.push(("samples".to_string(), samples.clone()));
    }
    fields.push((
        "metrics".to_string(),
        Value::Obj(normalize(file)),
    ));
    Value::Obj(fields).render()
}

/// The recomputed golden rows: `(program, counters)` in paper order.
fn golden_counters() -> Vec<(&'static str, Vec<(&'static str, u64)>)> {
    ddm_benchmarks::suite()
        .iter()
        .map(|b| (b.name, capture_counters(b.source).rows().to_vec()))
        .collect()
}

fn write_baseline(opts: &Options) -> Result<(), String> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
    out.push_str("  \"programs\": [\n");
    let golden = golden_counters();
    for (i, (name, rows)) in golden.iter().enumerate() {
        let _ = write!(out, "    {{\"name\": \"{name}\", \"counters\": {{");
        for (k, (key, value)) in rows.iter().enumerate() {
            let _ = write!(out, "\"{key}\": {value}");
            if k + 1 < rows.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}}");
        out.push_str(if i + 1 < golden.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"timings\": {\n");
    let mut lines = Vec::new();
    for (family, _, _) in FAMILIES {
        match load_family(family, opts.smoke) {
            Some(Ok(file)) => {
                lines.push(format!(
                    "    \"{family}\": {}",
                    Value::Obj(normalize(&file)).render()
                ));
            }
            Some(Err(e)) => return Err(e),
            None => println!("write-baseline: no {family} file, family skipped"),
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }\n}\n");
    json::validate(&out).map_err(|e| format!("baseline render is invalid JSON: {e}"))?;
    std::fs::write(&opts.baselines, out)
        .map_err(|e| format!("write {}: {e}", opts.baselines.display()))?;
    println!(
        "wrote {} ({} programs)",
        opts.baselines.display(),
        golden_counters().len()
    );
    Ok(())
}

/// The counter gate: recomputes the 11 suite programs in-process and
/// diffs them against the committed baseline, key by key. Any drift —
/// changed value, missing program, missing or extra key — is a hard
/// failure, because these numbers are engine-, jobs-, and
/// cache-invariant by construction.
fn check_counters(baseline: &Value, failures: &mut Vec<String>) {
    let Some(programs) = baseline.get("programs").and_then(Value::as_arr) else {
        failures.push("baseline has no \"programs\" array".to_string());
        return;
    };
    let golden = golden_counters();
    for (name, rows) in &golden {
        let Some(base) = programs
            .iter()
            .find(|p| p.get("name").and_then(Value::as_str) == Some(name))
        else {
            failures.push(format!(
                "program `{name}` missing from baselines (run --write-baseline after reviewing)"
            ));
            continue;
        };
        let Some(base_counters) = base.get("counters").and_then(Value::as_obj) else {
            failures.push(format!("program `{name}` has no counters object"));
            continue;
        };
        for (key, value) in rows {
            match base_counters.iter().find(|(k, _)| k == key) {
                Some((_, Value::Int(b))) if *b == *value as i64 => {}
                Some((_, b)) => failures.push(format!(
                    "counter drift: {name}.{key} = {value}, baseline {}",
                    b.render()
                )),
                None => failures.push(format!(
                    "counter drift: {name}.{key} = {value}, missing from baseline"
                )),
            }
        }
        for (key, _) in base_counters {
            if !rows.iter().any(|(k, _)| k == key) {
                failures.push(format!(
                    "counter drift: baseline key {name}.{key} no longer reported"
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "counter gate: {} programs x {} counters identical to baseline",
            golden.len(),
            golden.first().map_or(0, |(_, rows)| rows.len())
        );
    }
}

/// The timing comparison: warn-only, both directions, `_ns`/`_ms` keys.
/// Non-timing metrics (counts, ratios) that changed are reported too,
/// but never fail the gate — only the recomputed counter diff does.
fn check_timings(baseline: &Value, opts: &Options, warnings: &mut Vec<String>) {
    let Some(timings) = baseline.get("timings").and_then(Value::as_obj) else {
        return;
    };
    for (family, base_metrics) in timings {
        let family: &'static str = match FAMILIES.iter().find(|(f, _, _)| f == family) {
            Some((f, _, _)) => f,
            None => continue,
        };
        let file = match load_family(family, opts.smoke) {
            Some(Ok(file)) => file,
            Some(Err(e)) => {
                warnings.push(format!("{family}: unreadable report ({e})"));
                continue;
            }
            None => {
                println!("timing gate: no {family} file, family skipped");
                continue;
            }
        };
        let current = normalize(&file);
        let mut compared = 0usize;
        for (key, base_value) in base_metrics.as_obj().into_iter().flatten() {
            let Some((_, cur_value)) = current.iter().find(|(k, _)| k == key) else {
                continue; // smoke fallbacks measure fewer sizes
            };
            compared += 1;
            if key.ends_with("_ns") || key.ends_with("_ms") {
                let (Some(base), Some(cur)) = (base_value.as_f64(), cur_value.as_f64()) else {
                    continue;
                };
                let ratio = cur / base.max(f64::EPSILON);
                if ratio > TIMING_WARN_RATIO || ratio < 1.0 / TIMING_WARN_RATIO {
                    warnings.push(format!(
                        "timing drift (warn-only): {family}.{key} {cur:.0} vs baseline {base:.0} ({ratio:.2}x)"
                    ));
                }
            } else if cur_value != base_value {
                warnings.push(format!(
                    "metric changed (warn-only): {family}.{key} {} vs baseline {}",
                    cur_value.render(),
                    base_value.render()
                ));
            }
        }
        println!("timing gate: {family} compared {compared} metrics from {}", file.source);
    }
}

fn check(opts: &Options) -> Result<bool, String> {
    let text = std::fs::read_to_string(&opts.baselines).map_err(|_| {
        format!(
            "no baseline file {} (run `bench_report --write-baseline` and commit it)",
            opts.baselines.display()
        )
    })?;
    let baseline = json::parse_lenient(&text).map_err(|e| format!("{}: {e}", opts.baselines.display()))?;
    if baseline.get("schema").and_then(Value::as_str) != Some(BASELINE_SCHEMA) {
        return Err(format!(
            "{} is not a {BASELINE_SCHEMA} document",
            opts.baselines.display()
        ));
    }
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    check_counters(&baseline, &mut failures);
    check_timings(&baseline, opts, &mut warnings);
    for w in &warnings {
        println!("warning: {w}");
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    Ok(failures.is_empty())
}

fn record(opts: &Options) -> Result<usize, String> {
    let mut lines = Vec::new();
    for (family, _, _) in FAMILIES {
        match load_family(family, opts.smoke) {
            Some(Ok(file)) => {
                println!("record: {family} from {}", file.source);
                lines.push(history_line(&file));
            }
            Some(Err(e)) => return Err(e),
            None => println!("record: no {family} file, family skipped"),
        }
    }
    if lines.is_empty() {
        return Err("record: no BENCH_*.json file found in the current directory".to_string());
    }
    let mut text = lines.join("\n");
    text.push('\n');
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.history)
        .map_err(|e| format!("open {}: {e}", opts.history.display()))?;
    f.write_all(text.as_bytes())
        .map_err(|e| format!("append {}: {e}", opts.history.display()))?;
    println!("appended {} line(s) to {}", lines.len(), opts.history.display());
    Ok(lines.len())
}

fn validate_tree(opts: &Options) -> Vec<String> {
    let mut problems = Vec::new();
    let mut check_file = |path: &Path| {
        let Ok(text) = std::fs::read_to_string(path) else {
            return false;
        };
        if let Err(e) = json::validate(&text) {
            problems.push(format!("{}: {e}", path.display()));
        }
        true
    };
    let mut seen = 0;
    for (_, full, smoke) in FAMILIES {
        if check_file(Path::new(full)) {
            seen += 1;
        }
        if !smoke.is_empty() && check_file(Path::new(smoke)) {
            seen += 1;
        }
    }
    if check_file(&opts.baselines) {
        seen += 1;
    }
    if let Ok(history) = std::fs::read_to_string(&opts.history) {
        seen += 1;
        for (i, line) in history.lines().enumerate() {
            if let Err(e) = json::validate(line) {
                problems.push(format!("{} line {}: {e}", opts.history.display(), i + 1));
            }
        }
    }
    for path in &opts.files {
        let Ok(text) = std::fs::read_to_string(path) else {
            problems.push(format!("{}: unreadable", path.display()));
            continue;
        };
        seen += 1;
        let line_wise = path
            .extension()
            .is_some_and(|e| e == "ndjson" || e == "jsonl");
        if line_wise {
            for (i, line) in text.lines().enumerate() {
                if let Err(e) = json::validate(line) {
                    problems.push(format!("{} line {}: {e}", path.display(), i + 1));
                }
            }
        } else if let Err(e) = json::validate(&text) {
            problems.push(format!("{}: {e}", path.display()));
        }
    }
    println!("validate: {seen} file(s) checked, {} problem(s)", problems.len());
    problems
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e == "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    println!(
        "bench_report on {} cpu(s), jobs8_effective {}",
        host_cpus(),
        ddm_bench::effective_jobs(8)
    );

    let mut ok = true;
    if opts.validate {
        let problems = validate_tree(&opts);
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        ok &= problems.is_empty();
    }
    if opts.write_baseline {
        if let Err(e) = write_baseline(&opts) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if opts.check {
        match check(&opts) {
            Ok(clean) => ok &= clean,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.record {
        if let Err(e) = record(&opts) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
