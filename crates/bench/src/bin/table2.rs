//! Regenerates the paper's **Table 2**: execution characteristics — the
//! space occupied by objects created during execution, the space
//! occupied by dead data members in those objects, the high-water mark,
//! and the high-water mark with dead members eliminated. All byte
//! counts use the documented 32-bit 1998-era object model.

use ddm_bench::{jobs_from_args, measure_suite_jobs, paper_cell};

fn main() {
    let rows = measure_suite_jobs(jobs_from_args()).expect("benchmark suite must measure cleanly");
    println!("Table 2: Execution characteristics of the benchmark programs (bytes)");
    println!("(measured on this reproduction's scaled workloads; paper values in parentheses)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "name", "obj space", "dead space", "high water", "HWM w/o dead"
    );
    for m in &rows {
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>14}",
            m.name,
            m.profile.object_space,
            m.profile.dead_member_space,
            m.profile.high_water_mark,
            m.profile.high_water_mark_without_dead,
        );
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>14}",
            "  (paper)",
            paper_cell(m.paper.object_space),
            paper_cell(m.paper.dead_space),
            paper_cell(m.paper.high_water_mark),
            paper_cell(m.paper.high_water_mark_without_dead),
        );
    }
    println!("\nnote: sched and hotwire hold all objects until exit, so their high-water");
    println!("mark equals total object space — the same pattern the paper observes.");
}
