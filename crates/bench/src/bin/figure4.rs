//! Regenerates the paper's **Figure 4**: for each benchmark, the
//! percentage of object space occupied by dead data members (light-grey
//! bar) and the percentage reduction of the high-water mark if dead
//! members are eliminated (dark-grey bar). The paper's headline: up to
//! 11.6% of object space (average 4.4%; average HWM reduction 4.9%),
//! and no strong correlation with the static percentages of Figure 3.

use ddm_bench::{bar, jobs_from_args, measure_suite_jobs};

fn main() {
    let rows = measure_suite_jobs(jobs_from_args()).expect("benchmark suite must measure cleanly");
    println!("Figure 4: Percentage of object space occupied by dead data members\n");
    println!(
        "{:<10} {:>10} {:>10}   bars: space `#` / HWM-reduction `=`",
        "name", "space %", "HWM red %"
    );
    for m in &rows {
        let space_pct = m.profile.dead_space_percentage();
        let hwm_pct = m.profile.high_water_mark_reduction();
        println!(
            "{:<10} {:>9.1}% {:>9.1}%   {}",
            m.name,
            space_pct,
            hwm_pct,
            bar(space_pct, 3.0)
        );
        println!(
            "{:<10} {:>10} {:>10}   {}",
            "",
            "",
            "",
            "=".repeat((hwm_pct * 3.0).round() as usize)
        );
    }
    let nontrivial: Vec<_> = rows
        .iter()
        .filter(|m| !ddm_benchmarks::TRIVIAL.contains(&m.name))
        .collect();
    let avg_space = nontrivial
        .iter()
        .map(|m| m.profile.dead_space_percentage())
        .sum::<f64>()
        / nontrivial.len() as f64;
    let avg_hwm = nontrivial
        .iter()
        .map(|m| m.profile.high_water_mark_reduction())
        .sum::<f64>()
        / nontrivial.len() as f64;
    let max_space = nontrivial
        .iter()
        .map(|m| m.profile.dead_space_percentage())
        .fold(0.0f64, f64::max);

    // The paper's "no strong correlation" observation: rank correlation
    // between static dead % and dynamic dead-space %.
    let rho = spearman(
        &nontrivial.iter().map(|m| m.dead_pct).collect::<Vec<_>>(),
        &nontrivial
            .iter()
            .map(|m| m.profile.dead_space_percentage())
            .collect::<Vec<_>>(),
    );
    println!(
        "\nnon-trivial benchmarks: average {avg_space:.1}% of object space dead (paper: 4.4%),"
    );
    println!(
        "maximum {max_space:.1}% (paper: 11.6%), average HWM reduction {avg_hwm:.1}% (paper: 4.9%)"
    );
    println!("Spearman rank correlation between Figure 3 and Figure 4 values: {rho:.2}");
    println!("(the paper: \"no strong correlation between a high percentage of dead data");
    println!(" members and a high percentage of object space occupied by those members\")");
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs"));
    let mut out = vec![0.0; xs.len()];
    for (rank, &i) in idx.iter().enumerate() {
        out[i] = rank as f64;
    }
    out
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}
