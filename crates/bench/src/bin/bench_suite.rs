//! Engine comparison over the whole benchmark suite: per-program wall
//! time for call-graph construction and the liveness analysis, for both
//! engines (walk vs. summary) at 1 and 8 workers.
//!
//! For the walk engine the call-graph phase is `MemberLookup` + the
//! re-walking fixpoint; for the summary engine it is summary extraction
//! (the only AST traversal of the run) + worklist replay, so the
//! comparison charges extraction where it actually happens.
//!
//! ```text
//! bench_suite [--json] [--samples N]
//! ```
//!
//! `--json` additionally writes `BENCH_suite.json` (machine-readable,
//! consumed by `ci.sh` as a smoke check). Timings are minima over `N`
//! samples (default 9) — the least noisy estimator for deterministic
//! CPU-bound work.

use ddm_bench::{capture_counters, effective_jobs, host_meta_json, suite_analysis_config, timing};
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_core::{AnalysisConfig, DeadMemberAnalysis};
use ddm_hierarchy::{MemberLookup, Program, ProgramSummary};
use ddm_telemetry::Counters;
use std::time::Duration;

struct Cell {
    callgraph: Duration,
    analysis: Duration,
}

impl Cell {
    fn total(&self) -> Duration {
        self.callgraph + self.analysis
    }
}

struct Row {
    name: &'static str,
    functions: usize,
    // [engine][jobs-index]: engines are [walk, summary], jobs are [1, 8].
    cells: [[Cell; 2]; 2],
    /// Deterministic analysis counters — identical for every engine and
    /// jobs value, so one capture per program is exact, not sampled.
    counters: Counters,
}

const JOBS: [usize; 2] = [1, 8];
const ENGINES: [&str; 2] = ["walk", "summary"];

fn suite_config() -> AnalysisConfig {
    suite_analysis_config()
}

fn measure(program: &Program, samples: usize) -> [[Cell; 2]; 2] {
    let options = CallGraphOptions {
        algorithm: Algorithm::Rta,
        ..Default::default()
    };
    // Worker counts are clamped to the machine's parallelism: the
    // "jobs8" column measures the sharded schedule, not thread
    // oversubscription on a smaller host (the artifacts are identical
    // either way).
    let walk = JOBS.map(|jobs| {
        let jobs = effective_jobs(jobs);
        let (callgraph, _) = timing::time(samples, || {
            let lookup = MemberLookup::new(program);
            CallGraph::build(program, &lookup, &options).unwrap()
        });
        let lookup = MemberLookup::new(program);
        let graph = CallGraph::build(program, &lookup, &options).unwrap();
        let analysis = DeadMemberAnalysis::new(program, suite_config());
        let (liveness, _) = timing::time(samples, || analysis.run_jobs(&graph, jobs).unwrap());
        Cell {
            callgraph,
            analysis: liveness,
        }
    });
    let summary_cells = JOBS.map(|jobs| {
        let jobs = effective_jobs(jobs);
        let (callgraph, _) = timing::time(samples, || {
            let summary = ProgramSummary::build(program, false, jobs);
            CallGraph::build_from_summary(program, &summary, &options).unwrap()
        });
        let summary = ProgramSummary::build(program, false, jobs);
        let graph = CallGraph::build_from_summary(program, &summary, &options).unwrap();
        let analysis = DeadMemberAnalysis::new(program, suite_config());
        let (liveness, _) = timing::time(samples, || analysis.run_summary(&summary, &graph).unwrap());
        Cell {
            callgraph,
            analysis: liveness,
        }
    });
    [walk, summary_cells]
}

fn total_for(rows: &[Row], engine: usize, jobs_ix: usize) -> Duration {
    rows.iter().map(|r| r.cells[engine][jobs_ix].total()).sum()
}

fn json_escape_free(name: &str) -> &str {
    // Benchmark names are ASCII identifiers; assert rather than escape.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
        "benchmark name {name:?} needs JSON escaping"
    );
    name
}

fn render_json(rows: &[Row], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm-benchmarks\",\n");
    out.push_str("  \"algorithm\": \"rta\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"jobs8_effective\": {},\n", effective_jobs(8)));
    out.push_str(&format!("  \"host\": {},\n", host_meta_json()));
    out.push_str("  \"programs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"functions\": {}, \"engines\": {{",
            json_escape_free(row.name),
            row.functions
        ));
        for (e, engine) in ENGINES.iter().enumerate() {
            out.push_str(&format!("\"{engine}\": {{"));
            for (j, jobs) in JOBS.iter().enumerate() {
                let c = &row.cells[e][j];
                out.push_str(&format!(
                    "\"jobs{jobs}\": {{\"callgraph_ns\": {}, \"analysis_ns\": {}, \"total_ns\": {}}}",
                    c.callgraph.as_nanos(),
                    c.analysis.as_nanos(),
                    c.total().as_nanos()
                ));
                if j + 1 < JOBS.len() {
                    out.push_str(", ");
                }
            }
            out.push('}');
            if e + 1 < ENGINES.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}, \"counters\": {");
        let counter_rows = row.counters.rows();
        for (k, (key, value)) in counter_rows.iter().enumerate() {
            out.push_str(&format!("\"{key}\": {value}"));
            if k + 1 < counter_rows.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"totals\": {\n");
    for (j, jobs) in JOBS.iter().enumerate() {
        let walk = total_for(rows, 0, j);
        let summary = total_for(rows, 1, j);
        let speedup = walk.as_secs_f64() / summary.as_secs_f64().max(f64::EPSILON);
        out.push_str(&format!(
            "    \"walk_jobs{jobs}_ns\": {}, \"summary_jobs{jobs}_ns\": {}, \"speedup_jobs{jobs}\": {:.2}",
            walk.as_nanos(),
            summary.as_nanos(),
            speedup
        ));
        out.push_str(if j + 1 < JOBS.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(9);

    let mut rows = Vec::new();
    for b in ddm_benchmarks::suite() {
        let tu = ddm_cppfront::parse(b.source).unwrap();
        let program = Program::build(&tu).unwrap();
        let cells = measure(&program, samples);
        rows.push(Row {
            name: b.name,
            functions: program.functions().count(),
            cells,
            counters: capture_counters(b.source),
        });
    }

    println!(
        "{:<12} {:>6}  {:>22}  {:>22}  {:>8}",
        "program", "funcs", "walk cg+analysis (j1)", "summary cg+analysis (j1)", "speedup"
    );
    for row in &rows {
        let walk = row.cells[0][0].total();
        let summary = row.cells[1][0].total();
        println!(
            "{:<12} {:>6}  {:>22.1?}  {:>22.1?}  {:>7.2}x",
            row.name,
            row.functions,
            walk,
            summary,
            walk.as_secs_f64() / summary.as_secs_f64().max(f64::EPSILON)
        );
    }
    for (j, jobs) in JOBS.iter().enumerate() {
        let walk = total_for(&rows, 0, j);
        let summary = total_for(&rows, 1, j);
        println!(
            "total (jobs={jobs}): walk {:.1?}  summary {:.1?}  speedup {:.2}x",
            walk,
            summary,
            walk.as_secs_f64() / summary.as_secs_f64().max(f64::EPSILON)
        );
    }

    if json {
        let path = "BENCH_suite.json";
        std::fs::write(path, render_json(&rows, samples)).expect("write BENCH_suite.json");
        println!("wrote {path}");
    }
}
