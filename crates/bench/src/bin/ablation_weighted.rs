//! §4.2 ablation: the paper reports its static percentages *unweighted*
//! ("we believe that taking the size of data members into account for
//! the static measurements is not meaningful, because there is no way to
//! take into account statically how many times each class is
//! instantiated"). This binary computes both the unweighted (Figure 3)
//! and the size-weighted static percentage, next to the *dynamic*
//! percentage (Figure 4) that weighting actually tries to approximate —
//! showing that the weighted static number is no better a predictor of
//! the dynamic one, which supports the paper's choice.

use ddm_dynamic::{profile_trace, Interpreter, RunConfig};

fn main() {
    println!("Static weighting ablation (§4.2)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "name", "unweighted%", "weighted%", "dynamic%"
    );
    let mut rows = Vec::new();
    for b in ddm_benchmarks::suite() {
        let run = b.analyze().expect("suite analyzes cleanly");
        let report = run.report();
        let unweighted = report.dead_percentage();
        let weighted = report.weighted_dead_percentage(run.program(), run.liveness());
        let exec = Interpreter::new(run.program())
            .run(&RunConfig::default())
            .expect("suite runs cleanly");
        let profile = profile_trace(run.program(), &exec.trace, run.liveness());
        let dynamic = profile.dead_space_percentage();
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            b.name, unweighted, weighted, dynamic
        );
        rows.push((unweighted, weighted, dynamic));
    }
    let err = |xs: &dyn Fn(&(f64, f64, f64)) -> f64| -> f64 {
        rows.iter().map(|r| (xs(r) - r.2).abs()).sum::<f64>() / rows.len() as f64
    };
    let unweighted_err = err(&|r| r.0);
    let weighted_err = err(&|r| r.1);
    println!(
        "\nmean |static − dynamic| error: unweighted {unweighted_err:.1} points, weighted {weighted_err:.1} points"
    );
    println!("Weighting by member size barely moves the static numbers toward the");
    println!("run-time picture: instantiation counts dominate and are unknowable");
    println!("statically — the paper's §4.2 rationale for reporting unweighted values.");
}
