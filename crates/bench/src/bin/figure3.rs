//! Regenerates the paper's **Figure 3**: the percentage of dead data
//! members detected in each benchmark's used classes (static,
//! unweighted). The paper's headline: 0% for the two trivial
//! benchmarks, up to 27.3% for library users, average 12.5% over the
//! nine non-trivial programs.

use ddm_bench::{bar, jobs_from_args, measure_suite_jobs, paper_cell};

fn main() {
    let rows = measure_suite_jobs(jobs_from_args()).expect("benchmark suite must measure cleanly");
    println!("Figure 3: Percentage of dead data members detected in the benchmark programs\n");
    println!(
        "{:<10} {:>7} {:>9} {:>9}  bar (measured)",
        "name", "dead", "dead %", "paper %"
    );
    for m in &rows {
        println!(
            "{:<10} {:>3}/{:<3} {:>8.1}% {:>9}  {}",
            m.name,
            m.dead_members,
            m.members,
            m.dead_pct,
            paper_cell(m.paper.dead_pct.map(|p| format!("{p:.1}%"))),
            bar(m.dead_pct, 1.5),
        );
    }
    let nontrivial: Vec<&ddm_bench::Measured> = rows
        .iter()
        .filter(|m| !ddm_benchmarks::TRIVIAL.contains(&m.name))
        .collect();
    let avg: f64 = nontrivial.iter().map(|m| m.dead_pct).sum::<f64>() / nontrivial.len() as f64;
    let max = nontrivial.iter().map(|m| m.dead_pct).fold(0.0f64, f64::max);
    println!(
        "\nnon-trivial benchmarks: average {avg:.1}% dead (paper: 12.5%), maximum {max:.1}% (paper: 27.3%)"
    );
}
