//! Incremental re-analysis benchmark for the multi-TU project pipeline:
//! generated N-TU projects where every TU repeats the shared header (the
//! front end has no preprocessor) and contributes its own free
//! functions, called from the driver TU through cross-TU prototypes.
//!
//! For each project size the driver times three scenarios against the
//! persistent summary cache:
//!
//! * **cold** — empty cache: every TU is parsed, summarized, and written
//!   back;
//! * **warm** — populated cache: zero TUs are parsed or summarized
//!   (asserted in-binary), only the link + fixpoint phases run;
//! * **1-of-N changed** — one TU's content is modified before each
//!   sample, so exactly one TU misses and is recomputed while the other
//!   N−1 hit.
//!
//! Warm runs must also produce the byte-identical report to a cold run —
//! the cache may only change wall-clock, never output.
//!
//! ```text
//! bench_incremental [--json] [--samples N] [--smoke]
//! ```
//!
//! `--json` writes `BENCH_incremental.json`. `--smoke` runs only the
//! smallest size with one sample and fails if it exceeds a wall-clock
//! ceiling — the CI gate.

use ddm_bench::{host_meta_json, timing};
use ddm_callgraph::Algorithm;
use ddm_core::{AnalysisConfig, Engine, ProjectPipeline};
use ddm_telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for `--smoke` (generation + all three scenarios).
const SMOKE_CEILING: Duration = Duration::from_secs(30);

#[derive(Clone, Copy)]
struct ProjectConfig {
    /// Translation units, including the driver TU.
    tus: usize,
    /// Classes in the shared header (a single-inheritance chain).
    classes: usize,
    /// Free functions defined by each non-driver TU.
    fns_per_tu: usize,
}

struct SizeResult {
    name: &'static str,
    config: ProjectConfig,
    functions: usize,
    cold: Duration,
    warm: Duration,
    one_changed: Duration,
}

fn sizes(smoke: bool) -> Vec<(&'static str, ProjectConfig)> {
    let mut v = vec![(
        "small",
        ProjectConfig {
            tus: 8,
            classes: 4,
            fns_per_tu: 6,
        },
    )];
    if !smoke {
        v.push((
            "medium",
            ProjectConfig {
                tus: 24,
                classes: 6,
                fns_per_tu: 10,
            },
        ));
        v.push((
            "large",
            ProjectConfig {
                tus: 64,
                classes: 8,
                fns_per_tu: 12,
            },
        ));
    }
    v
}

/// The shared header: a single-inheritance chain where every class adds
/// one live member (read by `get`) and one dead member (only written).
fn header(classes: usize) -> String {
    let mut h = String::new();
    for c in 0..classes {
        let base = if c == 0 {
            String::new()
        } else {
            format!(" : public C{}", c - 1)
        };
        let init = if c == 0 {
            format!("m{c}(v), d{c}(0)")
        } else {
            format!("C{}(v), m{c}(v), d{c}(0)", c - 1)
        };
        let get = {
            // Each override reads its own member plus every inherited
            // one, keeping all `m*` live at every instantiation depth.
            let sum: Vec<String> = (0..=c).map(|i| format!("m{i}")).collect();
            format!("return {};", sum.join(" + "))
        };
        let _ = writeln!(
            h,
            "class C{c}{base} {{\npublic:\n    C{c}(int v) : {init} {{ }}\n    \
             virtual ~C{c}() {{ }}\n    virtual int get() {{ {get} }}\n    \
             int m{c};\n    int d{c};\n}};"
        );
    }
    h
}

/// Generates the project: TU 0 is the driver (prototypes + `main`),
/// TUs 1..N each define `fns_per_tu` free functions over the hierarchy.
fn generate_project(config: &ProjectConfig) -> Vec<(String, String)> {
    let header = header(config.classes);
    let top = config.classes - 1;
    let mut inputs = Vec::with_capacity(config.tus);

    let mut driver = header.clone();
    for t in 1..config.tus {
        for f in 0..config.fns_per_tu {
            let _ = writeln!(driver, "int tu{t}_f{f}(C0* o);");
        }
    }
    let _ = writeln!(driver, "int main() {{");
    let _ = writeln!(driver, "    C0* o = new C{top}(5);");
    let _ = writeln!(driver, "    int r = 0;");
    for t in 1..config.tus {
        for f in 0..config.fns_per_tu {
            let _ = writeln!(driver, "    r = r + tu{t}_f{f}(o);");
        }
    }
    let _ = writeln!(driver, "    delete o;");
    let _ = writeln!(driver, "    return r;");
    let _ = writeln!(driver, "}}");
    inputs.push(("driver.cpp".to_string(), driver));

    for t in 1..config.tus {
        let mut tu = header.clone();
        for f in 0..config.fns_per_tu {
            let _ = writeln!(
                tu,
                "int tu{t}_f{f}(C0* o) {{ o->d0 = {f}; return o->get() + {f}; }}"
            );
        }
        inputs.push((format!("tu{t}.cpp"), tu));
    }
    inputs
}

fn run(inputs: &[(String, String)], cache: &Path, telemetry: &Telemetry) -> ProjectPipeline {
    ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        Algorithm::Rta,
        1,
        Engine::Summary,
        Some(cache),
        telemetry,
    )
    .expect("project run")
}

fn measure(name: &'static str, config: ProjectConfig, samples: usize) -> SizeResult {
    let inputs = generate_project(&config);
    let cache = std::env::temp_dir().join(format!(
        "ddm-bench-incr-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache);

    // Correctness first: a warm run reuses every module and reproduces
    // the cold report byte for byte.
    let cold_tel = Telemetry::enabled();
    let cold_report = run(&inputs, &cache, &cold_tel).report().to_string();
    assert_eq!(cold_tel.stats().tus_summarized, inputs.len() as u64);
    let warm_tel = Telemetry::enabled();
    let warm_report = run(&inputs, &cache, &warm_tel).report().to_string();
    let warm_stats = warm_tel.stats();
    assert_eq!(warm_stats.tus_summarized, 0, "{name}: warm run re-summarized");
    assert_eq!(warm_stats.tu_cache_hits, inputs.len() as u64);
    assert_eq!(warm_report, cold_report, "{name}: warm report drifted");
    let functions = {
        let p = run(&inputs, &cache, &Telemetry::disabled());
        p.program().function_count()
    };

    // Cold: empty the cache before every sample.
    let (cold, _) = timing::time(samples, || {
        let _ = std::fs::remove_dir_all(&cache);
        run(&inputs, &cache, &Telemetry::disabled())
    });

    // Warm: the cache is fully populated by the last cold sample.
    let (warm, _) = timing::time(samples, || run(&inputs, &cache, &Telemetry::disabled()));

    // 1-of-N changed: give TU 1 per-sample-unique content so exactly one
    // TU misses in every sample (an unreachable padding function keeps
    // the analysed behaviour identical while changing the content hash).
    let mut edition = 0usize;
    let mut edited = inputs.clone();
    let (one_changed, _) = timing::time(samples, || {
        edition += 1;
        edited[1].1 = format!("{}int pad{edition}() {{ return {edition}; }}\n", inputs[1].1);
        let tel = Telemetry::enabled();
        let p = run(&edited, &cache, &tel);
        let stats = tel.stats();
        assert_eq!(stats.tu_cache_misses, 1, "{name}: expected exactly one miss");
        assert_eq!(stats.tu_cache_hits, inputs.len() as u64 - 1);
        p
    });

    let _ = std::fs::remove_dir_all(&cache);
    SizeResult {
        name,
        config,
        functions,
        cold,
        warm,
        one_changed,
    }
}

fn render_json(results: &[SizeResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm-benchmarks incremental project cache\",\n");
    out.push_str("  \"engine\": \"summary\",\n");
    out.push_str("  \"algorithm\": \"rta\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    let _ = writeln!(out, "  \"host\": {},", host_meta_json());
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.config;
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"tus\": {}, \"classes\": {}, \"fns_per_tu\": {}, \"functions\": {},\n     \
             \"cold_ns\": {}, \"warm_ns\": {}, \"one_changed_ns\": {},\n     \
             \"warm_speedup\": {:.2}, \"one_changed_speedup\": {:.2}}}",
            r.name,
            c.tus,
            c.classes,
            c.fns_per_tu,
            r.functions,
            r.cold.as_nanos(),
            r.warm.as_nanos(),
            r.one_changed.as_nanos(),
            r.cold.as_secs_f64() / r.warm.as_secs_f64().max(f64::EPSILON),
            r.cold.as_secs_f64() / r.one_changed.as_secs_f64().max(f64::EPSILON),
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(if smoke { 1 } else { 5 });

    let started = Instant::now();
    let results: Vec<SizeResult> = sizes(smoke)
        .into_iter()
        .map(|(name, config)| measure(name, config, samples))
        .collect();

    println!(
        "{:<8} {:>5} {:>8} {:>14} {:>14} {:>16} {:>8} {:>8}",
        "size", "tus", "funcs", "cold", "warm", "1-of-N changed", "warm x", "1chg x"
    );
    for r in &results {
        println!(
            "{:<8} {:>5} {:>8} {:>14.1?} {:>14.1?} {:>16.1?} {:>8.2} {:>8.2}",
            r.name,
            r.config.tus,
            r.functions,
            r.cold,
            r.warm,
            r.one_changed,
            r.cold.as_secs_f64() / r.warm.as_secs_f64().max(f64::EPSILON),
            r.cold.as_secs_f64() / r.one_changed.as_secs_f64().max(f64::EPSILON),
        );
    }

    if json {
        // The smoke run measures one size only — keep it away from the
        // committed full-sweep BENCH_incremental.json.
        let path = if smoke {
            "BENCH_incremental_smoke.json"
        } else {
            "BENCH_incremental.json"
        };
        std::fs::write(path, render_json(&results, samples)).expect("write incremental JSON");
        println!("wrote {path}");
    }

    if smoke {
        let elapsed = started.elapsed();
        assert!(
            elapsed < SMOKE_CEILING,
            "incremental smoke exceeded its wall-clock ceiling: {elapsed:.1?} >= {SMOKE_CEILING:?}"
        );
    }
}
