//! Incremental re-analysis benchmark for the multi-TU project pipeline:
//! generated N-TU projects where every TU repeats the shared header (the
//! front end has no preprocessor) and contributes its own free
//! functions, called from the driver TU through cross-TU prototypes.
//!
//! For each project size the driver times the scenarios against the
//! persistent summary cache and analysis snapshot:
//!
//! * **cold** — empty cache: every TU is parsed, summarized, and written
//!   back;
//! * **warm** — populated cache: zero TUs are parsed or summarized
//!   (asserted in-binary), and the snapshot replays the fixpoint;
//! * **k-of-N changed** for k ∈ {1, N/4, N} — k TUs' contents are
//!   modified before each sample, so exactly k TUs miss and are
//!   recomputed while the other N−k hit; k = 1 is the headline
//!   incremental number, k = N the change-everything floor.
//!
//! Warm runs must also produce the byte-identical report to a cold run —
//! the cache may only change wall-clock, never output. A per-phase
//! breakdown (front end / link / call graph / liveness) of a warm
//! 1-changed run is captured from the pipeline's phase timers.
//!
//! ```text
//! bench_incremental [--json] [--samples N] [--smoke]
//! ```
//!
//! `--json` writes `BENCH_incremental.json`. `--smoke` measures every
//! size with one sample, asserts the 1-changed speedup grows monotonely
//! with project size, and fails if the sweep exceeds a wall-clock
//! ceiling — the CI gate.

use ddm_bench::{host_meta_json, timing};
use ddm_callgraph::Algorithm;
use ddm_core::{AnalysisConfig, Engine, ProjectPipeline};
use ddm_telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for `--smoke` (generation + all three scenarios).
const SMOKE_CEILING: Duration = Duration::from_secs(30);

#[derive(Clone, Copy)]
struct ProjectConfig {
    /// Translation units, including the driver TU.
    tus: usize,
    /// Classes in the shared header (a single-inheritance chain).
    classes: usize,
    /// Free functions defined by each non-driver TU.
    fns_per_tu: usize,
}

/// One warm 1-changed run's per-phase wall-clock, from the pipeline's
/// phase timers.
struct PhaseBreakdown {
    frontend_ns: u64,
    link_ns: u64,
    callgraph_ns: u64,
    liveness_ns: u64,
}

struct SizeResult {
    name: &'static str,
    config: ProjectConfig,
    functions: usize,
    cold: Duration,
    warm: Duration,
    one_changed: Duration,
    /// `(k, wall-clock)` for the k-of-N changed axis, ascending in k.
    k_changed: Vec<(usize, Duration)>,
    phases: PhaseBreakdown,
}

impl SizeResult {
    fn one_changed_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.one_changed.as_secs_f64().max(f64::EPSILON)
    }
}

/// The change-set sizes measured per project: 1, N/4, and N.
fn k_axis(tus: usize) -> Vec<usize> {
    let mut ks = vec![1, (tus / 4).max(1), tus];
    ks.dedup();
    ks
}

fn sizes() -> Vec<(&'static str, ProjectConfig)> {
    vec![
        (
            "small",
            ProjectConfig {
                tus: 8,
                classes: 4,
                fns_per_tu: 6,
            },
        ),
        (
            "medium",
            ProjectConfig {
                tus: 24,
                classes: 6,
                fns_per_tu: 10,
            },
        ),
        (
            "large",
            ProjectConfig {
                tus: 64,
                classes: 8,
                fns_per_tu: 12,
            },
        ),
    ]
}

/// The shared header: a single-inheritance chain where every class adds
/// one live member (read by `get`) and one dead member (only written).
fn header(classes: usize) -> String {
    let mut h = String::new();
    for c in 0..classes {
        let base = if c == 0 {
            String::new()
        } else {
            format!(" : public C{}", c - 1)
        };
        let init = if c == 0 {
            format!("m{c}(v), d{c}(0)")
        } else {
            format!("C{}(v), m{c}(v), d{c}(0)", c - 1)
        };
        let get = {
            // Each override reads its own member plus every inherited
            // one, keeping all `m*` live at every instantiation depth.
            let sum: Vec<String> = (0..=c).map(|i| format!("m{i}")).collect();
            format!("return {};", sum.join(" + "))
        };
        let _ = writeln!(
            h,
            "class C{c}{base} {{\npublic:\n    C{c}(int v) : {init} {{ }}\n    \
             virtual ~C{c}() {{ }}\n    virtual int get() {{ {get} }}\n    \
             int m{c};\n    int d{c};\n}};"
        );
    }
    h
}

/// Generates the project: TU 0 is the driver (prototypes + `main`),
/// TUs 1..N each define `fns_per_tu` free functions over the hierarchy.
fn generate_project(config: &ProjectConfig) -> Vec<(String, String)> {
    let header = header(config.classes);
    let top = config.classes - 1;
    let mut inputs = Vec::with_capacity(config.tus);

    let mut driver = header.clone();
    for t in 1..config.tus {
        for f in 0..config.fns_per_tu {
            let _ = writeln!(driver, "int tu{t}_f{f}(C0* o);");
        }
    }
    let _ = writeln!(driver, "int main() {{");
    let _ = writeln!(driver, "    C0* o = new C{top}(5);");
    let _ = writeln!(driver, "    int r = 0;");
    for t in 1..config.tus {
        for f in 0..config.fns_per_tu {
            let _ = writeln!(driver, "    r = r + tu{t}_f{f}(o);");
        }
    }
    let _ = writeln!(driver, "    delete o;");
    let _ = writeln!(driver, "    return r;");
    let _ = writeln!(driver, "}}");
    inputs.push(("driver.cpp".to_string(), driver));

    for t in 1..config.tus {
        let mut tu = header.clone();
        for f in 0..config.fns_per_tu {
            let _ = writeln!(
                tu,
                "int tu{t}_f{f}(C0* o) {{ o->d0 = {f}; return o->get() + {f}; }}"
            );
        }
        inputs.push((format!("tu{t}.cpp"), tu));
    }
    inputs
}

fn run(inputs: &[(String, String)], cache: &Path, telemetry: &Telemetry) -> ProjectPipeline {
    ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        Algorithm::Rta,
        1,
        Engine::Summary,
        Some(cache),
        telemetry,
    )
    .expect("project run")
}

fn measure(name: &'static str, config: ProjectConfig, samples: usize) -> SizeResult {
    let inputs = generate_project(&config);
    let cache = std::env::temp_dir().join(format!(
        "ddm-bench-incr-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache);

    // Correctness first: a warm run reuses every module and reproduces
    // the cold report byte for byte.
    let cold_tel = Telemetry::enabled();
    let cold_report = run(&inputs, &cache, &cold_tel).report().to_string();
    assert_eq!(cold_tel.stats().tus_summarized, inputs.len() as u64);
    let warm_tel = Telemetry::enabled();
    let warm_report = run(&inputs, &cache, &warm_tel).report().to_string();
    let warm_stats = warm_tel.stats();
    assert_eq!(warm_stats.tus_summarized, 0, "{name}: warm run re-summarized");
    assert_eq!(warm_stats.tu_cache_hits, inputs.len() as u64);
    assert_eq!(warm_report, cold_report, "{name}: warm report drifted");
    let functions = {
        let p = run(&inputs, &cache, &Telemetry::disabled());
        p.program().function_count()
    };

    // Cold: empty the cache before every sample.
    let (cold, _) = timing::time(samples, || {
        let _ = std::fs::remove_dir_all(&cache);
        run(&inputs, &cache, &Telemetry::disabled())
    });

    // Warm: the cache is fully populated by the last cold sample.
    let (warm, _) = timing::time(samples, || run(&inputs, &cache, &Telemetry::disabled()));

    // k-of-N changed: give k TUs per-sample-unique content so exactly k
    // TUs miss in every sample (an unreachable padding function keeps
    // the analysed behaviour identical while changing the content hash).
    // For k < N the driver TU is left alone; k = N edits every TU.
    let mut edition = 0usize;
    let edit_k = |edition: usize, k: usize| -> Vec<(String, String)> {
        let mut edited = inputs.clone();
        let targets: Vec<usize> = if k < inputs.len() {
            (1..=k).collect()
        } else {
            (0..inputs.len()).collect()
        };
        for &i in &targets {
            edited[i].1 = format!(
                "{}int pad_t{i}_e{edition}() {{ return {edition}; }}\n",
                inputs[i].1
            );
        }
        edited
    };
    let mut k_changed = Vec::new();
    for k in k_axis(inputs.len()) {
        // Correctness outside the timed region: an instrumented run per
        // k proves exactly k TUs miss and N-k hit against this cache.
        edition += 1;
        let tel = Telemetry::enabled();
        run(&edit_k(edition, k), &cache, &tel);
        let stats = tel.stats();
        assert_eq!(
            stats.tu_cache_misses, k as u64,
            "{name}: expected exactly {k} misses"
        );
        assert_eq!(stats.tu_cache_hits, (inputs.len() - k) as u64);

        // Pre-render one edited input set per invocation (timing::time
        // adds two warm-ups) so the timed region holds the analysis
        // alone, under the same disabled telemetry as cold and warm.
        let editions: Vec<Vec<(String, String)>> = (0..samples.max(1) + 2)
            .map(|_| {
                edition += 1;
                edit_k(edition, k)
            })
            .collect();
        let next = std::cell::Cell::new(0usize);
        let (elapsed, _) = timing::time(samples, || {
            let i = next.get();
            next.set(i + 1);
            run(&editions[i], &cache, &Telemetry::disabled())
        });
        k_changed.push((k, elapsed));
    }
    let one_changed = k_changed
        .iter()
        .find(|&&(k, _)| k == 1)
        .map(|&(_, d)| d)
        .expect("k axis always contains 1");

    // Per-phase breakdown of one more (untimed) warm 1-changed run.
    // The k = N pass above left every TU edited, so first re-establish
    // a fully warm snapshot; otherwise the measured run would take the
    // N-changed path and the breakdown would not describe 1-changed.
    let phases = {
        edition += 1;
        run(&edit_k(edition, 1), &cache, &Telemetry::disabled());
        edition += 1;
        let tel = Telemetry::enabled();
        run(&edit_k(edition, 1), &cache, &tel);
        let stats = tel.stats();
        PhaseBreakdown {
            frontend_ns: stats.frontend_ns,
            link_ns: stats.link_ns,
            callgraph_ns: stats.callgraph_ns,
            liveness_ns: stats.liveness_ns,
        }
    };

    let _ = std::fs::remove_dir_all(&cache);
    SizeResult {
        name,
        config,
        functions,
        cold,
        warm,
        one_changed,
        k_changed,
        phases,
    }
}

fn render_json(results: &[SizeResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"ddm-benchmarks incremental project cache\",\n");
    out.push_str("  \"engine\": \"summary\",\n");
    out.push_str("  \"algorithm\": \"rta\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    let _ = writeln!(out, "  \"host\": {},", host_meta_json());
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.config;
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"tus\": {}, \"classes\": {}, \"fns_per_tu\": {}, \"functions\": {},\n     \
             \"cold_ns\": {}, \"warm_ns\": {}, \"one_changed_ns\": {},\n     \
             \"warm_speedup\": {:.2}, \"one_changed_speedup\": {:.2},\n     \
             \"k_changed\": [",
            r.name,
            c.tus,
            c.classes,
            c.fns_per_tu,
            r.functions,
            r.cold.as_nanos(),
            r.warm.as_nanos(),
            r.one_changed.as_nanos(),
            r.cold.as_secs_f64() / r.warm.as_secs_f64().max(f64::EPSILON),
            r.one_changed_speedup(),
        );
        for (j, (k, d)) in r.k_changed.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"k\": {}, \"ns\": {}, \"speedup\": {:.2}}}",
                if j == 0 { "" } else { ", " },
                k,
                d.as_nanos(),
                r.cold.as_secs_f64() / d.as_secs_f64().max(f64::EPSILON),
            );
        }
        let _ = write!(
            out,
            "],\n     \
             \"one_changed_phases\": {{\"frontend_ns\": {}, \"link_ns\": {}, \"callgraph_ns\": {}, \"liveness_ns\": {}}}}}",
            r.phases.frontend_ns, r.phases.link_ns, r.phases.callgraph_ns, r.phases.liveness_ns,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(if smoke { 1 } else { 5 });

    let started = Instant::now();
    let results: Vec<SizeResult> = sizes()
        .into_iter()
        .map(|(name, config)| measure(name, config, samples))
        .collect();

    println!(
        "{:<8} {:>5} {:>8} {:>14} {:>14} {:>16} {:>8} {:>8}",
        "size", "tus", "funcs", "cold", "warm", "1-of-N changed", "warm x", "1chg x"
    );
    for r in &results {
        println!(
            "{:<8} {:>5} {:>8} {:>14.1?} {:>14.1?} {:>16.1?} {:>8.2} {:>8.2}",
            r.name,
            r.config.tus,
            r.functions,
            r.cold,
            r.warm,
            r.one_changed,
            r.cold.as_secs_f64() / r.warm.as_secs_f64().max(f64::EPSILON),
            r.cold.as_secs_f64() / r.one_changed.as_secs_f64().max(f64::EPSILON),
        );
    }

    if json {
        // The smoke run uses one low-confidence sample — keep it away
        // from the committed full-sweep BENCH_incremental.json.
        let path = if smoke {
            "BENCH_incremental_smoke.json"
        } else {
            "BENCH_incremental.json"
        };
        std::fs::write(path, render_json(&results, samples)).expect("write incremental JSON");
        println!("wrote {path}");
    }

    if smoke {
        // The snapshot's fixed costs amortize with project size, so the
        // 1-changed speedup must grow monotonely small → large.
        for pair in results.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            assert!(
                next.one_changed_speedup() > prev.one_changed_speedup(),
                "1-changed speedup must grow with project size: {} {:.2}x vs {} {:.2}x",
                prev.name,
                prev.one_changed_speedup(),
                next.name,
                next.one_changed_speedup(),
            );
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < SMOKE_CEILING,
            "incremental smoke exceeded its wall-clock ceiling: {elapsed:.1?} >= {SMOKE_CEILING:?}"
        );
    }
}
