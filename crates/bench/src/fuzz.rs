//! Corpus-scale differential fuzzing rig.
//!
//! The reproduction has two independent engines (walk and summary), a
//! deterministic generator, and byte-identical artifacts across worker
//! counts and cache states — a ready-made differential-testing oracle.
//! This module sweeps seeded adversarial generator configurations
//! ([`ddm_benchmarks::generator::generate_fuzz`]) through the full
//! oracle matrix:
//!
//! * engines `{walk, summary}` × jobs `{1, 8}`, cacheless;
//! * the summary engine against a persistent cache: cold, warm, and
//!   1-changed (one TU's content perturbed), each at jobs `{1, 8}`;
//! * a multi-step edit script: three further random single-TU edits
//!   replayed against one warm cache directory, each step compared to
//!   a cacheless run over the same inputs;
//!
//! byte-comparing the rendered report, the `--explain` text of every
//! member, and the deterministic counters. A program the pipeline
//! *rejects* (e.g. the deliberate ODR-conflict shape) must be rejected
//! with the byte-identical diagnostic in every cell — error
//! determinism is part of the oracle.
//!
//! Any divergence (or panic) is shrunk to a minimal repro: config
//! bisection first (halving every generator knob while the divergence
//! persists), then greedy delta-debugging over the generated TUs at
//! top-level-declaration granularity, and the result is emitted as
//! self-contained `.cpp` files plus the exact `ddm` invocations that
//! disagree.

use ddm_benchmarks::generator::{
    generate_fuzz, FuzzConfig, FuzzShape, GeneratorConfig, FUZZ_SHAPES,
};
use ddm_benchmarks::rng::Rng;
use ddm_callgraph::Algorithm;
use ddm_core::{explain, AnalysisConfig, Engine, ProjectPipeline};
use ddm_telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Explanations compared per cell (every member, capped so pathological
/// configs cannot dominate the sweep).
const EXPLAIN_CAP: usize = 64;

/// One point of the fuzz corpus: a generator configuration, its seed,
/// and the call-graph algorithm the whole matrix runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCase {
    /// Program seed (also selects the shape in [`case_for_seed`]).
    pub seed: u64,
    /// Generator shape and sizes.
    pub config: FuzzConfig,
    /// Call-graph algorithm for every cell of this case's matrix.
    pub algorithm: Algorithm,
}

/// Derives the case for `seed`, cycling shapes through [`FUZZ_SHAPES`].
pub fn case_for_seed(seed: u64) -> FuzzCase {
    case_for_seed_in(seed, &FUZZ_SHAPES)
}

/// Derives the case for `seed` with the shape drawn from `shapes`
/// (round-robin). Sizes and algorithm come from a seed-derived stream,
/// so equal seeds always produce equal cases.
pub fn case_for_seed_in(seed: u64, shapes: &[FuzzShape]) -> FuzzCase {
    assert!(!shapes.is_empty(), "shape list must be non-empty");
    let shape = shapes[(seed % shapes.len() as u64) as usize];
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    let config = FuzzConfig {
        base: GeneratorConfig {
            classes: rng.gen_range(2..8),
            members_per_class: rng.gen_range(1..5),
            methods_per_class: rng.gen_range(1..4),
            stmts_per_method: rng.gen_range(0..5),
            objects_in_main: rng.gen_range(1..6),
        },
        shape,
        tus: rng.gen_range(1..4),
    };
    let algorithm = match rng.gen_range(0..4) {
        0 => Algorithm::Rta,
        1 => Algorithm::Pta,
        2 => Algorithm::Cha,
        _ => Algorithm::Everything,
    };
    FuzzCase {
        seed,
        config,
        algorithm,
    }
}

/// The `--callgraph` spelling of `algorithm` (for repro CLI lines).
pub fn algorithm_flag(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Rta => "rta",
        Algorithm::Pta => "pta",
        Algorithm::Cha => "cha",
        Algorithm::Everything => "everything",
    }
}

/// One executed oracle cell: its human label, the equivalent `ddm`
/// invocation, and the canonical artifact text it produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// e.g. `summary jobs=8 cache=warm`.
    pub label: String,
    /// `ddm <files> --callgraph ... --engine ... --jobs ...` suffix.
    pub cli: String,
    /// Report + explains + counters, or `error: ...` for rejections.
    pub artifact: String,
}

/// A pair of oracle cells that disagreed on the same inputs.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The reference cell (walk, jobs 1, cacheless — or the cacheless
    /// baseline over edited inputs for 1-changed cells).
    pub baseline: CellOutcome,
    /// The disagreeing cell.
    pub other: CellOutcome,
    /// The inputs both cells analysed.
    pub inputs: Vec<(String, String)>,
}

impl Divergence {
    /// First line at which the two artifacts differ, for quick triage.
    pub fn first_difference(&self) -> String {
        let a: Vec<&str> = self.baseline.artifact.lines().collect();
        let b: Vec<&str> = self.other.artifact.lines().collect();
        for i in 0..a.len().max(b.len()) {
            let la = a.get(i).copied().unwrap_or("<eof>");
            let lb = b.get(i).copied().unwrap_or("<eof>");
            if la != lb {
                return format!("line {}: `{la}` vs `{lb}`", i + 1);
            }
        }
        "artifacts differ only in length".to_string()
    }
}

/// The outcome of one case's matrix.
#[derive(Debug)]
pub enum CaseResult {
    /// Every cell agreed byte-for-byte.
    Agree {
        /// The agreed outcome was a rejection (`error: ...`) — true for
        /// the ODR-conflict shape, whose oracle covers diagnostics.
        error_outcome: bool,
    },
    /// Two cells disagreed.
    Diverged(Box<Divergence>),
}

/// Runs one oracle cell and renders its canonical artifact: the report,
/// the `--explain` text of every member (capped at [`EXPLAIN_CAP`]),
/// and the deterministic counters — or the error text for rejected
/// programs. Every byte of this artifact is pinned to be identical
/// across engines, worker counts, and cache states.
pub fn oracle_artifact(
    inputs: &[(String, String)],
    algorithm: Algorithm,
    engine: Engine,
    jobs: usize,
    cache: Option<&Path>,
) -> String {
    let telemetry = Telemetry::enabled();
    match ProjectPipeline::run(
        inputs,
        AnalysisConfig::default(),
        algorithm,
        jobs,
        engine,
        cache,
        &telemetry,
    ) {
        Ok(p) => {
            let mut out = p.report().to_string();
            let program = p.program();
            let mut specs = Vec::new();
            'classes: for (_, class) in program.classes() {
                for member in &class.members {
                    if specs.len() >= EXPLAIN_CAP {
                        break 'classes;
                    }
                    specs.push(format!("{}::{}", class.name, member.name));
                }
            }
            for spec in &specs {
                match explain(program, p.callgraph(), p.liveness(), spec) {
                    Ok(text) => out.push_str(&text),
                    Err(e) => {
                        let _ = writeln!(out, "explain {spec}: error: {e}");
                    }
                }
            }
            let _ = writeln!(out, "counters: {:?}", telemetry.counters().rows());
            out
        }
        Err(e) => format!("error: {e}\n"),
    }
}

/// Serial number for scratch cache directories, so concurrent sweep
/// workers (and repeated shrink probes) never share one.
static SCRATCH_SERIAL: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(scratch_root: &Path, tag: &str) -> PathBuf {
    let n = SCRATCH_SERIAL.fetch_add(1, Ordering::Relaxed);
    scratch_root.join(format!("{tag}-{n}"))
}

fn cli_for(
    algorithm: Algorithm,
    engine: Engine,
    jobs: usize,
    cache: Option<&str>,
) -> String {
    let mut cli = format!(
        "--callgraph {} --engine {engine} --jobs {jobs}",
        algorithm_flag(algorithm)
    );
    if let Some(state) = cache {
        let _ = write!(cli, " --cache-dir <{state} dir>");
    }
    cli
}

/// Runs the oracle matrix over `inputs` and compares every cell to the
/// walk/jobs=1 baseline; with `full`, also exercises the persistent
/// cache (cold, warm, and 1-changed at jobs 1 and 8, where the
/// 1-changed cells are compared against a cacheless baseline over the
/// same edited inputs), then replays a three-step random single-TU
/// edit script against the jobs=1 directory, comparing every step to
/// its own cacheless baseline. Returns the first divergence found.
///
/// Scratch cache directories are created under `scratch_root` and
/// removed before returning.
pub fn check_inputs(
    inputs: &[(String, String)],
    algorithm: Algorithm,
    scratch_root: &Path,
    full: bool,
) -> Option<Box<Divergence>> {
    let run = |engine: Engine, jobs: usize, cache: Option<&Path>, state: Option<&str>| {
        CellOutcome {
            label: match state {
                Some(s) => format!("{engine} jobs={jobs} cache={s}"),
                None => format!("{engine} jobs={jobs}"),
            },
            cli: cli_for(algorithm, engine, jobs, state),
            artifact: oracle_artifact(inputs, algorithm, engine, jobs, cache),
        }
    };
    let baseline = run(Engine::Walk, 1, None, None);
    let check = |other: CellOutcome| -> Option<Box<Divergence>> {
        if other.artifact != baseline.artifact {
            Some(Box::new(Divergence {
                baseline: baseline.clone(),
                other,
                inputs: inputs.to_vec(),
            }))
        } else {
            None
        }
    };

    for (engine, jobs) in [(Engine::Walk, 8), (Engine::Summary, 1), (Engine::Summary, 8)] {
        if let Some(d) = check(run(engine, jobs, None, None)) {
            return Some(d);
        }
    }

    if !full {
        return None;
    }

    // Cached cells: each jobs level gets its own directory so both see a
    // genuine cold start; the warm run then replays entirely from cache.
    let mut dirs = Vec::new();
    let mut found = None;
    'matrix: for jobs in [1usize, 8] {
        let dir = fresh_dir(scratch_root, "cache");
        dirs.push(dir.clone());
        for state in ["cold", "warm"] {
            let cell = run(Engine::Summary, jobs, Some(&dir), Some(state));
            if let Some(d) = check(cell) {
                found = Some(d);
                break 'matrix;
            }
        }
    }

    // 1-changed: perturb the last TU with an unreachable function, then
    // the cached run over the now-stale directory must match a
    // cacheless run over the same edited inputs.
    let mut edited = inputs.to_vec();
    if let Some(last) = edited.last_mut() {
        last.1.push_str("int fuzz_pad_edit() { return 1; }\n");
    }
    if found.is_none() {
        let edited_baseline = CellOutcome {
            label: "summary jobs=1 (edited, cacheless)".to_string(),
            cli: cli_for(algorithm, Engine::Summary, 1, None),
            artifact: oracle_artifact(&edited, algorithm, Engine::Summary, 1, None),
        };
        for (jobs, dir) in [1usize, 8].iter().zip(&dirs) {
            let cell = CellOutcome {
                label: format!("summary jobs={jobs} cache=1-changed"),
                cli: cli_for(algorithm, Engine::Summary, *jobs, Some("1-changed")),
                artifact: oracle_artifact(&edited, algorithm, Engine::Summary, *jobs, Some(dir)),
            };
            if cell.artifact != edited_baseline.artifact {
                found = Some(Box::new(Divergence {
                    baseline: edited_baseline.clone(),
                    other: cell,
                    inputs: edited.clone(),
                }));
                break;
            }
        }
    }

    // Multi-step edit script: three further random single-TU edits
    // replayed in sequence against the jobs=1 cache directory (already
    // warm and one edit deep at this point). Every step must be
    // byte-identical to a cacheless run over the same inputs — no state
    // from any earlier edition (summary entries, analysis snapshot) may
    // leak into a later one.
    if found.is_none() {
        let mut rng = Rng::seed_from_u64(
            edited
                .iter()
                .flat_map(|(_, s)| s.as_bytes())
                .fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                }),
        );
        let dir = &dirs[0];
        let mut current = edited.clone();
        for step in 1..=3usize {
            let t = rng.gen_range(0..current.len());
            let _ = writeln!(
                current[t].1,
                "int fuzz_step{step}_edit() {{ return {step}; }}"
            );
            let step_baseline = CellOutcome {
                label: format!("summary jobs=1 (edit step {step}, cacheless)"),
                cli: cli_for(algorithm, Engine::Summary, 1, None),
                artifact: oracle_artifact(&current, algorithm, Engine::Summary, 1, None),
            };
            let cell = CellOutcome {
                label: format!("summary jobs=1 cache=edit-step-{step}"),
                cli: cli_for(algorithm, Engine::Summary, 1, Some("edit script")),
                artifact: oracle_artifact(&current, algorithm, Engine::Summary, 1, Some(dir)),
            };
            if cell.artifact != step_baseline.artifact {
                found = Some(Box::new(Divergence {
                    baseline: step_baseline,
                    other: cell,
                    inputs: current.clone(),
                }));
                break;
            }
        }
    }

    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    found
}

/// Generates `case`'s program and runs its full matrix.
pub fn run_case(case: &FuzzCase, scratch_root: &Path, full: bool) -> CaseResult {
    let inputs = generate_fuzz(&case.config, case.seed);
    match check_inputs(&inputs, case.algorithm, scratch_root, full) {
        Some(d) => CaseResult::Diverged(d),
        None => CaseResult::Agree {
            error_outcome: oracle_artifact(&inputs, case.algorithm, Engine::Summary, 1, None)
                .starts_with("error:"),
        },
    }
}

// --- Shrinking -----------------------------------------------------------

/// Splits a TU into top-level chunks: classes, unions, enums, free
/// functions, prototypes, globals — each chunk a run of lines that
/// opens at brace depth 0 and closes back to it. Comment and blank
/// lines attach to the chunk that follows them. Concatenating the
/// chunks reproduces the source exactly.
pub fn chunk_top_level(source: &str) -> Vec<String> {
    let mut chunks = Vec::new();
    let mut current = String::new();
    let mut depth: i64 = 0;
    for line in source.lines() {
        let code = line.split("//").next().unwrap_or("");
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        current.push_str(line);
        current.push('\n');
        depth += opens - closes;
        // A chunk closes at depth 0 on a line that carried any code:
        // a `};`/`}` closer, a one-line prototype, or a blank/comment
        // separator flushes only if something real is pending.
        let has_code = !code.trim().is_empty();
        if depth == 0 && has_code {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Counts chunks that define a function (contain a body and are not a
/// class/union/enum definition) across all TUs — the "repro is ≤ N
/// functions" metric.
pub fn function_definition_count(inputs: &[(String, String)]) -> usize {
    inputs
        .iter()
        .flat_map(|(_, source)| chunk_top_level(source))
        .filter(|chunk| {
            let first_code = chunk
                .lines()
                .map(|l| l.split("//").next().unwrap_or("").trim())
                .find(|l| !l.is_empty())
                .unwrap_or("");
            !first_code.is_empty()
                && !first_code.starts_with("class ")
                && !first_code.starts_with("struct ")
                && !first_code.starts_with("union ")
                && !first_code.starts_with("enum ")
                && chunk.contains('{')
        })
        .count()
}

/// Greedy delta-debugging over the generated TUs: repeatedly tries
/// dropping whole TUs, then single top-level chunks (never the chunk
/// holding `main`), then single brace-free statement lines — so a call
/// site inside `main` can go first, unblocking the chunk drop of its
/// now-unreferenced callee — keeping every drop under which
/// `interesting` still holds, until a fixpoint. `interesting` must hold
/// for `inputs`.
pub fn shrink_inputs(
    inputs: &[(String, String)],
    interesting: impl Fn(&[(String, String)]) -> bool,
) -> Vec<(String, String)> {
    assert!(
        interesting(inputs),
        "shrink_inputs: the starting inputs must be interesting"
    );
    let mut cur = inputs.to_vec();
    loop {
        let mut progressed = false;

        // Whole-TU drops first — they remove the most at once.
        let mut t = 0;
        while t < cur.len() {
            if cur.len() > 1 && !cur[t].1.contains("int main(") {
                let mut cand = cur.clone();
                cand.remove(t);
                if interesting(&cand) {
                    cur = cand;
                    progressed = true;
                    continue; // same index now names the next TU
                }
            }
            t += 1;
        }

        // Chunk drops, last-to-first so dependents go before their
        // definitions get a chance.
        for t in 0..cur.len() {
            let mut c = chunk_top_level(&cur[t].1).len();
            while c > 0 {
                c -= 1;
                let chunks = chunk_top_level(&cur[t].1);
                let Some(chunk) = chunks.get(c) else { continue };
                if chunk.contains("int main(") {
                    continue;
                }
                let rebuilt: String = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != c)
                    .map(|(_, s)| s.as_str())
                    .collect();
                let mut cand = cur.clone();
                cand[t].1 = rebuilt;
                if interesting(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Single-line drops: any line that carries code but no brace can
        // go without changing the chunk structure (statements, member
        // declarations, prototypes).
        for t in 0..cur.len() {
            let mut l = cur[t].1.lines().count();
            while l > 0 {
                l -= 1;
                let lines: Vec<&str> = cur[t].1.lines().collect();
                let Some(line) = lines.get(l) else { continue };
                let code = line.split("//").next().unwrap_or("").trim();
                if code.is_empty() || code.contains('{') || code.contains('}') {
                    continue;
                }
                let rebuilt: String = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != l)
                    .map(|(_, s)| format!("{s}\n"))
                    .collect();
                let mut cand = cur.clone();
                cand[t].1 = rebuilt;
                if interesting(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        if !progressed {
            return cur;
        }
    }
}

/// Halves one knob toward `min`; returns false when already minimal.
fn shrink_field(v: &mut usize, min: usize) -> bool {
    if *v <= min {
        return false;
    }
    let half = min.max(*v / 2);
    *v = if half == *v { *v - 1 } else { half };
    true
}

/// Config bisection: repeatedly halves every generator knob (TUs,
/// classes, members, methods, statements, objects) toward its floor,
/// keeping each reduction under which `interesting` still holds.
/// `interesting` must hold for `config`.
pub fn shrink_config(
    config: &FuzzConfig,
    interesting: impl Fn(&FuzzConfig) -> bool,
) -> FuzzConfig {
    assert!(
        interesting(config),
        "shrink_config: the starting config must be interesting"
    );
    let mut cur = *config;
    loop {
        let mut progressed = false;
        for knob in 0..6 {
            loop {
                let mut cand = cur;
                let moved = match knob {
                    0 => shrink_field(&mut cand.tus, 1),
                    1 => shrink_field(&mut cand.base.classes, 1),
                    2 => shrink_field(&mut cand.base.members_per_class, 1),
                    3 => shrink_field(&mut cand.base.methods_per_class, 0),
                    4 => shrink_field(&mut cand.base.stmts_per_method, 0),
                    _ => shrink_field(&mut cand.base.objects_in_main, 0),
                };
                if !moved || !interesting(&cand) {
                    break;
                }
                cur = cand;
                progressed = true;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

/// A shrunk divergence: the minimal inputs still showing it, the config
/// bisection's end point, and the original case.
#[derive(Debug)]
pub struct ShrunkRepro {
    /// The original case.
    pub case: FuzzCase,
    /// Minimal generator config still diverging (bisection result).
    pub config: FuzzConfig,
    /// Minimal inputs still diverging (delta-debugging result).
    pub inputs: Vec<(String, String)>,
    /// The divergence the minimal inputs exhibit.
    pub divergence: Box<Divergence>,
}

/// Shrinks a diverging case: config bisection over regenerated
/// programs, then chunk-level delta-debugging over the winning
/// program's TUs. The returned repro is guaranteed to still diverge.
pub fn shrink_divergence(case: &FuzzCase, scratch_root: &Path) -> ShrunkRepro {
    let diverges_cfg = |cfg: &FuzzConfig| {
        let inputs = generate_fuzz(cfg, case.seed);
        check_inputs(&inputs, case.algorithm, scratch_root, true).is_some()
    };
    let config = shrink_config(&case.config, diverges_cfg);
    let inputs = generate_fuzz(&config, case.seed);
    let diverges =
        |inp: &[(String, String)]| check_inputs(inp, case.algorithm, scratch_root, true).is_some();
    let inputs = shrink_inputs(&inputs, diverges);
    let divergence = check_inputs(&inputs, case.algorithm, scratch_root, true)
        .expect("shrunk inputs must still diverge");
    ShrunkRepro {
        case: *case,
        config,
        inputs,
        divergence,
    }
}

impl ShrunkRepro {
    /// Writes the repro under `dir`: one self-contained `.cpp` per TU
    /// (`<stem>.cpp` or `<stem>-tu<N>.cpp`) plus `<stem>.txt` holding
    /// the disagreeing cells, their exact `ddm` invocations, and the
    /// first differing artifact line. Returns the `.txt` path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating `dir` or writing files.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let stem = format!(
            "repro-seed{}-{}",
            self.case.seed,
            self.case.config.shape.name()
        );
        let mut files = Vec::new();
        for (i, (_, source)) in self.inputs.iter().enumerate() {
            let name = if self.inputs.len() == 1 {
                format!("{stem}.cpp")
            } else {
                format!("{stem}-tu{i}.cpp")
            };
            std::fs::write(dir.join(&name), source)?;
            files.push(name);
        }
        let files = files.join(" ");
        let mut note = String::new();
        let _ = writeln!(note, "# differential fuzz repro");
        let _ = writeln!(
            note,
            "# seed={} shape={} algorithm={} (shrunk from {:?})",
            self.case.seed,
            self.case.config.shape.name(),
            algorithm_flag(self.case.algorithm),
            self.case.config,
        );
        let _ = writeln!(note, "# minimal config: {:?}", self.config);
        let _ = writeln!(
            note,
            "# function definitions in repro: {}",
            function_definition_count(&self.inputs)
        );
        let _ = writeln!(note, "# first difference: {}", self.divergence.first_difference());
        let _ = writeln!(note, "# disagreeing cells:");
        let _ = writeln!(
            note,
            "ddm {files} {}   # {}",
            self.divergence.baseline.cli, self.divergence.baseline.label
        );
        let _ = writeln!(
            note,
            "ddm {files} {}   # {}",
            self.divergence.other.cli, self.divergence.other.label
        );
        let path = dir.join(format!("{stem}.txt"));
        std::fs::write(&path, note)?;
        Ok(path)
    }

    /// The repro rendered for a panic message or log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shrunk repro (seed={} shape={} algorithm={}, {} function defs):",
            self.case.seed,
            self.case.config.shape.name(),
            algorithm_flag(self.case.algorithm),
            function_definition_count(&self.inputs)
        );
        let _ = writeln!(
            out,
            "cells: `{}` vs `{}`",
            self.divergence.baseline.label, self.divergence.other.label
        );
        let _ = writeln!(out, "first difference: {}", self.divergence.first_difference());
        for (file, source) in &self.inputs {
            let _ = writeln!(out, "--- {file}\n{source}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_cycle_shapes() {
        assert_eq!(case_for_seed(11), case_for_seed(11));
        let shapes: Vec<FuzzShape> = (0..FUZZ_SHAPES.len() as u64)
            .map(|s| case_for_seed(s).config.shape)
            .collect();
        assert_eq!(shapes, FUZZ_SHAPES.to_vec());
    }

    #[test]
    fn chunking_round_trips_and_isolates_top_level_items() {
        let src = "// header\nclass A {\npublic:\n    int x;\n};\n\nint f();\nint g() {\n    return 1;\n}\nint main() {\n    return g();\n}\n";
        let chunks = chunk_top_level(src);
        assert_eq!(chunks.concat(), src, "chunks must concatenate to the source");
        assert!(chunks.iter().any(|c| c.contains("class A")));
        assert!(chunks.iter().any(|c| c.trim_end().ends_with("int f();")));
        assert_eq!(function_definition_count(&[("a".into(), src.into())]), 2);
    }

    #[test]
    fn shrink_field_halves_toward_the_floor() {
        let mut v = 9;
        assert!(shrink_field(&mut v, 1));
        assert_eq!(v, 4);
        assert!(shrink_field(&mut v, 1));
        assert_eq!(v, 2);
        assert!(shrink_field(&mut v, 1));
        assert_eq!(v, 1);
        assert!(!shrink_field(&mut v, 1));
    }

    #[test]
    fn a_benign_case_passes_its_full_matrix() {
        let scratch = std::env::temp_dir().join(format!("ddm-fuzz-unit-{}", std::process::id()));
        let case = case_for_seed(0);
        assert_eq!(case.config.shape, FuzzShape::Benign);
        match run_case(&case, &scratch, true) {
            CaseResult::Agree { error_outcome } => assert!(!error_outcome),
            CaseResult::Diverged(d) => panic!(
                "benign seed 0 diverged: {} vs {}\n{}",
                d.baseline.label,
                d.other.label,
                d.first_difference()
            ),
        }
        let _ = std::fs::remove_dir_all(scratch);
    }
}
