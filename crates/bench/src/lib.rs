//! # ddm-bench
//!
//! Harness that regenerates every table and figure of the paper's
//! evaluation section against this reproduction's benchmark suite:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `figure3` | Figure 3 — % dead data members (static) |
//! | `table2` | Table 2 — execution characteristics (bytes) |
//! | `figure4` | Figure 4 — % object space occupied by dead members |
//! | `ablation_callgraph` | §3.1 — call-graph precision ablation |
//! | `ddm_run` | ad-hoc driver: analyze + execute one source file |
//!
//! Absolute byte counts differ from the paper (the originals ran real
//! 1990s workloads; the suite runs scaled-down deterministic ones), but
//! the harness prints the paper's number next to the measured one so the
//! *shape* comparisons — who is highest, where high-water marks equal
//! total space, how weak the static/dynamic correlation is — are
//! immediate.

use ddm_benchmarks::Benchmark;
use ddm_core::PipelineError;
use ddm_dynamic::{profile_trace, HeapProfile, Interpreter, RunConfig, RuntimeError};

/// Everything measured about one benchmark: the static report and the
/// dynamic profile.
#[derive(Debug)]
pub struct Measured {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-blank source lines.
    pub loc: usize,
    /// Total classes.
    pub classes: usize,
    /// Used classes.
    pub used_classes: usize,
    /// Data members in used classes.
    pub members: usize,
    /// Dead members in used classes.
    pub dead_members: usize,
    /// The Figure 3 percentage.
    pub dead_pct: f64,
    /// The Table 2 numbers.
    pub profile: HeapProfile,
    /// The paper's published numbers.
    pub paper: ddm_benchmarks::PaperRow,
}

/// Errors from measuring a benchmark.
#[derive(Debug)]
pub enum MeasureError {
    /// The static pipeline failed.
    Pipeline(PipelineError),
    /// Execution failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Pipeline(e) => write!(f, "pipeline: {e}"),
            MeasureError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Analyzes and executes one benchmark, producing all measurements.
///
/// # Errors
///
/// Returns [`MeasureError`] if analysis or execution fails (the shipped
/// suite never fails).
pub fn measure(b: &Benchmark) -> Result<Measured, MeasureError> {
    let run = b.analyze().map_err(MeasureError::Pipeline)?;
    let report = run.report();
    let exec = Interpreter::new(run.program())
        .run(&RunConfig::default())
        .map_err(MeasureError::Runtime)?;
    let profile = profile_trace(run.program(), &exec.trace, run.liveness());
    Ok(Measured {
        name: b.name,
        loc: b.loc(),
        classes: report.class_count(),
        used_classes: report.used_class_count(),
        members: report.members_in_used_classes(),
        dead_members: report.dead_members_in_used_classes(),
        dead_pct: report.dead_percentage(),
        profile,
        paper: b.paper,
    })
}

/// Measures the whole suite, in paper order.
///
/// # Errors
///
/// Fails on the first benchmark that cannot be measured.
pub fn measure_suite() -> Result<Vec<Measured>, MeasureError> {
    ddm_benchmarks::suite().iter().map(measure).collect()
}

/// Formats an optional paper value for a comparison column.
pub fn paper_cell<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "—".to_string(),
    }
}

/// Renders a simple ASCII bar for the figure binaries.
pub fn bar(pct: f64, scale: f64) -> String {
    let n = ((pct * scale).round() as usize).min(60);
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_richards_matches_known_values() {
        let b = ddm_benchmarks::by_name("richards").unwrap();
        let m = measure(&b).unwrap();
        assert_eq!(m.dead_members, 0);
        assert_eq!(m.profile.dead_member_space, 0);
        assert_eq!(m.profile.high_water_mark, m.profile.object_space);
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(0.0, 2.0), "");
        assert_eq!(bar(10.0, 2.0).len(), 20);
        assert_eq!(bar(1000.0, 2.0).len(), 60);
    }

    #[test]
    fn paper_cell_formats_missing_values() {
        assert_eq!(paper_cell(Some(42)), "42");
        assert_eq!(paper_cell::<u64>(None), "—");
    }
}
