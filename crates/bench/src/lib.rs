//! # ddm-bench
//!
//! Harness that regenerates every table and figure of the paper's
//! evaluation section against this reproduction's benchmark suite:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `figure3` | Figure 3 — % dead data members (static) |
//! | `table2` | Table 2 — execution characteristics (bytes) |
//! | `figure4` | Figure 4 — % object space occupied by dead members |
//! | `ablation_callgraph` | §3.1 — call-graph precision ablation |
//! | `ddm_run` | ad-hoc driver: analyze + execute one source file |
//!
//! Absolute byte counts differ from the paper (the originals ran real
//! 1990s workloads; the suite runs scaled-down deterministic ones), but
//! the harness prints the paper's number next to the measured one so the
//! *shape* comparisons — who is highest, where high-water marks equal
//! total space, how weak the static/dynamic correlation is — are
//! immediate.

pub mod fuzz;

use ddm_benchmarks::Benchmark;
use ddm_callgraph::Algorithm;
use ddm_core::{AnalysisConfig, AnalysisPipeline, Engine, PipelineError, SizeofPolicy};
use ddm_dynamic::{profile_trace, HeapProfile, Interpreter, RunConfig, RuntimeError};
use ddm_telemetry::{Counters, Telemetry};

/// Everything measured about one benchmark: the static report and the
/// dynamic profile.
#[derive(Debug)]
pub struct Measured {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-blank source lines.
    pub loc: usize,
    /// Total classes.
    pub classes: usize,
    /// Used classes.
    pub used_classes: usize,
    /// Data members in used classes.
    pub members: usize,
    /// Dead members in used classes.
    pub dead_members: usize,
    /// The Figure 3 percentage.
    pub dead_pct: f64,
    /// The Table 2 numbers.
    pub profile: HeapProfile,
    /// The paper's published numbers.
    pub paper: ddm_benchmarks::PaperRow,
}

/// Errors from measuring a benchmark.
#[derive(Debug)]
pub enum MeasureError {
    /// The static pipeline failed.
    Pipeline(PipelineError),
    /// Execution failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Pipeline(e) => write!(f, "pipeline: {e}"),
            MeasureError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Analyzes and executes one benchmark, producing all measurements.
///
/// # Errors
///
/// Returns [`MeasureError`] if analysis or execution fails (the shipped
/// suite never fails).
pub fn measure(b: &Benchmark) -> Result<Measured, MeasureError> {
    let run = b.analyze().map_err(MeasureError::Pipeline)?;
    let report = run.report();
    let exec = Interpreter::new(run.program())
        .run(&RunConfig::default())
        .map_err(MeasureError::Runtime)?;
    let profile = profile_trace(run.program(), &exec.trace, run.liveness());
    Ok(Measured {
        name: b.name,
        loc: b.loc(),
        classes: report.class_count(),
        used_classes: report.used_class_count(),
        members: report.members_in_used_classes(),
        dead_members: report.dead_members_in_used_classes(),
        dead_pct: report.dead_percentage(),
        profile,
        paper: b.paper,
    })
}

/// Measures the whole suite, in paper order.
///
/// # Errors
///
/// Fails on the first benchmark that cannot be measured.
pub fn measure_suite() -> Result<Vec<Measured>, MeasureError> {
    measure_suite_jobs(1)
}

/// Measures the whole suite with up to `jobs` benchmarks in flight at
/// once. The returned rows are in paper order regardless of completion
/// order, and each row is identical to what [`measure_suite`] produces —
/// batch parallelism never changes a measurement, only wall-clock time.
///
/// # Errors
///
/// Fails on the earliest (paper-order) benchmark that cannot be
/// measured.
pub fn measure_suite_jobs(jobs: usize) -> Result<Vec<Measured>, MeasureError> {
    let suite = ddm_benchmarks::suite();
    if jobs <= 1 {
        return suite.iter().map(measure).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let jobs = jobs.min(suite.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Measured, MeasureError>>>> =
        suite.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(b) = suite.get(i) else { break };
                *slots[i].lock().expect("bench slot poisoned") = Some(measure(b));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("bench slot poisoned")
                .expect("every benchmark is measured exactly once")
        })
        .collect()
}

/// Clamps a requested worker count to the machine's available
/// parallelism. Timing `--jobs 8` on one hardware thread measures
/// oversubscription overhead, not the sharded schedule, so the bench
/// binaries run `min(requested, available)` workers and report both
/// numbers. Analysis artifacts are jobs-invariant, so the clamp never
/// changes *what* is measured — only how it is scheduled. The `ddm`
/// CLI deliberately does not clamp: its trace output must show every
/// requested worker lane.
pub fn effective_jobs(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.min(available).max(1)
}

/// The logical CPU count the kernel reports (1 if unknowable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders the uniform host-metadata object every BENCH_*.json header
/// embeds: logical CPU count and the clamped `--jobs 8` width. Timing
/// entries are only comparable across runs when this context rides
/// along with the numbers, so every writer — and the `bench_report`
/// history — uses this one renderer.
pub fn host_meta_json() -> String {
    format!(
        "{{\"cpus\": {}, \"jobs8_effective\": {}}}",
        host_cpus(),
        effective_jobs(8)
    )
}

/// The analysis configuration the benchmark suite is measured under —
/// shared by `bench_suite` and the `bench_report` counter gate so the
/// golden baselines are captured under exactly the measured config.
pub fn suite_analysis_config() -> AnalysisConfig {
    AnalysisConfig {
        assume_safe_downcasts: true,
        sizeof_policy: SizeofPolicy::Ignore,
        ..Default::default()
    }
}

/// The deterministic counters of one end-to-end analysis of `source`
/// under [`suite_analysis_config`]. Engine and jobs never change the
/// counters (pinned by the equivalence suites), so one capture is
/// exact, not sampled.
pub fn capture_counters(source: &str) -> Counters {
    let telemetry = Telemetry::enabled();
    AnalysisPipeline::with_config_telemetry(
        source,
        suite_analysis_config(),
        Algorithm::Rta,
        1,
        Engine::Summary,
        &telemetry,
    )
    .expect("suite program analyses cleanly");
    telemetry.counters()
}

/// Parses a `--jobs N` pair out of the process arguments (shared by the
/// driver binaries); defaults to 1.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("error: --jobs needs a positive integer");
                    std::process::exit(2);
                });
        }
    }
    1
}

/// Formats an optional paper value for a comparison column.
pub fn paper_cell<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "—".to_string(),
    }
}

/// Renders a simple ASCII bar for the figure binaries.
pub fn bar(pct: f64, scale: f64) -> String {
    let n = ((pct * scale).round() as usize).min(60);
    "#".repeat(n)
}

/// Minimal wall-clock benchmark harness.
///
/// The registry is unreachable from the build environment, so the
/// `benches/` targets time with `std::time::Instant` instead of an
/// external framework: warm up, take `samples` single-shot samples, and
/// report the minimum and median (the minimum is the least noisy
/// estimator for deterministic CPU-bound work).
pub mod timing {
    use std::time::{Duration, Instant};

    /// One measured benchmark case.
    #[derive(Debug, Clone)]
    pub struct Sample {
        /// `group/id` label.
        pub label: String,
        /// Fastest observed run.
        pub min: Duration,
        /// Median observed run.
        pub median: Duration,
    }

    /// Times `f` with two warm-up runs and `samples` measured runs.
    pub fn time<T>(samples: usize, mut f: impl FnMut() -> T) -> (Duration, Duration) {
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        let mut runs: Vec<Duration> = (0..samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        runs.sort();
        (runs[0], runs[runs.len() / 2])
    }

    /// Times `f` and prints one aligned result line.
    pub fn report<T>(group: &str, id: &str, samples: usize, f: impl FnMut() -> T) -> Sample {
        let (min, median) = time(samples, f);
        let label = format!("{group}/{id}");
        println!(
            "{label:<28} min {:>12.1?}   median {:>12.1?}   ({samples} samples)",
            min, median
        );
        Sample {
            label,
            min,
            median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_richards_matches_known_values() {
        let b = ddm_benchmarks::by_name("richards").unwrap();
        let m = measure(&b).unwrap();
        assert_eq!(m.dead_members, 0);
        assert_eq!(m.profile.dead_member_space, 0);
        assert_eq!(m.profile.high_water_mark, m.profile.object_space);
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(0.0, 2.0), "");
        assert_eq!(bar(10.0, 2.0).len(), 20);
        assert_eq!(bar(1000.0, 2.0).len(), 60);
    }

    #[test]
    fn paper_cell_formats_missing_values() {
        assert_eq!(paper_cell(Some(42)), "42");
        assert_eq!(paper_cell::<u64>(None), "—");
    }
}
