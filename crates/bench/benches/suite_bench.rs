//! End-to-end benchmarks over the paper's suite: whole-pipeline analysis
//! time per benchmark, and the cost of the three call-graph builders
//! (the §3.1 ablation's time dimension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_core::{AnalysisConfig, DeadMemberAnalysis, SizeofPolicy};
use ddm_hierarchy::{MemberLookup, Program};
use std::hint::black_box;

fn bench_suite_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite/analysis");
    for b in ddm_benchmarks::suite() {
        let tu = ddm_cppfront::parse(b.source).unwrap();
        let program = Program::build(&tu).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bench, _| {
            bench.iter(|| {
                let lookup = MemberLookup::new(&program);
                let graph =
                    CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
                let analysis = DeadMemberAnalysis::new(
                    &program,
                    AnalysisConfig {
                        assume_safe_downcasts: true,
                        sizeof_policy: SizeofPolicy::Ignore,
                        ..Default::default()
                    },
                );
                black_box(analysis.run(&graph).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_callgraph_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite/callgraph");
    let b = ddm_benchmarks::by_name("deltablue").unwrap();
    let tu = ddm_cppfront::parse(b.source).unwrap();
    let program = Program::build(&tu).unwrap();
    for algorithm in [Algorithm::Everything, Algorithm::Cha, Algorithm::Rta] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm),
            &algorithm,
            |bench, &alg| {
                bench.iter(|| {
                    let lookup = MemberLookup::new(&program);
                    black_box(
                        CallGraph::build(
                            &program,
                            &lookup,
                            &CallGraphOptions {
                                algorithm: alg,
                                ..Default::default()
                            },
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite/parse");
    for name in ["richards", "deltablue", "sched"] {
        let b = ddm_benchmarks::by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &b, |bench, b| {
            bench.iter(|| black_box(ddm_cppfront::parse(b.source).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_suite_analysis, bench_callgraph_builders, bench_parse
);
criterion_main!(benches);
