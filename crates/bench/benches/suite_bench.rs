//! End-to-end benchmarks over the paper's suite: whole-pipeline analysis
//! time per benchmark, and the cost of the three call-graph builders
//! (the §3.1 ablation's time dimension).

use ddm_bench::timing;
use ddm_callgraph::{Algorithm, CallGraph, CallGraphOptions};
use ddm_core::{AnalysisConfig, DeadMemberAnalysis, SizeofPolicy};
use ddm_hierarchy::{MemberLookup, Program};

fn bench_suite_analysis() {
    for b in ddm_benchmarks::suite() {
        let tu = ddm_cppfront::parse(b.source).unwrap();
        let program = Program::build(&tu).unwrap();
        timing::report("suite/analysis", b.name, 15, || {
            let lookup = MemberLookup::new(&program);
            let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
            let analysis = DeadMemberAnalysis::new(
                &program,
                AnalysisConfig {
                    assume_safe_downcasts: true,
                    sizeof_policy: SizeofPolicy::Ignore,
                    ..Default::default()
                },
            );
            analysis.run(&graph).unwrap()
        });
    }
}

fn bench_callgraph_builders() {
    let b = ddm_benchmarks::by_name("deltablue").unwrap();
    let tu = ddm_cppfront::parse(b.source).unwrap();
    let program = Program::build(&tu).unwrap();
    for algorithm in [Algorithm::Everything, Algorithm::Cha, Algorithm::Rta] {
        timing::report("suite/callgraph", &algorithm.to_string(), 15, || {
            let lookup = MemberLookup::new(&program);
            CallGraph::build(
                &program,
                &lookup,
                &CallGraphOptions {
                    algorithm,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}

fn bench_parse() {
    for name in ["richards", "deltablue", "sched"] {
        let b = ddm_benchmarks::by_name(name).unwrap();
        timing::report("suite/parse", name, 15, || {
            ddm_cppfront::parse(b.source).unwrap()
        });
    }
}

fn main() {
    bench_suite_analysis();
    bench_callgraph_builders();
    bench_parse();
}
