//! §3.4 complexity benchmarks.
//!
//! The paper claims the algorithm costs `O(N + C×M)` after the call
//! graph and member lookups are available, where `N` is the number of
//! expressions, `C` the number of classes, and `M` the number of
//! distinct member names. These benches sweep the two terms
//! independently with the seeded program generator:
//!
//! * `analysis/N` — classes fixed, statements per method swept: time
//!   should grow roughly linearly in program size;
//! * `analysis/CxM` — statements fixed, class count swept (members per
//!   class constant, so `C×M` grows linearly in the class count);
//! * `lookup/depth` — member lookup along an inheritance chain, the
//!   precomputation the paper delegates to Ramalingam & Srinivasan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddm_benchmarks::generator::{generate, GeneratorConfig};
use ddm_callgraph::{CallGraph, CallGraphOptions};
use ddm_core::{AnalysisConfig, DeadMemberAnalysis};
use ddm_hierarchy::{MemberLookup, Program};
use std::hint::black_box;

fn prepared(config: &GeneratorConfig, seed: u64) -> (Program, String) {
    let src = generate(config, seed);
    let tu = ddm_cppfront::parse(&src).expect("generated programs parse");
    (Program::build(&tu).expect("generated programs check"), src)
}

fn bench_sweep_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/N");
    for stmts in [2usize, 8, 32, 128] {
        let config = GeneratorConfig {
            classes: 8,
            stmts_per_method: stmts,
            ..Default::default()
        };
        let (program, _) = prepared(&config, 11);
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &stmts, |b, _| {
            b.iter(|| {
                let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
                black_box(analysis.run(&graph).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_sweep_cxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/CxM");
    for classes in [4usize, 16, 64] {
        // Scale the exercised objects with the class count so the
        // reachable-code portion actually covers the C×M growth (a main
        // that touches a constant number of classes would leave the rest
        // unreachable and the analysis cost flat).
        let config = GeneratorConfig {
            classes,
            objects_in_main: classes * 2,
            ..Default::default()
        };
        let (program, _) = prepared(&config, 13);
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(classes), &classes, |b, _| {
            b.iter(|| {
                let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
                black_box(analysis.run(&graph).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_lookup_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup/depth");
    for depth in [2usize, 8, 32] {
        // A straight inheritance chain; the member lives at the top.
        let mut src = String::from("class C0 { public: int target; };\n");
        for i in 1..depth {
            src.push_str(&format!(
                "class C{i} : public C{} {{ public: int f{i}; }};\n",
                i - 1
            ));
        }
        src.push_str(&format!(
            "int main() {{ C{} obj; return obj.target; }}",
            depth - 1
        ));
        let tu = ddm_cppfront::parse(&src).unwrap();
        let program = Program::build(&tu).unwrap();
        let leaf = program.class_by_name(&format!("C{}", depth - 1)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                // Fresh service each iteration so the subobject-tree cache
                // does not amortize the work away.
                let lookup = MemberLookup::new(&program);
                black_box(lookup.data_member(leaf, "target").unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sweep_n, bench_sweep_cxm, bench_lookup_depth
);
criterion_main!(benches);
