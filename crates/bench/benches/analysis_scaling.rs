//! §3.4 complexity benchmarks.
//!
//! The paper claims the algorithm costs `O(N + C×M)` after the call
//! graph and member lookups are available, where `N` is the number of
//! expressions, `C` the number of classes, and `M` the number of
//! distinct member names. These benches sweep the two terms
//! independently with the seeded program generator:
//!
//! * `analysis/N` — classes fixed, statements per method swept: time
//!   should grow roughly linearly in program size;
//! * `analysis/CxM` — statements fixed, class count swept (members per
//!   class constant, so `C×M` grows linearly in the class count);
//! * `analysis/jobs` — the sharded engine swept over worker counts on a
//!   large generated program (sequential `run` is the 1-worker row);
//! * `lookup/depth` — member lookup along an inheritance chain, the
//!   precomputation the paper delegates to Ramalingam & Srinivasan.

use ddm_bench::timing;
use ddm_benchmarks::generator::{generate, GeneratorConfig};
use ddm_callgraph::{CallGraph, CallGraphOptions};
use ddm_core::{AnalysisConfig, DeadMemberAnalysis};
use ddm_hierarchy::{MemberLookup, Program};

fn prepared(config: &GeneratorConfig, seed: u64) -> Program {
    let src = generate(config, seed);
    let tu = ddm_cppfront::parse(&src).expect("generated programs parse");
    Program::build(&tu).expect("generated programs check")
}

fn bench_sweep_n() {
    for stmts in [2usize, 8, 32, 128] {
        let config = GeneratorConfig {
            classes: 8,
            stmts_per_method: stmts,
            ..Default::default()
        };
        let program = prepared(&config, 11);
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        timing::report("analysis/N", &stmts.to_string(), 20, || {
            let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
            analysis.run(&graph).unwrap()
        });
    }
}

fn bench_sweep_cxm() {
    for classes in [4usize, 16, 64] {
        // Scale the exercised objects with the class count so the
        // reachable-code portion actually covers the C×M growth (a main
        // that touches a constant number of classes would leave the rest
        // unreachable and the analysis cost flat).
        let config = GeneratorConfig {
            classes,
            objects_in_main: classes * 2,
            ..Default::default()
        };
        let program = prepared(&config, 13);
        let lookup = MemberLookup::new(&program);
        let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
        timing::report("analysis/CxM", &classes.to_string(), 20, || {
            let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
            analysis.run(&graph).unwrap()
        });
    }
}

fn bench_jobs_sweep() {
    // A program large enough that sharding the reachable-function scan
    // pays for the thread spawns.
    let config = GeneratorConfig {
        classes: 96,
        members_per_class: 5,
        methods_per_class: 4,
        stmts_per_method: 24,
        objects_in_main: 192,
    };
    let program = prepared(&config, 17);
    let lookup = MemberLookup::new(&program);
    let graph = CallGraph::build(&program, &lookup, &CallGraphOptions::default()).unwrap();
    timing::report("analysis/jobs", "seq", 10, || {
        let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
        analysis.run(&graph).unwrap()
    });
    for jobs in [1usize, 2, 4, 8] {
        timing::report("analysis/jobs", &jobs.to_string(), 10, || {
            let analysis = DeadMemberAnalysis::new(&program, AnalysisConfig::default());
            analysis.run_jobs(&graph, jobs).unwrap()
        });
    }
}

fn bench_lookup_depth() {
    for depth in [2usize, 8, 32] {
        // A straight inheritance chain; the member lives at the top.
        let mut src = String::from("class C0 { public: int target; };\n");
        for i in 1..depth {
            src.push_str(&format!(
                "class C{i} : public C{} {{ public: int f{i}; }};\n",
                i - 1
            ));
        }
        src.push_str(&format!(
            "int main() {{ C{} obj; return obj.target; }}",
            depth - 1
        ));
        let tu = ddm_cppfront::parse(&src).unwrap();
        let program = Program::build(&tu).unwrap();
        let leaf = program.class_by_name(&format!("C{}", depth - 1)).unwrap();
        timing::report("lookup/depth", &depth.to_string(), 20, || {
            // Fresh service each iteration so the subobject-tree cache
            // does not amortize the work away.
            let lookup = MemberLookup::new(&program);
            lookup.data_member(leaf, "target").unwrap()
        });
    }
}

fn main() {
    bench_sweep_n();
    bench_sweep_cxm();
    bench_jobs_sweep();
    bench_lookup_depth();
}
