//! Subobject trees.
//!
//! A complete object of a most-derived class consists of *subobjects*: the
//! most-derived part, one subobject per non-virtual base embedding (a base
//! embedded twice yields two subobjects), and exactly one shared subobject
//! per virtual base. Both member lookup (C++ dominance/hiding) and object
//! layout are defined over this tree, so it is built once and shared.

use crate::ids::ClassId;
use crate::model::Program;
use std::collections::HashMap;

/// Identifies a subobject within one [`SubobjectTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubobjectId(u32);

impl SubobjectId {
    /// Raw index into the tree's node list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One subobject of a complete object.
#[derive(Debug, Clone)]
pub struct Subobject {
    /// The class this subobject is an instance of.
    pub class: ClassId,
    /// Direct base subobjects (shared virtual-base nodes appear as children
    /// of every subobject that inherits them directly).
    pub bases: Vec<SubobjectId>,
    /// True if this node is the shared subobject of a virtual base.
    pub is_virtual_base: bool,
}

/// The subobject decomposition of a complete object of one class.
///
/// # Examples
///
/// ```
/// use ddm_hierarchy::{Program, SubobjectTree};
///
/// let tu = ddm_cppfront::parse(
///     "class Top { public: int t; };\n\
///      class L : public virtual Top { };\n\
///      class R : public virtual Top { };\n\
///      class D : public L, public R { };\n\
///      int main() { D d; return 0; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let d = program.class_by_name("D").unwrap();
/// let tree = SubobjectTree::build(&program, d);
/// // D, L, R, and ONE shared Top: four subobjects.
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.virtual_bases().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SubobjectTree {
    nodes: Vec<Subobject>,
    virtual_nodes: Vec<(ClassId, SubobjectId)>,
}

impl SubobjectTree {
    /// Builds the subobject tree for a complete object of `class`.
    pub fn build(program: &Program, class: ClassId) -> Self {
        let mut tree = SubobjectTree {
            nodes: Vec::new(),
            virtual_nodes: Vec::new(),
        };
        let mut shared: HashMap<ClassId, SubobjectId> = HashMap::new();
        tree.expand(program, class, false, &mut shared);
        tree
    }

    fn expand(
        &mut self,
        program: &Program,
        class: ClassId,
        is_virtual_base: bool,
        shared: &mut HashMap<ClassId, SubobjectId>,
    ) -> SubobjectId {
        let id = SubobjectId(self.nodes.len() as u32);
        self.nodes.push(Subobject {
            class,
            bases: Vec::new(),
            is_virtual_base,
        });
        if is_virtual_base {
            self.virtual_nodes.push((class, id));
        }
        let bases = program.class(class).bases.clone();
        for b in bases {
            let child = if b.is_virtual {
                match shared.get(&b.id) {
                    Some(&existing) => existing,
                    None => {
                        let node = self.expand(program, b.id, true, shared);
                        shared.insert(b.id, node);
                        node
                    }
                }
            } else {
                self.expand(program, b.id, false, shared)
            };
            self.nodes[id.index()].bases.push(child);
        }
        id
    }

    /// The root (most-derived) subobject.
    pub fn root(&self) -> SubobjectId {
        SubobjectId(0)
    }

    /// The node data for `id`.
    pub fn node(&self, id: SubobjectId) -> &Subobject {
        &self.nodes[id.index()]
    }

    /// All subobjects, root first, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (SubobjectId, &Subobject)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (SubobjectId(i as u32), n))
    }

    /// Number of subobjects in the complete object.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never the case for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shared virtual-base subobjects, in first-encounter order.
    pub fn virtual_bases(&self) -> &[(ClassId, SubobjectId)] {
        &self.virtual_nodes
    }

    /// True if `base` is reachable from `derived` through base edges
    /// (i.e. `base` is a base subobject of `derived`). A node is not its
    /// own base subobject.
    pub fn is_base_subobject(&self, base: SubobjectId, derived: SubobjectId) -> bool {
        let mut stack = self.nodes[derived.index()].bases.clone();
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            if n == base {
                return true;
            }
            if !seen[n.index()] {
                seen[n.index()] = true;
                stack.extend(self.nodes[n.index()].bases.iter().copied());
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    fn tree_for(p: &Program, name: &str) -> SubobjectTree {
        SubobjectTree::build(p, p.class_by_name(name).unwrap())
    }

    #[test]
    fn single_class_has_one_subobject() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        let t = tree_for(&p, "A");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.virtual_bases().is_empty());
    }

    #[test]
    fn non_virtual_diamond_duplicates_the_top() {
        let p = program(
            "class Top { public: int t; };\n\
             class L : public Top { public: int l; };\n\
             class R : public Top { public: int r; };\n\
             class D : public L, public R { public: int d; };\n\
             int main() { return 0; }",
        );
        let t = tree_for(&p, "D");
        // D, L, Top, R, Top — two Top subobjects.
        assert_eq!(t.len(), 5);
        let tops = t
            .iter()
            .filter(|(_, n)| p.class(n.class).name == "Top")
            .count();
        assert_eq!(tops, 2);
    }

    #[test]
    fn virtual_diamond_shares_the_top() {
        let p = program(
            "class Top { public: int t; };\n\
             class L : public virtual Top { public: int l; };\n\
             class R : public virtual Top { public: int r; };\n\
             class D : public L, public R { public: int d; };\n\
             int main() { return 0; }",
        );
        let t = tree_for(&p, "D");
        // D, L, Top(shared), R — one Top subobject.
        assert_eq!(t.len(), 4);
        assert_eq!(t.virtual_bases().len(), 1);
        let tops = t
            .iter()
            .filter(|(_, n)| p.class(n.class).name == "Top")
            .count();
        assert_eq!(tops, 1);
        let (_, vtop) = t.virtual_bases()[0];
        assert!(t.node(vtop).is_virtual_base);
    }

    #[test]
    fn base_subobject_reachability() {
        let p = program(
            "class A { }; class B : public A { }; class C : public B { };\n\
             int main() { return 0; }",
        );
        let t = tree_for(&p, "C");
        let root = t.root();
        let b_node = t
            .iter()
            .find(|(_, n)| p.class(n.class).name == "B")
            .unwrap()
            .0;
        let a_node = t
            .iter()
            .find(|(_, n)| p.class(n.class).name == "A")
            .unwrap()
            .0;
        assert!(t.is_base_subobject(b_node, root));
        assert!(t.is_base_subobject(a_node, root));
        assert!(t.is_base_subobject(a_node, b_node));
        assert!(!t.is_base_subobject(root, a_node));
        assert!(!t.is_base_subobject(root, root), "not its own base");
    }

    #[test]
    fn mixed_virtual_and_nonvirtual_inheritance_of_same_base() {
        // One shared virtual Top plus one non-virtual Top embedding.
        let p = program(
            "class Top { public: int t; };\n\
             class L : public virtual Top { };\n\
             class R : public Top { };\n\
             class D : public L, public R { };\n\
             int main() { return 0; }",
        );
        let t = tree_for(&p, "D");
        let tops = t
            .iter()
            .filter(|(_, n)| p.class(n.class).name == "Top")
            .count();
        assert_eq!(tops, 2);
        assert_eq!(t.virtual_bases().len(), 1);
    }
}
