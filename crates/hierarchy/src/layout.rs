//! Object layout.
//!
//! Computes byte sizes and member offsets under a documented 1998-era
//! 32-bit object model (matching the paper's RS/6000 measurements in
//! spirit):
//!
//! * `char`/`bool` = 1 byte, `short` = 2, `int`/`long`/`float` = 4,
//!   `double` = 8, pointers/references/member-pointers = 4;
//! * one 4-byte *vptr* in every polymorphic class that cannot reuse the
//!   vptr of its first non-virtual polymorphic base;
//! * one 4-byte *vbptr* per direct virtual base;
//! * members laid out in declaration order with natural alignment;
//! * non-virtual bases embedded as prefixes in declaration order;
//! * each virtual base placed exactly once at the end of the most-derived
//!   object;
//! * unions overlay all members at offset 0.
//!
//! The dynamic measurements (the paper's Table 2 / Figure 4) are sums over
//! these layouts, so the model is what makes byte counts reproducible.

use crate::ids::{ClassId, MemberRef};
use crate::model::Program;
use crate::subobject::SubobjectTree;
use ddm_cppfront::ast::{ClassKind, Type, TypeKind};
use std::cell::RefCell;
use std::collections::HashMap;

/// Size of a pointer in the modelled ABI (32-bit, 1998-era).
pub const POINTER_SIZE: u32 = 4;
/// Size of the virtual-table pointer.
pub const VPTR_SIZE: u32 = 4;
/// Size of a virtual-base pointer.
pub const VBPTR_SIZE: u32 = 4;

/// One data member's placement inside a complete object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSlot {
    /// Which declared member occupies the slot. Members of a base class
    /// embedded twice produce two slots with the same `member`.
    pub member: MemberRef,
    /// Byte offset from the start of the complete object.
    pub offset: u32,
    /// Size in bytes.
    pub size: u32,
}

/// The computed layout of a complete object of one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLayout {
    /// Total size of a complete object in bytes (at least 1, like C++).
    pub size: u32,
    /// Alignment of the class.
    pub align: u32,
    /// Size when embedded as a non-virtual base subobject (excludes
    /// virtual bases, which the most-derived object places).
    pub nv_size: u32,
    /// Every data-member slot of a complete object, in offset order.
    pub fields: Vec<FieldSlot>,
    /// Whether the object contains at least one vptr.
    pub has_vptr: bool,
    /// Total bytes of overhead pointers (vptrs + vbptrs) in the object.
    pub overhead: u32,
}

impl ClassLayout {
    /// Sum of the sizes of slots whose member satisfies `pred`. Used by the
    /// dynamic profiler to compute the bytes occupied by dead members.
    pub fn bytes_where(&self, mut pred: impl FnMut(MemberRef) -> bool) -> u32 {
        self.fields
            .iter()
            .filter(|f| pred(f.member))
            .map(|f| f.size)
            .sum()
    }
}

/// Per-class non-virtual shape, cached.
#[derive(Debug, Clone)]
struct NvShape {
    nv_size: u32,
    align: u32,
    has_own_vptr: bool,
    /// Offsets of this class's own members, relative to subobject start.
    member_offsets: Vec<u32>,
    /// Offsets of non-virtual direct base subobjects, relative to
    /// subobject start (parallel to the non-virtual entries of `bases`).
    nv_base_offsets: Vec<u32>,
    /// Overhead bytes contributed directly by this subobject
    /// (own vptr + vbptrs).
    own_overhead: u32,
}

/// Layout computation service with per-class caching.
///
/// # Examples
///
/// ```
/// use ddm_hierarchy::{Program, LayoutEngine};
/// let tu = ddm_cppfront::parse(
///     "class P { public: char c; int x; }; int main() { P p; return 0; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let layouts = LayoutEngine::new(&program);
/// let p = program.class_by_name("P").unwrap();
/// let layout = layouts.layout(p);
/// assert_eq!(layout.size, 8); // char, 3 padding, int
/// ```
pub struct LayoutEngine<'p> {
    program: &'p Program,
    shapes: RefCell<HashMap<ClassId, NvShape>>,
    layouts: RefCell<HashMap<ClassId, std::rc::Rc<ClassLayout>>>,
}

impl<'p> LayoutEngine<'p> {
    /// Creates a layout engine for `program`.
    pub fn new(program: &'p Program) -> Self {
        LayoutEngine {
            program,
            shapes: RefCell::new(HashMap::new()),
            layouts: RefCell::new(HashMap::new()),
        }
    }

    /// Size in bytes of a value of `ty`.
    pub fn type_size(&self, ty: &Type) -> u32 {
        match &ty.kind {
            TypeKind::Void => 0,
            TypeKind::Bool | TypeKind::Char => 1,
            TypeKind::Short => 2,
            TypeKind::Int | TypeKind::Long | TypeKind::Float => 4,
            TypeKind::Double => 8,
            TypeKind::Pointer(_) | TypeKind::Reference(_) => POINTER_SIZE,
            TypeKind::MemberPointer { .. } => POINTER_SIZE,
            TypeKind::Function(_) => POINTER_SIZE,
            TypeKind::Array(inner, n) => self.type_size(inner) * (*n as u32),
            TypeKind::Named(name) => match self.program.class_by_name(name) {
                Some(id) => self.layout(id).size,
                None => 0,
            },
        }
    }

    /// Alignment in bytes of a value of `ty`.
    pub fn type_align(&self, ty: &Type) -> u32 {
        match &ty.kind {
            TypeKind::Void => 1,
            TypeKind::Bool | TypeKind::Char => 1,
            TypeKind::Short => 2,
            TypeKind::Int | TypeKind::Long | TypeKind::Float => 4,
            TypeKind::Double => 8,
            TypeKind::Pointer(_) | TypeKind::Reference(_) => POINTER_SIZE,
            TypeKind::MemberPointer { .. } => POINTER_SIZE,
            TypeKind::Function(_) => POINTER_SIZE,
            TypeKind::Array(inner, _) => self.type_align(inner),
            TypeKind::Named(name) => match self.program.class_by_name(name) {
                Some(id) => self.layout(id).align,
                None => 1,
            },
        }
    }

    /// The complete-object layout of `class` (cached).
    pub fn layout(&self, class: ClassId) -> std::rc::Rc<ClassLayout> {
        if let Some(l) = self.layouts.borrow().get(&class) {
            return l.clone();
        }
        let layout = std::rc::Rc::new(self.compute_layout(class));
        self.layouts.borrow_mut().insert(class, layout.clone());
        layout
    }

    /// True if `class` has virtual methods (directly or inherited).
    pub fn is_polymorphic(&self, class: ClassId) -> bool {
        let info = self.program.class(class);
        info.methods
            .iter()
            .any(|&f| self.program.function(f).is_virtual)
            || info.bases.iter().any(|b| self.is_polymorphic(b.id))
    }

    fn shape(&self, class: ClassId) -> NvShape {
        if let Some(s) = self.shapes.borrow().get(&class) {
            return s.clone();
        }
        let s = self.compute_shape(class);
        self.shapes.borrow_mut().insert(class, s.clone());
        s
    }

    fn compute_shape(&self, class: ClassId) -> NvShape {
        let info = self.program.class(class);
        if info.kind == ClassKind::Union {
            let mut size = 0u32;
            let mut align = 1u32;
            for m in &info.members {
                size = size.max(self.type_size(&m.ty));
                align = align.max(self.type_align(&m.ty));
            }
            return NvShape {
                nv_size: round_up(size.max(1), align),
                align,
                has_own_vptr: false,
                member_offsets: vec![0; info.members.len()],
                nv_base_offsets: Vec::new(),
                own_overhead: 0,
            };
        }

        let mut offset = 0u32;
        let mut align = 1u32;
        let mut nv_base_offsets = Vec::new();
        let mut own_overhead = 0u32;

        // Does the first non-virtual base already carry a vptr we can reuse?
        let first_nv_base_polymorphic = info
            .bases
            .iter()
            .find(|b| !b.is_virtual)
            .map(|b| self.is_polymorphic(b.id))
            .unwrap_or(false);
        let has_own_vptr = self.is_polymorphic(class) && !first_nv_base_polymorphic;
        if has_own_vptr {
            offset += VPTR_SIZE;
            align = align.max(POINTER_SIZE);
            own_overhead += VPTR_SIZE;
        }

        // Non-virtual bases embedded in declaration order.
        for b in &info.bases {
            if b.is_virtual {
                continue;
            }
            let bshape = self.shape(b.id);
            offset = round_up(offset, bshape.align);
            nv_base_offsets.push(offset);
            offset += bshape.nv_size;
            align = align.max(bshape.align);
        }

        // One vbptr per direct virtual base.
        for b in &info.bases {
            if b.is_virtual {
                offset = round_up(offset, POINTER_SIZE);
                offset += VBPTR_SIZE;
                align = align.max(POINTER_SIZE);
                own_overhead += VBPTR_SIZE;
            }
        }

        // Own members with natural alignment.
        let mut member_offsets = Vec::with_capacity(info.members.len());
        for m in &info.members {
            let msize = self.type_size(&m.ty);
            let malign = self.type_align(&m.ty);
            offset = round_up(offset, malign);
            member_offsets.push(offset);
            offset += msize;
            align = align.max(malign);
        }

        NvShape {
            nv_size: round_up(offset.max(1), align),
            align,
            has_own_vptr,
            member_offsets,
            nv_base_offsets,
            own_overhead,
        }
    }

    fn compute_layout(&self, class: ClassId) -> ClassLayout {
        let tree = SubobjectTree::build(self.program, class);
        // Assign an offset to every subobject: the root at 0, non-virtual
        // base children at their embedded offsets, virtual bases appended
        // after the root's non-virtual size.
        let mut offsets: HashMap<usize, u32> = HashMap::new();
        let root_shape = self.shape(class);
        offsets.insert(tree.root().index(), 0);
        let mut align = root_shape.align;
        let mut end = root_shape.nv_size;
        let mut has_vptr = root_shape.has_own_vptr;
        let mut overhead = 0u32;

        // Place virtual bases (each exactly once) after the nv part, in
        // first-encounter order.
        for &(vclass, vnode) in tree.virtual_bases() {
            let vshape = self.shape(vclass);
            let at = round_up(end, vshape.align);
            offsets.insert(vnode.index(), at);
            end = at + vshape.nv_size;
            align = align.max(vshape.align);
        }

        // Propagate offsets down through non-virtual embeddings (BFS from
        // every already-placed node).
        let mut work: Vec<crate::subobject::SubobjectId> = tree.iter().map(|(id, _)| id).collect();
        // Iterate until fixpoint (tree is small; a node's offset becomes
        // known once its parent's is).
        let mut changed = true;
        while changed {
            changed = false;
            for &sid in &work {
                let Some(&base_off) = offsets.get(&sid.index()) else {
                    continue;
                };
                let node = tree.node(sid);
                let shape = self.shape(node.class);
                let mut nv_i = 0;
                let class_bases = &self.program.class(node.class).bases;
                for (edge_i, &child) in node.bases.iter().enumerate() {
                    if class_bases[edge_i].is_virtual {
                        continue; // placed globally above
                    }
                    let child_off = base_off + shape.nv_base_offsets[nv_i];
                    nv_i += 1;
                    if offsets.insert(child.index(), child_off).is_none() {
                        changed = true;
                    }
                }
            }
        }
        work.clear();

        // Emit field slots and accumulate overhead.
        let mut fields = Vec::new();
        for (sid, node) in tree.iter() {
            let off = offsets[&sid.index()];
            let shape = self.shape(node.class);
            has_vptr |= shape.has_own_vptr;
            overhead += shape.own_overhead;
            let info = self.program.class(node.class);
            for (mi, m) in info.members.iter().enumerate() {
                fields.push(FieldSlot {
                    member: MemberRef::new(node.class, mi),
                    offset: off + shape.member_offsets[mi],
                    size: self.type_size(&m.ty),
                });
            }
        }
        fields.sort_by_key(|f| (f.offset, f.member));

        ClassLayout {
            size: round_up(end.max(1), align),
            align,
            nv_size: root_shape.nv_size,
            fields,
            has_vptr,
            overhead,
        }
    }
}

fn round_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    fn layout_of(src: &str, name: &str) -> ClassLayout {
        let p = program(src);
        let eng = LayoutEngine::new(&p);
        (*eng.layout(p.class_by_name(name).unwrap())).clone()
    }

    #[test]
    fn scalar_members_with_padding() {
        let l = layout_of(
            "class P { public: char c; int x; short s; }; int main() { return 0; }",
            "P",
        );
        // c @0, pad, x @4, s @8, pad to align 4 → 12.
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 4);
        assert_eq!(l.fields[2].offset, 8);
        assert_eq!(l.size, 12);
        assert_eq!(l.align, 4);
        assert!(!l.has_vptr);
        assert_eq!(l.overhead, 0);
    }

    #[test]
    fn double_forces_eight_byte_alignment() {
        let l = layout_of(
            "class P { public: int x; double d; }; int main() { return 0; }",
            "P",
        );
        assert_eq!(l.fields[1].offset, 8);
        assert_eq!(l.size, 16);
        assert_eq!(l.align, 8);
    }

    #[test]
    fn empty_class_has_size_one() {
        let l = layout_of("class E { }; int main() { return 0; }", "E");
        assert_eq!(l.size, 1);
        assert!(l.fields.is_empty());
    }

    #[test]
    fn polymorphic_class_gets_vptr() {
        let l = layout_of(
            "class A { public: virtual int f() { return 0; } int x; }; int main() { return 0; }",
            "A",
        );
        assert!(l.has_vptr);
        assert_eq!(l.fields[0].offset, 4, "member placed after the vptr");
        assert_eq!(l.size, 8);
        assert_eq!(l.overhead, 4);
    }

    #[test]
    fn derived_reuses_base_vptr() {
        let l = layout_of(
            "class A { public: virtual int f() { return 0; } int x; };\n\
             class B : public A { public: virtual int f() { return 1; } int y; };\n\
             int main() { return 0; }",
            "B",
        );
        // A subobject: vptr@0 x@4 (8 bytes); B adds y@8 → 12; no second vptr.
        assert_eq!(l.size, 12);
        assert_eq!(l.overhead, 4);
        let y = l.fields.iter().find(|f| f.offset == 8).unwrap();
        assert_eq!(y.size, 4);
    }

    #[test]
    fn nonvirtual_base_embedded_as_prefix() {
        let l = layout_of(
            "class A { public: int a; }; class B : public A { public: int b; };\n\
             int main() { return 0; }",
            "B",
        );
        assert_eq!(l.fields.len(), 2);
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 4);
        assert_eq!(l.size, 8);
    }

    #[test]
    fn nonvirtual_diamond_duplicates_base_members() {
        let l = layout_of(
            "class Top { public: int t; };\n\
             class L : public Top { public: int l; };\n\
             class R : public Top { public: int r; };\n\
             class D : public L, public R { public: int d; };\n\
             int main() { return 0; }",
            "D",
        );
        // Two copies of Top::t → 5 slots total, size 20.
        assert_eq!(l.fields.len(), 5);
        assert_eq!(l.size, 20);
        let t_slots: Vec<_> = l
            .fields
            .iter()
            .filter(|f| f.member.index == 0 && f.size == 4)
            .collect();
        assert!(t_slots.len() >= 2);
    }

    #[test]
    fn virtual_diamond_shares_base_and_pays_vbptrs() {
        let l = layout_of(
            "class Top { public: int t; };\n\
             class L : public virtual Top { public: int l; };\n\
             class R : public virtual Top { public: int r; };\n\
             class D : public L, public R { public: int d; };\n\
             int main() { return 0; }",
            "D",
        );
        // L: vbptr(4) + l(4) = 8 nv; R likewise; D: L(8) + R(8) + d(4) = 20 nv;
        // Top placed once at 20 → size 24. Overhead: two vbptrs = 8.
        assert_eq!(l.fields.len(), 4, "Top::t appears exactly once");
        assert_eq!(l.size, 24);
        assert_eq!(l.overhead, 8);
        let top_slot = l.fields.iter().find(|f| f.offset == 20).unwrap();
        assert_eq!(top_slot.size, 4);
    }

    #[test]
    fn union_overlays_members() {
        let l = layout_of(
            "union U { int i; double d; char c; }; int main() { return 0; }",
            "U",
        );
        assert_eq!(l.size, 8);
        assert!(l.fields.iter().all(|f| f.offset == 0));
    }

    #[test]
    fn nested_class_member_uses_complete_size() {
        let l = layout_of(
            "class Inner { public: int a; int b; };\n\
             class Outer { public: char c; Inner in; int z; };\n\
             int main() { return 0; }",
            "Outer",
        );
        // c@0, in@4 (8 bytes), z@12 → 16.
        assert_eq!(l.size, 16);
        let inner_field = l.fields.iter().find(|f| f.size == 8).unwrap();
        assert_eq!(inner_field.offset, 4);
    }

    #[test]
    fn arrays_multiply_sizes() {
        let p = program("class A { public: int buf[10]; char tag[3]; }; int main() { return 0; }");
        let eng = LayoutEngine::new(&p);
        let l = eng.layout(p.class_by_name("A").unwrap());
        assert_eq!(l.fields[0].size, 40);
        assert_eq!(l.fields[1].size, 3);
        assert_eq!(l.size, 44);
    }

    #[test]
    fn bytes_where_counts_selected_members() {
        let p = program("class A { public: int x; char c; double d; }; int main() { return 0; }");
        let eng = LayoutEngine::new(&p);
        let a = p.class_by_name("A").unwrap();
        let l = eng.layout(a);
        let all = l.bytes_where(|_| true);
        assert_eq!(all, 13);
        let only_x = l.bytes_where(|m| m.index == 0);
        assert_eq!(only_x, 4);
    }

    #[test]
    fn pointer_members_are_four_bytes() {
        let l = layout_of(
            "class A { public: A* next; int (*fp)(int); int A::* pm; };\n\
             int main() { return 0; }",
            "A",
        );
        assert!(l.fields.iter().all(|f| f.size == 4));
        assert_eq!(l.size, 12);
    }
}
