//! Dense bitsets over the program's index spaces.
//!
//! The semantic model hands out dense, zero-based ids ([`FuncId`],
//! [`ClassId`], and the member ids of
//! [`MemberIndex`](crate::summary::MemberIndex)), so set-of-ids state in
//! the fixpoint engines can be a flat `u64` word array instead of a
//! pointer-chasing tree: membership is one shift and mask, insertion
//! reports freshness for worklist seeding, and ascending iteration falls
//! out of the word order — which is exactly the deterministic id order
//! every downstream consumer (shard assignment, reports, `--explain`
//! witness search) sorts by.
//!
//! [`DenseBitSet`] is the untyped core; [`FuncBitSet`] and
//! [`ClassBitSet`] wrap it with the id newtypes so a function set cannot
//! be indexed with a class id by accident.

use crate::ids::{ClassId, FuncId};

/// A growable bitset over dense `u32` ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// An empty set sized for ids `0..len` without reallocation.
    pub fn with_capacity(len: usize) -> DenseBitSet {
        DenseBitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Inserts `id`; returns true if it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        let (word, bit) = (id as usize / 64, id as usize % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Removes `id`; returns true if it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let (word, bit) = (id as usize / 64, id as usize % 64);
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        let (word, bit) = (id as usize / 64, id as usize % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of ids in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Unions `other` into this set; returns true if anything was added.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            changed |= o & !*w != 0;
            *w |= o;
        }
        changed
    }

    /// The set's ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::from_fn({
                let mut w = word;
                move || {
                    if w == 0 {
                        return None;
                    }
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some((wi * 64) as u32 + bit)
                }
            })
        })
    }
}

macro_rules! typed_bitset {
    ($(#[$doc:meta])* $name:ident, $id:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default, PartialEq, Eq)]
        pub struct $name {
            bits: DenseBitSet,
        }

        impl $name {
            /// An empty set sized for ids `0..len` without reallocation.
            pub fn with_capacity(len: usize) -> $name {
                $name {
                    bits: DenseBitSet::with_capacity(len),
                }
            }

            /// Inserts `id`; returns true if it was not already present.
            pub fn insert(&mut self, id: $id) -> bool {
                self.bits.insert(id.index() as u32)
            }

            /// Removes `id`; returns true if it was present.
            pub fn remove(&mut self, id: $id) -> bool {
                self.bits.remove(id.index() as u32)
            }

            /// Whether `id` is in the set.
            pub fn contains(&self, id: $id) -> bool {
                self.bits.contains(id.index() as u32)
            }

            /// Number of ids in the set.
            pub fn count(&self) -> usize {
                self.bits.count()
            }

            /// Whether the set is empty.
            pub fn is_empty(&self) -> bool {
                self.bits.is_empty()
            }

            /// Unions `other` into this set; returns true if anything was
            /// added.
            pub fn union_with(&mut self, other: &$name) -> bool {
                self.bits.union_with(&other.bits)
            }

            /// The set's ids in ascending order.
            pub fn iter(&self) -> impl Iterator<Item = $id> + '_ {
                self.bits.iter().map(|i| $id::from_index(i as usize))
            }

            /// The set's ids as a sorted vector.
            pub fn to_vec(&self) -> Vec<$id> {
                let mut out = Vec::with_capacity(self.count());
                out.extend(self.iter());
                out
            }
        }
    };
}

typed_bitset!(
    /// A dense bitset of [`FuncId`]s.
    FuncBitSet,
    FuncId
);
typed_bitset!(
    /// A dense bitset of [`ClassId`]s.
    ClassBitSet,
    ClassId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_freshness_and_grows() {
        let mut s = DenseBitSet::with_capacity(10);
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert is not fresh");
        assert!(s.insert(200), "insert beyond capacity grows the set");
        assert!(s.contains(3));
        assert!(s.contains(200));
        assert!(!s.contains(4));
        assert!(!s.contains(10_000), "out-of-range lookups are just absent");
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = DenseBitSet::default();
        s.insert(65);
        assert!(s.remove(65));
        assert!(!s.remove(65), "second remove finds nothing");
        assert!(!s.remove(1_000), "out-of-range remove finds nothing");
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = DenseBitSet::default();
        for id in [130, 0, 64, 63, 7, 129] {
            s.insert(id);
        }
        let order: Vec<u32> = s.iter().collect();
        assert_eq!(order, vec![0, 7, 63, 64, 129, 130]);
    }

    #[test]
    fn union_merges_and_reports_change() {
        let mut a = DenseBitSet::default();
        a.insert(1);
        let mut b = DenseBitSet::default();
        b.insert(1);
        b.insert(100);
        assert!(a.union_with(&b), "100 is new to a");
        assert!(!a.union_with(&b), "second union adds nothing");
        assert_eq!(a.count(), 2);
        let empty = DenseBitSet::default();
        assert!(!a.union_with(&empty));
    }

    #[test]
    fn word_boundary_bits_land_in_the_right_words() {
        // Bits 63/64 and 127/128 straddle word boundaries; get them
        // wrong and membership silently aliases a neighbour.
        let mut s = DenseBitSet::with_capacity(256);
        for id in [0, 63, 64, 127, 128, 255] {
            assert!(s.insert(id), "{id} fresh");
        }
        for id in [0, 63, 64, 127, 128, 255] {
            assert!(s.contains(id), "{id} present");
        }
        for id in [1, 62, 65, 126, 129, 254] {
            assert!(!s.contains(id), "{id} absent");
        }
        assert_eq!(s.count(), 6);
        assert!(s.remove(64));
        assert!(s.contains(63), "removing 64 leaves word 0 alone");
        assert!(s.contains(128), "removing 64 leaves word 2 alone");
    }

    #[test]
    fn union_grows_the_shorter_side_and_is_word_parallel() {
        // Shorter-into-longer and longer-into-shorter both work; the
        // change flag reflects bits, not lengths.
        let mut short = DenseBitSet::with_capacity(64);
        short.insert(5);
        let mut long = DenseBitSet::with_capacity(640);
        long.insert(5);
        long.insert(639);
        assert!(short.union_with(&long), "bit 639 forces growth");
        assert_eq!(short.iter().collect::<Vec<_>>(), vec![5, 639]);
        // The reverse direction: nothing new flows from short to long.
        assert!(!long.union_with(&short));
        // A longer but all-zero operand must not report change.
        let hollow = DenseBitSet::with_capacity(10_000);
        assert!(!long.union_with(&hollow));
        assert_eq!(long.count(), 2);
    }

    #[test]
    fn dense_full_words_iterate_completely() {
        let mut s = DenseBitSet::with_capacity(128);
        for id in 0..128 {
            s.insert(id);
        }
        assert_eq!(s.count(), 128);
        let all: Vec<u32> = s.iter().collect();
        assert_eq!(all, (0..128).collect::<Vec<u32>>());
        assert!(!s.is_empty());
    }

    #[test]
    fn typed_wrappers_round_trip_ids() {
        let mut funcs = FuncBitSet::with_capacity(8);
        let f0 = FuncId::from_index(0);
        let f5 = FuncId::from_index(5);
        assert!(funcs.insert(f5));
        assert!(funcs.insert(f0));
        assert!(!funcs.insert(f5));
        assert!(funcs.contains(f0));
        assert!(funcs.remove(f0));
        assert!(!funcs.contains(f0));
        assert_eq!(funcs.to_vec(), vec![f5]);

        let mut classes = ClassBitSet::default();
        assert!(classes.is_empty());
        classes.insert(ClassId::from_index(3));
        assert_eq!(classes.iter().collect::<Vec<_>>(), vec![ClassId::from_index(3)]);
        assert_eq!(classes.count(), 1);
    }

    #[test]
    fn equal_capacity_sets_with_equal_content_compare_equal() {
        // The call-graph builders rely on this: two engines build their
        // sets with the same `with_capacity`, so word lengths agree and
        // derived equality is semantic equality.
        let mut a = FuncBitSet::with_capacity(100);
        let mut b = FuncBitSet::with_capacity(100);
        a.insert(FuncId::from_index(42));
        b.insert(FuncId::from_index(42));
        assert_eq!(a, b);
        b.insert(FuncId::from_index(43));
        assert_ne!(a, b);
    }
}
