//! Typed index newtypes used throughout the semantic model.

use std::fmt;

/// Identifies a class in a [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// The raw index into the program's class table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ClassId` from a raw index. Callers are expected to use
    /// indices obtained from the same [`Program`](crate::Program).
    pub fn from_index(i: usize) -> Self {
        ClassId(i as u32)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Identifies a function (free function or method) in a
/// [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// The raw index into the program's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `FuncId` from a raw index.
    pub fn from_index(i: usize) -> Self {
        FuncId(i as u32)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Identifies a specific data member: the class that *declares* it plus the
/// index in that class's member list.
///
/// This is the unit the dead-member analysis classifies: the paper's
/// `C::m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberRef {
    /// The declaring class.
    pub class: ClassId,
    /// Index into the declaring class's data-member list.
    pub index: u32,
}

impl MemberRef {
    /// Creates a member reference.
    pub fn new(class: ClassId, index: usize) -> Self {
        MemberRef {
            class,
            index: index as u32,
        }
    }
}

impl fmt::Display for MemberRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::member#{}", self.class, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(ClassId::from_index(7).index(), 7);
        assert_eq!(FuncId::from_index(3).index(), 3);
    }

    #[test]
    fn member_ref_ordering_groups_by_class() {
        let a = MemberRef::new(ClassId(0), 5);
        let b = MemberRef::new(ClassId(1), 0);
        assert!(a < b);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(ClassId(2).to_string(), "class#2");
        assert_eq!(
            MemberRef::new(ClassId(1), 4).to_string(),
            "class#1::member#4"
        );
    }
}
