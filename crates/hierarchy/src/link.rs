//! Links per-TU [`TuModule`]s into one whole-program model.
//!
//! The link step mirrors a C++ linker restricted to the header model the
//! front end assumes: every TU is self-contained for *types* (class and
//! enum definitions are textually duplicated across TUs, as if included
//! from a header, and merged under ODR identity — first definition
//! wins), while *functions* link by name (a body-less free-function
//! prototype in one TU binds to the definition in another, names only,
//! exactly like C linkage). Conflicting definitions are collected — all
//! of them, not just the first — and reported as a deterministic,
//! sorted diagnostic list.
//!
//! The output is a [`LinkedProgram`]: an assembled [`Program`] plus a
//! [`ProgramSummary`] whose per-function summaries were *resolved* from
//! the modules' symbolic summaries (cross-TU candidate tables recomputed
//! from the linked hierarchy), never re-walked. Function bodies are
//! injected from per-TU parses when available and synthesized as
//! analysis-equivalent stand-ins otherwise, so a cache-warm link (no
//! parses at all) drives the summary engine to byte-identical output.

use crate::ids::{ClassId, FuncId};
use crate::model::{BaseInfo, ClassInfo, FunctionInfo, GlobalInfo, MemberInfo, Program};
use crate::module::{ClassRecord, FreeFnRecord, SymResolver, SymResult, TuModule};
use crate::summary::{FnSummary, ProgramSummary};
use crate::typewalk::TypeError;
use ddm_cppfront::ast::{Block, CtorInit, Param, Type};
use ddm_cppfront::Span;
use ddm_telemetry::{EventClass, Telemetry};
use std::collections::HashMap;
use std::fmt;

/// All definition conflicts found while linking, rendered one per line,
/// sorted and deduplicated so the diagnostic is deterministic for any
/// TU order and worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    /// Rendered conflict lines (sorted, deduplicated).
    pub conflicts: Vec<String>,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} definition conflict(s) across translation units:",
            self.conflicts.len()
        )?;
        for line in &self.conflicts {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LinkError {}

/// A linked whole-program view plus the per-TU provenance needed to
/// attribute later analysis errors back to a file.
#[derive(Debug)]
pub struct LinkedProgram {
    program: Program,
    summary: ProgramSummary,
    fn_tu: Vec<usize>,
    class_tu: Vec<usize>,
    global_tu: Vec<usize>,
    globals_err_tu: Option<usize>,
}

impl LinkedProgram {
    /// The assembled whole-program model.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The linked program summary (resolved, never re-walked).
    pub fn summary(&self) -> &ProgramSummary {
        &self.summary
    }

    /// The TU that provided `func`'s summary (its defining TU).
    pub fn fn_tu(&self, func: FuncId) -> usize {
        self.fn_tu[func.index()]
    }

    /// The TU whose definition of `class` won the ODR merge.
    pub fn class_tu(&self, class: ClassId) -> usize {
        self.class_tu[class.index()]
    }

    /// The TU that defined global number `index`.
    pub fn global_tu(&self, index: usize) -> usize {
        self.global_tu[index]
    }

    /// Best-effort attribution of an analysis-phase [`TypeError`] to the
    /// TU whose body produced it: scans the stored per-function results
    /// in id order, then the global-initializer result.
    pub fn locate_error(&self, err: &TypeError) -> Option<usize> {
        for i in 0..self.program.function_count() {
            let fid = FuncId::from_index(i);
            if self.summary.function(fid).as_ref() == Err(err) {
                return Some(self.fn_tu[i]);
            }
        }
        if self.summary.globals().as_ref() == Err(err) {
            return self.globals_err_tu;
        }
        None
    }
}

/// Where a free function's linked identity comes from.
struct FreeMerge<'m> {
    /// TU and record of the first appearance (prototype or definition) —
    /// fixes the function's position in the linked id order.
    first: (usize, &'m FreeFnRecord),
    /// TU and record of the winning definition, when one exists.
    def: Option<(usize, &'m FreeFnRecord)>,
}

impl<'m> FreeMerge<'m> {
    /// The record that provides the summary, body, and arity.
    fn provider(&self) -> (usize, &'m FreeFnRecord) {
        self.def.unwrap_or(self.first)
    }
}

fn loc(module: &TuModule, line: u32, col: u32) -> String {
    format!("{}:{line}:{col}", module.file)
}

/// Orders a pair of rendered locations so a conflict reads the same no
/// matter which TU the linker saw first.
fn pair(a: String, b: String) -> (String, String) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Links `modules` into one program. `parsed[t]`, when present, is the
/// per-TU [`Program`] that `modules[t]` was extracted from; its function
/// bodies and global initializers are injected into the linked model
/// (the walk engine needs them). For cache-warm TUs pass `None`:
/// analysis-equivalent stand-ins are synthesized (same arity, same
/// body-presence, same initializer-presence — everything the summary
/// engine observes).
///
/// # Errors
///
/// [`LinkError`] listing every definition conflict.
pub fn link(modules: &[TuModule], parsed: &[Option<Program>]) -> Result<LinkedProgram, LinkError> {
    link_with(modules, parsed, &Telemetry::disabled())
}

/// [`link`] with telemetry: every ODR class merge, every definition
/// conflict, and the link summary land in the flight recorder.
///
/// Link decisions depend only on the module list (input order, built
/// identically cold or warm, on the coordinating thread), so all link
/// events are deterministic class.
///
/// # Errors
///
/// [`LinkError`] listing every definition conflict.
pub fn link_with(
    modules: &[TuModule],
    parsed: &[Option<Program>],
    telemetry: &Telemetry,
) -> Result<LinkedProgram, LinkError> {
    assert_eq!(
        modules.len(),
        parsed.len(),
        "one (optional) parse per module"
    );
    let mut conflicts: Vec<String> = Vec::new();

    // --- Merge classes under ODR identity (first definition wins). ---
    let mut class_first: HashMap<&str, (usize, &ClassRecord)> = HashMap::new();
    let mut class_order: Vec<(usize, &ClassRecord)> = Vec::new();
    for (t, m) in modules.iter().enumerate() {
        for c in &m.classes {
            let c: &ClassRecord = c;
            match class_first.get(c.name.as_str()) {
                None => {
                    class_first.insert(&c.name, (t, c));
                    class_order.push((t, c));
                }
                Some(&(ft, fc)) => {
                    if fc.odr_eq(c) {
                        telemetry.event(EventClass::Deterministic, "odr_class_merge", || {
                            vec![
                                ("class", c.name.as_str().into()),
                                ("kept_tu", modules[ft].file.as_str().into()),
                                ("dup_tu", m.file.as_str().into()),
                            ]
                        });
                    } else {
                        let (a, b) = pair(
                            loc(&modules[ft], fc.line, fc.col),
                            loc(&modules[t], c.line, c.col),
                        );
                        conflicts.push(format!(
                            "{} `{}` defined differently: {a} vs {b}",
                            c.kind, c.name,
                        ));
                    }
                }
            }
        }
    }

    // --- Merge enums (same identity rule: name + variants). ---
    let mut enum_first: HashMap<&str, (usize, &crate::module::EnumRecord)> = HashMap::new();
    let mut enum_order: Vec<(usize, &crate::module::EnumRecord)> = Vec::new();
    for (t, m) in modules.iter().enumerate() {
        for e in &m.enums {
            match enum_first.get(e.name.as_str()) {
                None => {
                    enum_first.insert(&e.name, (t, e));
                    enum_order.push((t, e));
                    if let Some(&(ct, cc)) = class_first.get(e.name.as_str()) {
                        conflicts.push(format!(
                            "`{}` is a {} at {} and an enum at {}",
                            e.name,
                            cc.kind,
                            loc(&modules[ct], cc.line, cc.col),
                            loc(&modules[t], e.line, e.col),
                        ));
                    }
                }
                Some(&(ft, fe)) => {
                    if fe.variants != e.variants {
                        let (a, b) = pair(
                            loc(&modules[ft], fe.line, fe.col),
                            loc(&modules[t], e.line, e.col),
                        );
                        conflicts
                            .push(format!("enum `{}` defined differently: {a} vs {b}", e.name));
                    }
                }
            }
        }
    }

    // --- Enumerator values must agree across all enums that are kept. ---
    let mut enumerator_first: HashMap<&str, (usize, &crate::module::EnumRecord, i64)> =
        HashMap::new();
    for &(t, e) in &enum_order {
        for (name, value) in &e.variants {
            match enumerator_first.get(name.as_str()) {
                None => {
                    enumerator_first.insert(name, (t, e, *value));
                }
                Some(&(ft, fe, fv)) => {
                    if fv != *value {
                        let mut defs = [
                            (loc(&modules[ft], fe.line, fe.col), fv),
                            (loc(&modules[t], e.line, e.col), *value),
                        ];
                        defs.sort();
                        conflicts.push(format!(
                            "enumerator `{name}` has conflicting values: {} at {} vs {} at {}",
                            defs[0].1, defs[0].0, defs[1].1, defs[1].0,
                        ));
                    }
                }
            }
        }
    }

    // --- Globals: exactly one definition per name, program-wide. ---
    let mut global_first: HashMap<&str, (usize, &crate::module::GlobalRecord)> = HashMap::new();
    for (t, m) in modules.iter().enumerate() {
        for g in &m.globals {
            match global_first.get(g.name.as_str()) {
                None => {
                    global_first.insert(&g.name, (t, g));
                }
                Some(&(ft, fg)) => {
                    let (a, b) = pair(
                        loc(&modules[ft], fg.line, fg.col),
                        loc(&modules[t], g.line, g.col),
                    );
                    conflicts.push(format!(
                        "global `{}` defined in two translation units: {a} and {b}",
                        g.name,
                    ));
                }
            }
        }
    }

    // --- Free functions: C-style linkage, names only. A prototype
    // binds to the definition; two definitions must be textually
    // identical (same source fingerprint). Position in the linked id
    // order is the name's first appearance. ---
    let mut free_merge: HashMap<&str, FreeMerge<'_>> = HashMap::new();
    let mut free_order: Vec<&str> = Vec::new();
    for (t, m) in modules.iter().enumerate() {
        for f in &m.free_fns {
            match free_merge.get_mut(f.name.as_str()) {
                None => {
                    free_order.push(&f.name);
                    free_merge.insert(
                        &f.name,
                        FreeMerge {
                            first: (t, f),
                            def: f.has_body.then_some((t, f)),
                        },
                    );
                }
                Some(merge) => {
                    if f.has_body {
                        match merge.def {
                            None => merge.def = Some((t, f)),
                            Some((dt, df)) => {
                                if df.body_fp != f.body_fp {
                                    let (a, b) = pair(
                                        loc(&modules[dt], df.line, df.col),
                                        loc(&modules[t], f.line, f.col),
                                    );
                                    conflicts.push(format!(
                                        "function `{}` defined differently: {a} vs {b}",
                                        f.name,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    if !conflicts.is_empty() {
        conflicts.sort();
        conflicts.dedup();
        for line in &conflicts {
            telemetry.event(EventClass::Deterministic, "link_conflict", || {
                vec![("detail", line.as_str().into())]
            });
        }
        return Err(LinkError { conflicts });
    }

    // --- Assign linked ids and assemble the model. Order matches the
    // single-TU front end: classes by first appearance; all methods
    // (class order, declaration order) before free functions. ---
    let class_id: HashMap<&str, ClassId> = class_order
        .iter()
        .enumerate()
        .map(|(i, (_, c))| (c.name.as_str(), ClassId::from_index(i)))
        .collect();

    let mut classes: Vec<ClassInfo> = Vec::with_capacity(class_order.len());
    let mut class_tu: Vec<usize> = Vec::with_capacity(class_order.len());
    let mut functions: Vec<FunctionInfo> = Vec::new();
    let mut fn_tu: Vec<usize> = Vec::new();
    let mut fn_summaries: Vec<&SymResult> = Vec::new();

    for (ci, &(t, rec)) in class_order.iter().enumerate() {
        let linked_cid = ClassId::from_index(ci);
        let per_tu = parsed[t].as_ref();
        let per_tu_cid = per_tu.map(|p| {
            p.class_by_name(&rec.name)
                .expect("a module's class exists in the program it was extracted from")
        });
        let mut methods = Vec::with_capacity(rec.methods.len());
        for (i, mrec) in rec.methods.iter().enumerate() {
            let fid = FuncId::from_index(functions.len());
            methods.push(fid);
            let info = match (per_tu, per_tu_cid) {
                (Some(p), Some(cid)) => {
                    let f = p.function(p.class(cid).methods[i]);
                    FunctionInfo {
                        name: f.name.clone(),
                        kind: f.kind,
                        class: Some(linked_cid),
                        is_virtual: f.is_virtual,
                        ret: f.ret.clone(),
                        params: f.params.clone(),
                        inits: f.inits.clone(),
                        body: f.body.clone(),
                        span: f.span,
                    }
                }
                _ => synth_function(
                    &mrec.name,
                    mrec.kind,
                    Some(linked_cid),
                    mrec.is_virtual,
                    mrec.arity,
                    mrec.has_body,
                    mrec.has_inits,
                ),
            };
            functions.push(info);
            fn_tu.push(t);
            fn_summaries.push(&mrec.summary);
        }
        classes.push(ClassInfo {
            name: rec.name.clone(),
            kind: rec.kind,
            bases: rec
                .bases
                .iter()
                .map(|(name, is_virtual)| BaseInfo {
                    id: class_id[name.as_str()],
                    is_virtual: *is_virtual,
                })
                .collect(),
            members: rec
                .members
                .iter()
                .map(|m| MemberInfo {
                    name: m.name.clone(),
                    ty: m.ty.clone(),
                    is_volatile: m.is_volatile,
                    span: Span::dummy(),
                })
                .collect(),
            methods,
            span: Span::dummy(),
        });
        class_tu.push(t);
    }

    for name in &free_order {
        let (t, rec) = free_merge[name].provider();
        let info = match parsed[t].as_ref() {
            Some(p) => {
                let f = p.function(
                    p.free_function(name)
                        .expect("a module's free function exists in its own program"),
                );
                FunctionInfo {
                    name: f.name.clone(),
                    kind: f.kind,
                    class: None,
                    is_virtual: f.is_virtual,
                    ret: f.ret.clone(),
                    params: f.params.clone(),
                    inits: f.inits.clone(),
                    body: f.body.clone(),
                    span: f.span,
                }
            }
            None => synth_function(
                name,
                ddm_cppfront::ast::FunctionKind::Free,
                None,
                false,
                rec.arity,
                rec.has_body,
                false,
            ),
        };
        functions.push(info);
        fn_tu.push(t);
        fn_summaries.push(&rec.summary);
    }

    // --- Globals, concatenated in TU order. ---
    let mut globals: Vec<GlobalInfo> = Vec::new();
    let mut global_tu: Vec<usize> = Vec::new();
    for (t, m) in modules.iter().enumerate() {
        for g in &m.globals {
            let init = parsed[t].as_ref().and_then(|p| {
                p.globals()
                    .iter()
                    .find(|pg| pg.name == g.name)
                    .and_then(|pg| pg.init.clone())
            });
            globals.push(GlobalInfo {
                name: g.name.clone(),
                ty: g.ty.clone(),
                init,
                span: Span::dummy(),
            });
            global_tu.push(t);
        }
    }

    // --- Enums, merged. ---
    let mut enum_consts: HashMap<String, i64> = HashMap::new();
    let mut enum_names: std::collections::HashSet<String> = std::collections::HashSet::new();
    for &(_, e) in &enum_order {
        enum_names.insert(e.name.clone());
        for (name, value) in &e.variants {
            enum_consts.insert(name.clone(), *value);
        }
    }

    let program = Program::assemble(classes, functions, globals, enum_consts, enum_names);

    // --- Resolve the symbolic summaries against the linked id space.
    // Candidate tables (virtual dispatch, `delete` obligations) are
    // recomputed from the linked hierarchy inside the resolver. ---
    let resolver = SymResolver::new(&program);
    let function_results: Vec<Result<FnSummary, TypeError>> =
        fn_summaries.iter().map(|s| resolver.resolve(s)).collect();

    let mut globals_err_tu = None;
    let mut globals_result: Result<FnSummary, TypeError> = Ok(FnSummary {
        live_steps: Vec::new(),
        cg_steps: Vec::new(),
    });
    for (t, m) in modules.iter().enumerate() {
        match resolver.resolve(&m.globals_summary) {
            Ok(s) => {
                if let Ok(acc) = &mut globals_result {
                    acc.live_steps.extend(s.live_steps);
                    acc.cg_steps.extend(s.cg_steps);
                }
            }
            Err(e) => {
                globals_err_tu = Some(t);
                globals_result = Err(e);
                break;
            }
        }
    }

    let summary = ProgramSummary::from_parts(&program, function_results, globals_result);

    telemetry.event(EventClass::Deterministic, "link_done", || {
        vec![
            ("tus", modules.len().into()),
            ("classes", program.class_count().into()),
            ("functions", program.function_count().into()),
            ("globals", program.globals().len().into()),
        ]
    });
    telemetry.metrics(|m| {
        m.gauge_set("link/tus", modules.len() as i64);
        m.gauge_set("link/classes", program.class_count() as i64);
        m.gauge_set("link/functions", program.function_count() as i64);
    });

    Ok(LinkedProgram {
        program,
        summary,
        fn_tu,
        class_tu,
        global_tu,
        globals_err_tu,
    })
}

/// An analysis-equivalent stand-in for an unparsed (cache-warm)
/// function: same name/kind/virtualness, `arity` placeholder parameters
/// (constructor overloads resolve by arity), a placeholder body iff the
/// real one had a body, one placeholder initializer iff the real one had
/// any. The summary engine reads nothing else from a `FunctionInfo`.
fn synth_function(
    name: &str,
    kind: ddm_cppfront::ast::FunctionKind,
    class: Option<ClassId>,
    is_virtual: bool,
    arity: u32,
    has_body: bool,
    has_inits: bool,
) -> FunctionInfo {
    FunctionInfo {
        name: name.to_string(),
        kind,
        class,
        is_virtual,
        ret: Type::void(),
        params: (0..arity)
            .map(|_| Param {
                name: String::new(),
                ty: Type::int(),
                span: Span::dummy(),
            })
            .collect(),
        inits: if has_inits {
            vec![CtorInit {
                name: String::new(),
                args: Vec::new(),
                span: Span::dummy(),
            }]
        } else {
            Vec::new()
        },
        body: has_body.then(Block::default),
        span: Span::dummy(),
    }
}

/// The summary-level difference between two module lists, computed
/// before linking. This is what drives the incremental warm path:
/// [`link_delta`] names exactly which classes and free functions an
/// edit touched, so the fixpoint can decide whether the previous
/// converged state is still valid (class space stable, no reachable
/// function perturbed) instead of re-running from scratch.
///
/// Identity is by *name* — the same identity the linker itself merges
/// under — and "changed" means the merged record is no longer
/// value-equal, which is strictly stronger than ODR identity (a method
/// body edit changes the summary but not the ODR shape; it still must
/// invalidate the fixpoint).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkDelta {
    /// Positions (input order) of TUs whose module content changed,
    /// including positions only present on one side.
    pub tus_changed: Vec<usize>,
    /// Class names present only in the new module list.
    pub classes_added: Vec<String>,
    /// Class names present only in the old module list.
    pub classes_removed: Vec<String>,
    /// Class names whose winning (first-appearance) record changed —
    /// ODR shape, method bodies, or summaries.
    pub classes_changed: Vec<String>,
    /// Free-function names present only in the new module list.
    pub fns_added: Vec<String>,
    /// Free-function names present only in the old module list.
    pub fns_removed: Vec<String>,
    /// Free-function names whose providing record (the definition when
    /// one exists, else the first prototype) changed.
    pub fns_changed: Vec<String>,
    /// Whether every TU's enums, globals, and global-initializer
    /// summary are unchanged (positionally).
    pub enums_and_globals_stable: bool,
}

impl LinkDelta {
    /// Whether nothing changed at all.
    pub fn is_empty(&self) -> bool {
        self.tus_changed.is_empty()
    }

    /// Whether the linked *class space* is unchanged: no class was
    /// added, removed, or edited, and enums/globals are stable. When
    /// this holds, class ids, member ids, dispatch tables, and layouts
    /// are identical to the previous link, so only function-level
    /// facts can differ.
    pub fn class_space_stable(&self) -> bool {
        self.classes_added.is_empty()
            && self.classes_removed.is_empty()
            && self.classes_changed.is_empty()
            && self.enums_and_globals_stable
    }

    /// Size of the function-level invalidation frontier: every free
    /// function the edit added, removed, or changed.
    pub fn frontier_len(&self) -> usize {
        self.fns_added.len() + self.fns_removed.len() + self.fns_changed.len()
    }
}

/// The per-name record a free function links to: the definition when
/// one exists, else the first prototype (mirrors `FreeMerge::provider`,
/// without conflict handling — delta computation is observational).
fn free_providers<'a>(
    modules: impl IntoIterator<Item = &'a TuModule>,
) -> std::collections::BTreeMap<&'a str, &'a FreeFnRecord> {
    let mut map: std::collections::BTreeMap<&str, &FreeFnRecord> =
        std::collections::BTreeMap::new();
    for m in modules {
        for f in &m.free_fns {
            match map.get(f.name.as_str()) {
                None => {
                    map.insert(&f.name, f);
                }
                Some(prev) if !prev.has_body && f.has_body => {
                    map.insert(&f.name, f);
                }
                Some(_) => {}
            }
        }
    }
    map
}

/// First-appearance class records by name (the record the ODR merge
/// keeps).
fn class_winners<'a>(
    modules: impl IntoIterator<Item = &'a TuModule>,
) -> std::collections::BTreeMap<&'a str, &'a ClassRecord> {
    let mut map: std::collections::BTreeMap<&str, &ClassRecord> = std::collections::BTreeMap::new();
    for m in modules {
        for c in &m.classes {
            let c: &ClassRecord = c;
            map.entry(&c.name).or_insert(c);
        }
    }
    map
}

/// Computes the [`LinkDelta`] between the previous run's module list
/// and the current one. Input order is the TU order handed to
/// [`link`]; both lists may differ in length (TUs added or dropped).
///
/// Cost is linear in the two module lists and independent of the
/// analysis itself; it runs once per warm start.
pub fn link_delta(old: &[TuModule], new: &[TuModule]) -> LinkDelta {
    let old_refs: Vec<&TuModule> = old.iter().collect();
    link_delta_ref(&old_refs, new)
}

/// [`link_delta`] over borrowed previous modules. A warm start keeps
/// the previous run's modules inside its snapshot; this variant lets it
/// diff against them without cloning the whole module list first (for
/// an unchanged TU the caller passes a reference to the *current*
/// module, which is content-identical, so a rename alone is not a
/// change).
pub fn link_delta_ref(old: &[&TuModule], new: &[TuModule]) -> LinkDelta {
    let mut delta = LinkDelta {
        enums_and_globals_stable: old.len() == new.len(),
        ..LinkDelta::default()
    };
    let positions = old.len().max(new.len());
    for t in 0..positions {
        match (old.get(t), new.get(t)) {
            (Some(a), Some(b)) if **a == *b => {}
            (Some(a), Some(b)) => {
                delta.tus_changed.push(t);
                if a.enums != b.enums
                    || a.globals != b.globals
                    || a.globals_summary != b.globals_summary
                {
                    delta.enums_and_globals_stable = false;
                }
            }
            _ => delta.tus_changed.push(t),
        }
    }
    if delta.tus_changed.is_empty() {
        delta.enums_and_globals_stable = true;
        return delta;
    }

    let (old_classes, new_classes) =
        (class_winners(old.iter().copied()), class_winners(new));
    for (name, rec) in &old_classes {
        match new_classes.get(name) {
            None => delta.classes_removed.push((*name).to_string()),
            Some(new_rec) if new_rec != rec => delta.classes_changed.push((*name).to_string()),
            Some(_) => {}
        }
    }
    for name in new_classes.keys() {
        if !old_classes.contains_key(name) {
            delta.classes_added.push((*name).to_string());
        }
    }

    let (old_fns, new_fns) = (free_providers(old.iter().copied()), free_providers(new));
    for (name, rec) in &old_fns {
        match new_fns.get(name) {
            None => delta.fns_removed.push((*name).to_string()),
            Some(new_rec) if new_rec != rec => delta.fns_changed.push((*name).to_string()),
            Some(_) => {}
        }
    }
    for name in new_fns.keys() {
        if !old_fns.contains_key(name) {
            delta.fns_added.push((*name).to_string());
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::TuModule;
    use ddm_cppfront::{parse, SourceMap};

    const HEADER: &str = "\
class Counter {
public:
    Counter(int s) : count(s), dead(0) { }
    virtual ~Counter() { }
    virtual int bump() { return ++count; }
    int count;
    int dead;
};
";

    fn tu(name: &str, src: &str) -> (TuModule, Program) {
        let unit = parse(src).expect("parse");
        let program = Program::build(&unit).expect("sema");
        let summary = ProgramSummary::build(&program, false, 1);
        let map = SourceMap::new(name, src);
        let module = TuModule::extract(&unit, &program, &summary, &map);
        (module, program)
    }

    fn two_tus() -> Vec<(TuModule, Program)> {
        let a = format!("{HEADER}int touch(Counter* c);\nint main() {{ Counter c(1); return touch(&c); }}");
        let b = format!("{HEADER}int touch(Counter* c) {{ return c->bump(); }}");
        vec![tu("a.cpp", &a), tu("b.cpp", &b)]
    }

    #[test]
    fn odr_identical_classes_merge() {
        let tus = two_tus();
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let parsed: Vec<Option<Program>> = tus.into_iter().map(|(_, p)| Some(p)).collect();
        let linked = link(&modules, &parsed).expect("link");
        assert_eq!(linked.program().class_count(), 1);
        // 3 methods + touch + main.
        assert_eq!(linked.program().function_count(), 5);
        assert_eq!(linked.class_tu(ClassId::from_index(0)), 0);
        // `touch` first appears in a.cpp as a prototype, but its summary
        // comes from the defining TU.
        let touch = linked.program().free_function("touch").unwrap();
        assert_eq!(linked.fn_tu(touch), 1);
        assert!(linked.program().function(touch).body.is_some());
        let main = linked.program().main_function().unwrap();
        assert_eq!(linked.fn_tu(main), 0);
        // The prototype call in a.cpp resolved to the linked definition.
        let s = linked.summary().function(main).unwrap();
        assert!(s
            .cg_steps
            .iter()
            .any(|c| matches!(c, crate::summary::CgStep::Call(f) if *f == touch)));
    }

    #[test]
    fn warm_link_without_parses_matches_cold() {
        let tus = two_tus();
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let cold_parsed: Vec<Option<Program>> = tus.into_iter().map(|(_, p)| Some(p)).collect();
        let warm_parsed: Vec<Option<Program>> = modules.iter().map(|_| None).collect();
        let cold = link(&modules, &cold_parsed).expect("cold link");
        let warm = link(&modules, &warm_parsed).expect("warm link");
        assert_eq!(
            cold.program().function_count(),
            warm.program().function_count()
        );
        for i in 0..cold.program().function_count() {
            let fid = FuncId::from_index(i);
            assert_eq!(
                cold.summary().function(fid).ok(),
                warm.summary().function(fid).ok(),
                "summary {i} diverged"
            );
            let cf = cold.program().function(fid);
            let wf = warm.program().function(fid);
            assert_eq!(cf.params.len(), wf.params.len(), "arity {i} diverged");
            assert_eq!(
                cf.body.is_some(),
                wf.body.is_some(),
                "body presence {i} diverged"
            );
            assert_eq!(
                cf.inits.is_empty(),
                wf.inits.is_empty(),
                "init presence {i} diverged"
            );
        }
        assert_eq!(
            cold.summary().globals().ok(),
            warm.summary().globals().ok()
        );
        assert_eq!(
            cold.summary().used_classes(cold.program()).unwrap(),
            warm.summary().used_classes(warm.program()).unwrap()
        );
    }

    #[test]
    fn cold_linked_summary_matches_a_fresh_walk() {
        // The resolved summary must be exactly what walking the linked
        // program would produce.
        let tus = two_tus();
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let parsed: Vec<Option<Program>> = tus.into_iter().map(|(_, p)| Some(p)).collect();
        let linked = link(&modules, &parsed).expect("link");
        let fresh = ProgramSummary::build(linked.program(), false, 1);
        for i in 0..linked.program().function_count() {
            let fid = FuncId::from_index(i);
            assert_eq!(
                linked.summary().function(fid).ok(),
                fresh.function(fid).ok(),
                "fn {i}"
            );
        }
        assert_eq!(linked.summary().globals().ok(), fresh.globals().ok());
    }

    #[test]
    fn differing_class_definitions_conflict() {
        let a = format!("{HEADER}int main() {{ Counter c(1); return c.count; }}");
        let bad_header = HEADER.replace("int dead;", "long dead;");
        let b = format!("{bad_header}int touch(Counter* c) {{ return c->bump(); }}");
        let tus = vec![tu("a.cpp", &a), tu("b.cpp", &b)];
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let parsed: Vec<Option<Program>> = tus.into_iter().map(|(_, p)| Some(p)).collect();
        let err = link(&modules, &parsed).unwrap_err();
        assert_eq!(err.conflicts.len(), 1);
        assert!(err.conflicts[0].contains("class `Counter` defined differently"));
        assert!(err.conflicts[0].contains("a.cpp:1:1"));
        assert!(err.conflicts[0].contains("b.cpp:1:1"));
        // Rendering is stable under TU reordering (location pairs are
        // normalized, lines sorted and deduped).
        let rev_modules: Vec<TuModule> = modules.iter().rev().cloned().collect();
        let err2 = link(&rev_modules, &[None, None]).unwrap_err();
        assert_eq!(err.conflicts, err2.conflicts);
    }

    #[test]
    fn duplicate_definitions_conflict() {
        let a = "int shared = 1;\nint twice() { return 1; }\nint main() { return twice(); }";
        let b = "int shared = 2;\nint twice() { return 2; }";
        let tus = vec![tu("a.cpp", a), tu("b.cpp", b)];
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let err = link(&modules, &[None, None]).unwrap_err();
        assert_eq!(err.conflicts.len(), 2);
        assert!(err
            .conflicts
            .iter()
            .any(|c| c.contains("function `twice` defined differently")));
        assert!(err
            .conflicts
            .iter()
            .any(|c| c.contains("global `shared` defined in two translation units")));
    }

    #[test]
    fn identical_free_fn_definitions_merge() {
        let shared = "int twice() { return 2; }\n";
        let a = format!("{shared}int main() {{ return twice(); }}");
        let b = format!("{shared}int other() {{ return twice(); }}");
        let tus = vec![tu("a.cpp", &a), tu("b.cpp", &b)];
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let linked = link(&modules, &[None, None]).expect("identical text merges");
        assert_eq!(linked.program().function_count(), 3);
    }

    #[test]
    fn enum_conflicts_are_reported() {
        let a = "enum Mode { Off, On };\nint main() { return Off; }";
        let b = "enum Mode { On, Off };\nint other() { return On; }";
        let c = "enum Other { Off };\nint third() { return 0; }";
        let tus = vec![tu("a.cpp", a), tu("b.cpp", b), tu("c.cpp", c)];
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let err = link(&modules, &[None, None, None]).unwrap_err();
        assert!(err
            .conflicts
            .iter()
            .any(|c| c.contains("enum `Mode` defined differently")));
        // c.cpp's `Off = 0` agrees with a.cpp's and raises no extra noise.
        assert!(!err.conflicts.iter().any(|c| c.contains("`Off`")));
    }

    #[test]
    fn analysis_errors_locate_their_tu() {
        let a = "class W { public: int x; };\nint main() { W w; return w.ghost; }";
        let b = "class W { public: int x; };\nint fine(W* w) { return w->x; }";
        let tus = vec![tu("a.cpp", a), tu("b.cpp", b)];
        let modules: Vec<TuModule> = tus.iter().map(|(m, _)| m.clone()).collect();
        let linked = link(&modules, &[None, None]).expect("link");
        let main = linked.program().main_function().unwrap();
        let err = linked.summary().function(main).unwrap_err();
        assert_eq!(linked.locate_error(&err), Some(0));
    }

    fn modules_of(tus: &[(TuModule, Program)]) -> Vec<TuModule> {
        tus.iter().map(|(m, _)| m.clone()).collect()
    }

    #[test]
    fn link_delta_of_identical_lists_is_empty() {
        let modules = modules_of(&two_tus());
        let delta = link_delta(&modules, &modules);
        assert!(delta.is_empty());
        assert!(delta.class_space_stable());
        assert_eq!(delta.frontier_len(), 0);
    }

    #[test]
    fn link_delta_names_an_edited_function() {
        let old = modules_of(&two_tus());
        let mut new = old.clone();
        let edited = format!("{HEADER}int touch(Counter* c) {{ return c->bump() + 1; }}");
        new[1] = tu("b.cpp", &edited).0;
        let delta = link_delta(&old, &new);
        assert_eq!(delta.tus_changed, vec![1]);
        assert!(delta.class_space_stable(), "class space untouched");
        assert_eq!(delta.fns_changed, vec!["touch".to_string()]);
        assert!(delta.fns_added.is_empty() && delta.fns_removed.is_empty());
        assert_eq!(delta.frontier_len(), 1);
    }

    #[test]
    fn link_delta_sees_added_and_removed_functions() {
        let old = modules_of(&two_tus());
        let mut new = old.clone();
        let edited = format!("{HEADER}int touch(Counter* c) {{ return c->bump(); }}\nint pad() {{ return 7; }}");
        new[1] = tu("b.cpp", &edited).0;
        let delta = link_delta(&old, &new);
        assert_eq!(delta.fns_added, vec!["pad".to_string()]);
        assert!(delta.fns_changed.is_empty(), "touch itself is unchanged");
        let back = link_delta(&new, &old);
        assert_eq!(back.fns_removed, vec!["pad".to_string()]);
    }

    #[test]
    fn link_delta_flags_class_space_changes() {
        let old = modules_of(&two_tus());
        // Member edit in the shared header: the class record changes in
        // both TUs; the ODR winner changes; the space is not stable.
        let grown = HEADER.replace("int dead;", "int dead;\n    int extra;");
        let a = format!("{grown}int touch(Counter* c);\nint main() {{ Counter c(1); return touch(&c); }}");
        let b = format!("{grown}int touch(Counter* c) {{ return c->bump(); }}");
        let new = modules_of(&[tu("a.cpp", &a), tu("b.cpp", &b)]);
        let delta = link_delta(&old, &new);
        assert_eq!(delta.classes_changed, vec!["Counter".to_string()]);
        assert!(!delta.class_space_stable());
        // A body-only method edit also invalidates the class (summaries
        // changed) even though its ODR shape is identical.
        let retuned = HEADER.replace("return ++count;", "return count;");
        let a2 = format!("{retuned}int touch(Counter* c);\nint main() {{ Counter c(1); return touch(&c); }}");
        let b2 = format!("{retuned}int touch(Counter* c) {{ return c->bump(); }}");
        let new2 = modules_of(&[tu("a.cpp", &a2), tu("b.cpp", &b2)]);
        let delta2 = link_delta(&old, &new2);
        assert_eq!(delta2.classes_changed, vec!["Counter".to_string()]);
        assert!(!delta2.class_space_stable());
    }

    #[test]
    fn link_delta_tracks_globals_and_tu_count() {
        let old = modules_of(&two_tus());
        let mut new = old.clone();
        let edited = format!("{HEADER}int touch(Counter* c) {{ return c->bump(); }}\nint knob = 3;");
        new[1] = tu("b.cpp", &edited).0;
        let delta = link_delta(&old, &new);
        assert!(!delta.enums_and_globals_stable);
        assert!(!delta.class_space_stable());
        // Dropping a TU invalidates positionally.
        let shorter = &old[..1];
        let delta = link_delta(&old, shorter);
        assert_eq!(delta.tus_changed, vec![1]);
        assert!(!delta.enums_and_globals_stable);
    }
}
