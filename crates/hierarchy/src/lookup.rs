//! Member lookup over the class hierarchy.
//!
//! Implements the C++ member-name-lookup rule (ISO C++ 10.2) over
//! [subobject trees](crate::subobject): a declaration in a derived
//! subobject hides declarations of the same name in its base subobjects;
//! after hiding, more than one surviving subobject means the access is
//! ambiguous. This plays the role of the `Lookup` function in the paper's
//! Figure 2 (the paper cites Ramalingam & Srinivasan's PLDI'97 lookup
//! algorithm; the observable behaviour — `(type, name) → declaring class`
//! with ambiguity detection — is identical).

use crate::ids::{ClassId, FuncId, MemberRef};
use crate::intern::Symbol;
use crate::model::Program;
use crate::subobject::SubobjectTree;
use ddm_cppfront::ast::FunctionKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// What a successful member lookup found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Found {
    /// A data member, identified by its declaring class and index.
    Data(MemberRef),
    /// A member function declared in the given class.
    Method {
        /// The class whose declaration was found (not necessarily the
        /// dynamic dispatch target).
        declaring: ClassId,
        /// The found declaration.
        func: FuncId,
    },
}

/// Why a lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupError {
    /// No base subobject declares the name.
    NotFound {
        /// The class looked in.
        class: String,
        /// The member name.
        name: String,
    },
    /// More than one non-hidden declaration (C++ would reject the access).
    Ambiguous {
        /// The class looked in.
        class: String,
        /// The member name.
        name: String,
    },
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::NotFound { class, name } => {
                write!(f, "no member named `{name}` in `{class}` or its bases")
            }
            LookupError::Ambiguous { class, name } => {
                write!(f, "member `{name}` is ambiguous in `{class}`")
            }
        }
    }
}

impl Error for LookupError {}

/// Member-lookup service with per-class subobject-tree caching.
///
/// # Examples
///
/// ```
/// use ddm_hierarchy::{Program, MemberLookup};
/// let tu = ddm_cppfront::parse(
///     "class A { public: int m; }; class B : public A { };\n\
///      int main() { B b; return b.m; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let lookup = MemberLookup::new(&program);
/// let b = program.class_by_name("B").unwrap();
/// let a = program.class_by_name("A").unwrap();
/// let found = lookup.data_member(b, "m").unwrap();
/// assert_eq!(found.class, a); // `m` resolves to its declaring class A
/// ```
pub struct MemberLookup<'p> {
    program: &'p Program,
    trees: RefCell<HashMap<ClassId, std::rc::Rc<SubobjectTree>>>,
    dispatch: RefCell<HashMap<(ClassId, Symbol), std::rc::Rc<Vec<(ClassId, FuncId)>>>>,
    dtors: RefCell<HashMap<ClassId, std::rc::Rc<Vec<(ClassId, FuncId)>>>>,
}

impl<'p> MemberLookup<'p> {
    /// Creates a lookup service for `program`.
    pub fn new(program: &'p Program) -> Self {
        MemberLookup {
            program,
            trees: RefCell::new(HashMap::new()),
            dispatch: RefCell::new(HashMap::new()),
            dtors: RefCell::new(HashMap::new()),
        }
    }

    /// The (cached) subobject tree of `class`.
    pub fn tree(&self, class: ClassId) -> std::rc::Rc<SubobjectTree> {
        if let Some(t) = self.trees.borrow().get(&class) {
            return t.clone();
        }
        let t = std::rc::Rc::new(SubobjectTree::build(self.program, class));
        self.trees.borrow_mut().insert(class, t.clone());
        t
    }

    /// Looks up member `name` in `class` and its bases, applying the C++
    /// hiding (dominance) rule.
    ///
    /// # Errors
    ///
    /// [`LookupError::NotFound`] if no subobject declares `name`;
    /// [`LookupError::Ambiguous`] if hiding leaves more than one candidate.
    pub fn member(&self, class: ClassId, name: &str) -> Result<Found, LookupError> {
        let tree = self.tree(class);
        // Collect subobjects whose class directly declares `name`.
        let mut found = Vec::new();
        for (sid, node) in tree.iter() {
            let info = self.program.class(node.class);
            if let Some(idx) = info.members.iter().position(|m| m.name == name) {
                found.push((sid, Found::Data(MemberRef::new(node.class, idx))));
                continue;
            }
            if let Some(&fid) = info.methods.iter().find(|&&f| {
                let fi = self.program.function(f);
                fi.name == name && fi.kind != FunctionKind::Constructor
            }) {
                found.push((
                    sid,
                    Found::Method {
                        declaring: node.class,
                        func: fid,
                    },
                ));
            }
        }
        if found.is_empty() {
            return Err(LookupError::NotFound {
                class: self.program.class(class).name.clone(),
                name: name.to_string(),
            });
        }
        // Hiding: drop a candidate if it lives in a base subobject of
        // another candidate.
        let survivors: Vec<&(crate::subobject::SubobjectId, Found)> = found
            .iter()
            .filter(|(sid, _)| {
                !found
                    .iter()
                    .any(|(other, _)| other != sid && tree.is_base_subobject(*sid, *other))
            })
            .collect();
        match survivors.as_slice() {
            [] => unreachable!("hiding cannot remove every candidate"),
            [(_, single)] => Ok(*single),
            many => {
                // Multiple survivors naming the same declaration through one
                // shared virtual subobject would have been collapsed already
                // (shared nodes are single). Distinct survivors that still
                // agree on the exact declaration (same class, same slot) are
                // genuinely ambiguous in C++ (two distinct subobjects), so
                // only identical *subobjects* are fine.
                let first = many[0].1;
                if many.iter().all(|(sid, _)| *sid == many[0].0) {
                    Ok(first)
                } else {
                    Err(LookupError::Ambiguous {
                        class: self.program.class(class).name.clone(),
                        name: name.to_string(),
                    })
                }
            }
        }
    }

    /// Looks up a data member specifically.
    ///
    /// # Errors
    ///
    /// As [`MemberLookup::member`]; also `NotFound` if the name resolves to
    /// a method.
    pub fn data_member(&self, class: ClassId, name: &str) -> Result<MemberRef, LookupError> {
        match self.member(class, name)? {
            Found::Data(m) => Ok(m),
            Found::Method { .. } => Err(LookupError::NotFound {
                class: self.program.class(class).name.clone(),
                name: name.to_string(),
            }),
        }
    }

    /// Looks up a method specifically.
    ///
    /// # Errors
    ///
    /// As [`MemberLookup::member`]; also `NotFound` if the name resolves to
    /// a data member.
    pub fn method(&self, class: ClassId, name: &str) -> Result<FuncId, LookupError> {
        match self.member(class, name)? {
            Found::Method { func, .. } => Ok(func),
            Found::Data(_) => Err(LookupError::NotFound {
                class: self.program.class(class).name.clone(),
                name: name.to_string(),
            }),
        }
    }

    /// Resolves the *dynamic dispatch target* of calling `name` on an object
    /// whose most-derived class is `dynamic`: the declaration in the most
    /// derived class along the path. Returns `None` if no class in the
    /// hierarchy declares it.
    pub fn resolve_virtual(&self, dynamic: ClassId, name: &str) -> Option<FuncId> {
        match self.member(dynamic, name) {
            Ok(Found::Method { func, .. }) => Some(func),
            _ => None,
        }
    }

    /// The (cached) dispatch-candidate set of a virtual call on a receiver
    /// declared as `receiver`: for every transitive subclass (in class-id
    /// order, `receiver` included), the dynamic dispatch target of `name` on
    /// that class. Every dispatch site with the same declared receiver and
    /// method shares this computation — without the cache, candidate
    /// resolution is quadratic in hierarchy depth *per site*, which
    /// dominates body walking on deep hierarchies.
    pub fn dispatch_candidates(
        &self,
        receiver: ClassId,
        name: &str,
    ) -> std::rc::Rc<Vec<(ClassId, FuncId)>> {
        match self.program.interner().lookup(name) {
            Some(sym) => self.dispatch_candidates_interned(receiver, sym, name),
            // No function anywhere bears this name, so no subclass can
            // resolve a dispatch target for it.
            None => std::rc::Rc::new(Vec::new()),
        }
    }

    /// [`MemberLookup::dispatch_candidates`] keyed by the statically
    /// resolved declaration instead of its name: the hot callers (the
    /// fixpoint replay and the summary extractor) already hold a
    /// `FuncId`, and going through its interned name symbol makes a
    /// cache hit two integer hashes with no allocation.
    pub fn dispatch_candidates_for(
        &self,
        receiver: ClassId,
        method: FuncId,
    ) -> std::rc::Rc<Vec<(ClassId, FuncId)>> {
        let sym = self.program.fn_name_symbol(method);
        self.dispatch_candidates_interned(receiver, sym, &self.program.function(method).name)
    }

    fn dispatch_candidates_interned(
        &self,
        receiver: ClassId,
        sym: Symbol,
        name: &str,
    ) -> std::rc::Rc<Vec<(ClassId, FuncId)>> {
        if let Some(c) = self.dispatch.borrow().get(&(receiver, sym)) {
            return c.clone();
        }
        let computed = std::rc::Rc::new(
            self.program
                .subclasses_of(receiver)
                .into_iter()
                .filter_map(|c| self.resolve_virtual(c, name).map(|f| (c, f)))
                .collect::<Vec<_>>(),
        );
        self.dispatch
            .borrow_mut()
            .insert((receiver, sym), computed.clone());
        computed
    }

    /// The (cached) destructor-candidate set of a `delete` through a
    /// pointer declared as `class`: every transitive subclass (in class-id
    /// order) paired with its destructor, for subclasses that have one.
    /// Cached for the same reason as [`MemberLookup::dispatch_candidates`].
    pub fn destructor_candidates(&self, class: ClassId) -> std::rc::Rc<Vec<(ClassId, FuncId)>> {
        if let Some(c) = self.dtors.borrow().get(&class) {
            return c.clone();
        }
        let computed = std::rc::Rc::new(
            self.program
                .subclasses_of(class)
                .into_iter()
                .filter_map(|c| self.program.destructor(c).map(|d| (c, d)))
                .collect::<Vec<_>>(),
        );
        self.dtors.borrow_mut().insert(class, computed.clone());
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    #[test]
    fn finds_member_in_own_class() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let m = lk.data_member(a, "x").unwrap();
        assert_eq!(m.class, a);
        assert_eq!(m.index, 0);
    }

    #[test]
    fn finds_member_in_base_class() {
        let p = program(
            "class A { public: int x; }; class B : public A { public: int y; };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        assert_eq!(lk.data_member(b, "x").unwrap().class, a);
        assert_eq!(lk.data_member(b, "y").unwrap().class, b);
    }

    #[test]
    fn derived_declaration_hides_base() {
        let p = program(
            "class A { public: int m; }; class B : public A { public: int m; };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let b = p.class_by_name("B").unwrap();
        assert_eq!(lk.data_member(b, "m").unwrap().class, b);
        // The hidden member is still reachable from A itself.
        let a = p.class_by_name("A").unwrap();
        assert_eq!(lk.data_member(a, "m").unwrap().class, a);
    }

    #[test]
    fn nonvirtual_diamond_is_ambiguous() {
        let p = program(
            "class Top { public: int t; };\n\
             class L : public Top { }; class R : public Top { };\n\
             class D : public L, public R { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        assert!(matches!(
            lk.data_member(d, "t"),
            Err(LookupError::Ambiguous { .. })
        ));
    }

    #[test]
    fn virtual_diamond_is_unambiguous() {
        let p = program(
            "class Top { public: int t; };\n\
             class L : public virtual Top { }; class R : public virtual Top { };\n\
             class D : public L, public R { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        let top = p.class_by_name("Top").unwrap();
        assert_eq!(lk.data_member(d, "t").unwrap().class, top);
    }

    #[test]
    fn dominance_over_virtual_base() {
        // L overrides the name from the shared virtual base; the L copy
        // dominates when looked up from D (ISO C++ 10.2p6 example shape).
        let p = program(
            "class Top { public: int m; };\n\
             class L : public virtual Top { public: int m; };\n\
             class R : public virtual Top { };\n\
             class D : public L, public R { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        let l = p.class_by_name("L").unwrap();
        assert_eq!(lk.data_member(d, "m").unwrap().class, l);
    }

    #[test]
    fn ambiguity_between_two_unrelated_bases() {
        let p = program(
            "class X { public: int m; }; class Y { public: int m; };\n\
             class D : public X, public Y { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        assert!(matches!(
            lk.data_member(d, "m"),
            Err(LookupError::Ambiguous { .. })
        ));
    }

    #[test]
    fn missing_member_is_not_found() {
        let p = program("class A { public: int x; }; int main() { return 0; }");
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let err = lk.data_member(a, "nope").unwrap_err();
        assert!(matches!(err, LookupError::NotFound { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn method_lookup_and_virtual_resolution() {
        let p = program(
            "class A { public: virtual int f() { return 0; } };\n\
             class B : public A { public: virtual int f() { return 1; } };\n\
             class C : public B { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        let c = p.class_by_name("C").unwrap();
        let fa = lk.method(a, "f").unwrap();
        let fb = lk.method(b, "f").unwrap();
        assert_ne!(fa, fb);
        // Dispatch on a C object reaches B::f.
        assert_eq!(lk.resolve_virtual(c, "f"), Some(fb));
        assert_eq!(lk.resolve_virtual(a, "f"), Some(fa));
        assert_eq!(lk.resolve_virtual(c, "missing"), None);
    }

    #[test]
    fn data_member_lookup_rejects_methods_and_vice_versa() {
        let p = program(
            "class A { public: int x; int f() { return x; } };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        assert!(lk.data_member(a, "f").is_err());
        assert!(lk.method(a, "x").is_err());
        assert!(lk.method(a, "f").is_ok());
    }

    #[test]
    fn tree_cache_returns_same_tree() {
        let p = program("class A { }; int main() { return 0; }");
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let t1 = lk.tree(a);
        let t2 = lk.tree(a);
        assert!(std::rc::Rc::ptr_eq(&t1, &t2));
    }
}

#[cfg(test)]
mod more_lookup_tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    #[test]
    fn ambiguous_method_from_two_bases() {
        let p = program(
            "class X { public: int f() { return 1; } };\n\
             class Y { public: int f() { return 2; } };\n\
             class D : public X, public Y { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        assert!(matches!(
            lk.method(d, "f"),
            Err(LookupError::Ambiguous { .. })
        ));
    }

    #[test]
    fn method_hides_base_data_member_of_same_name() {
        // A derived *method* named like a base *data member* hides it.
        let p = program(
            "class B { public: int item; };\n\
             class D : public B { public: int item() { return 1; } };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        assert!(lk.method(d, "item").is_ok());
        assert!(lk.data_member(d, "item").is_err());
        // The base member is still reachable from B directly.
        let b = p.class_by_name("B").unwrap();
        assert!(lk.data_member(b, "item").is_ok());
    }

    #[test]
    fn deep_chain_lookup_finds_the_root_declaration() {
        let mut src = String::from("class C0 { public: int root; };\n");
        for i in 1..12 {
            src.push_str(&format!("class C{i} : public C{} {{ }};\n", i - 1));
        }
        src.push_str("int main() { return 0; }");
        let p = program(&src);
        let lk = MemberLookup::new(&p);
        let leaf = p.class_by_name("C11").unwrap();
        let root = p.class_by_name("C0").unwrap();
        assert_eq!(lk.data_member(leaf, "root").unwrap().class, root);
    }

    #[test]
    fn dispatch_candidates_by_name_and_by_func_share_one_cache_entry() {
        let p = program(
            "class A { public: virtual int f() { return 0; } };\n\
             class B : public A { public: virtual int f() { return 1; } };\n\
             class C : public B { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let fa = lk.method(a, "f").unwrap();
        let by_name = lk.dispatch_candidates(a, "f");
        let by_func = lk.dispatch_candidates_for(a, fa);
        assert!(
            std::rc::Rc::ptr_eq(&by_name, &by_func),
            "both entry points hit the same cache slot"
        );
        let b = p.class_by_name("B").unwrap();
        let c = p.class_by_name("C").unwrap();
        let fb = lk.method(b, "f").unwrap();
        assert_eq!(*by_name, vec![(a, fa), (b, fb), (c, fb)]);
        // A name no function bears resolves to no candidates.
        assert!(lk.dispatch_candidates(a, "no_such_method").is_empty());
    }

    #[test]
    fn repeated_virtual_base_through_many_paths_is_one_subobject() {
        let p = program(
            "class V { public: int shared; };\n\
             class A : public virtual V { };\n\
             class B : public virtual V { };\n\
             class C : public virtual V { };\n\
             class D : public A, public B, public C { };\n\
             int main() { return 0; }",
        );
        let lk = MemberLookup::new(&p);
        let d = p.class_by_name("D").unwrap();
        let v = p.class_by_name("V").unwrap();
        assert_eq!(lk.data_member(d, "shared").unwrap().class, v);
        assert_eq!(lk.tree(d).virtual_bases().len(), 1);
    }
}
