//! # ddm-hierarchy
//!
//! Semantic layer for the dead-data-member study: a resolved program
//! model ([`Program`]), subobject trees, C++ member lookup with the
//! dominance rule ([`MemberLookup`]), a 32-bit object-layout engine
//! ([`LayoutEngine`]), a typed body walker ([`walk_function`]) that both
//! the call-graph builders and the dead-member analysis consume, and the
//! used-class computation ([`used_classes`]).
//!
//! # Examples
//!
//! ```
//! use ddm_hierarchy::{Program, MemberLookup, LayoutEngine};
//!
//! let tu = ddm_cppfront::parse(
//!     "class A { public: int x; }; class B : public A { public: int y; };\n\
//!      int main() { B b; return b.x + b.y; }",
//! )?;
//! let program = Program::build(&tu)?;
//! let lookup = MemberLookup::new(&program);
//! let layouts = LayoutEngine::new(&program);
//! let b = program.class_by_name("B").unwrap();
//! assert_eq!(layouts.layout(b).size, 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod binmod;
pub mod bitset;
pub mod ids;
pub mod intern;
pub mod layout;
pub mod link;
pub mod lookup;
pub mod model;
pub mod module;
pub mod pta;
pub mod subobject;
pub mod summary;
pub mod typewalk;
pub mod used;

pub use binmod::{
    decode_module, decode_modules, encode_module, encode_modules, ByteReader, ByteWriter,
    BINMOD_FORMAT_VERSION,
};
pub use bitset::{ClassBitSet, DenseBitSet, FuncBitSet};
pub use ids::{ClassId, FuncId, MemberRef};
pub use intern::{Interner, Symbol};
pub use layout::{ClassLayout, FieldSlot, LayoutEngine};
pub use link::{link, link_delta, link_delta_ref, link_with, LinkDelta, LinkError, LinkedProgram};
pub use lookup::{Found, LookupError, MemberLookup};
pub use model::{
    by_value_class, BaseInfo, ClassInfo, FunctionInfo, GlobalInfo, MemberInfo, Program, SemaError,
    SemaErrorKind,
};
pub use module::{
    fnv1a64, hash_hex, ClassRecord, EnumRecord, FreeFnRecord, GlobalRecord, MemberRecord,
    MethodRecord, SymCgStep, SymFnSummary, SymFunc, SymLiveStep, SymMember, SymResolver, SymResult,
    TuModule, MODULE_FORMAT_VERSION,
};
pub use subobject::{Subobject, SubobjectId, SubobjectTree};
pub use summary::{
    classify_cast, extract_function, strip_indirections, CastSafety, CgStep, DeleteSite, FnSummary,
    LiveStep, MarkAllCause, MemberAccessKind, MemberBitSet, MemberIndex, ProgramSummary,
    VirtualSite, EXTRACTION_SHARD_THRESHOLD,
};
pub use typewalk::{
    body_walk_count, resolve_ctor, walk_function, walk_globals, Builtin, CallEvent, CallTarget,
    CastEvent, DeleteEvent, EventVisitor, InstantiationEvent, InstantiationKind, MemberAccessEvent,
    TypeError, TypeErrorKind,
};
pub use used::{data_members_in_used_classes, used_classes};
