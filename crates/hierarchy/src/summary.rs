//! Walk-once function summaries.
//!
//! The paper presents its analysis as "simple and efficient", but a naive
//! implementation traverses every reachable function body once per
//! call-graph fixpoint round and then again for the liveness scan. This
//! module walks each body **exactly once** and transcribes the events the
//! downstream phases need into a compact [`FnSummary`]:
//!
//! * [`LiveStep`]s — the Figure 2 liveness facts in body order (member
//!   reads / address-takens / pointer-to-member / volatile writes, plus
//!   `MarkAllContainedMembers` triggers from unsafe casts and `sizeof`);
//! * [`CgStep`]s — the call-graph facts in body order (static calls,
//!   virtual sites with their pre-resolved per-receiver-class dispatch
//!   candidates, function-pointer calls, address-taken functions,
//!   instantiations, and `delete` sites).
//!
//! Summaries are sound per-statement transcriptions: everything that
//! depends only on static types is resolved at extraction time, while
//! every fact that depends on the evolving call graph (which dispatch
//! candidates are instantiated, whether a site has any target yet) is
//! recorded symbolically and replayed by the propagation phase. That
//! split is what lets the summary engine reproduce the walk engine's
//! results bit for bit without ever touching an AST twice.
//!
//! The module also provides the dense program-wide member numbering
//! ([`MemberIndex`]) and bitset ([`MemberBitSet`]) that back the liveness
//! scan, and the per-class containment closures that replace the
//! recursive `MarkAllContainedMembers` walks.

use crate::ids::{ClassId, FuncId, MemberRef};
use crate::lookup::MemberLookup;
use crate::model::{by_value_class, Program};
use crate::typewalk::{
    walk_function, walk_globals, CallEvent, CallTarget, CastEvent, DeleteEvent, EventVisitor,
    InstantiationEvent, MemberAccessEvent, TypeError,
};
use ddm_cppfront::ast::{CastStyle, Type, TypeKind};
use ddm_cppfront::Span;
use ddm_telemetry::{Telemetry, LANE_MAIN};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Minimum function count before [`ProgramSummary::build`] shards
/// extraction across worker threads. Below it, thread spawn and join
/// overhead exceeds the walk itself (the suite's programs are 16–85
/// functions; spawning eight workers for them is where the `--jobs 8`
/// regression in `BENCH_suite.json` came from — at 64 the suite's
/// larger programs still sharded and still lost, so the cut sits above
/// the whole suite). The threshold is deliberately *not* tied to the
/// host's CPU count: extraction results are identical either way, and a
/// fixed cut keeps the execution shape reproducible across machines.
pub const EXTRACTION_SHARD_THRESHOLD: usize = 256;

/// Dense program-wide numbering of every data member.
///
/// Members are numbered in declaration order: classes in id order, and
/// within a class its members in declaration order. The numbering is a
/// bijection with the program's [`MemberRef`]s, so a [`MemberBitSet`]
/// keyed by it iterates in exactly the order reports are rendered in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberIndex {
    /// Per class, the dense id of its first member.
    offsets: Vec<u32>,
    /// Dense id → member, in declaration order.
    members: Vec<MemberRef>,
}

impl MemberIndex {
    /// Numbers every data member of `program`.
    pub fn new(program: &Program) -> MemberIndex {
        let mut offsets = Vec::with_capacity(program.class_count());
        let mut members = Vec::new();
        for (cid, class) in program.classes() {
            offsets.push(members.len() as u32);
            for idx in 0..class.members.len() {
                members.push(MemberRef::new(cid, idx));
            }
        }
        MemberIndex { offsets, members }
    }

    /// Total number of data members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the program declares no data members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The dense id of `member`, or `None` if it does not name a member
    /// of the indexed program.
    pub fn id_of(&self, member: MemberRef) -> Option<u32> {
        let ci = member.class.index();
        let start = *self.offsets.get(ci)?;
        let end = self
            .offsets
            .get(ci + 1)
            .copied()
            .unwrap_or(self.members.len() as u32);
        let id = start.checked_add(member.index)?;
        (id < end).then_some(id)
    }

    /// The member with dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn member_at(&self, id: u32) -> MemberRef {
        self.members[id as usize]
    }

    /// All members in dense-id (declaration) order.
    pub fn members(&self) -> impl ExactSizeIterator<Item = MemberRef> + '_ {
        self.members.iter().copied()
    }
}

/// A bitset over the dense ids of a [`MemberIndex`], backed by the
/// shared [`DenseBitSet`](crate::bitset::DenseBitSet) word array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemberBitSet {
    bits: crate::bitset::DenseBitSet,
}

impl MemberBitSet {
    /// An empty set sized for `len` members.
    pub fn with_capacity(len: usize) -> MemberBitSet {
        MemberBitSet {
            bits: crate::bitset::DenseBitSet::with_capacity(len),
        }
    }

    /// Inserts `id`; returns true if it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        self.bits.insert(id)
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        self.bits.contains(id)
    }

    /// Unions `other` into this set; returns true if anything was added.
    pub fn union_with(&mut self, other: &MemberBitSet) -> bool {
        self.bits.union_with(&other.bits)
    }

    /// Number of members in the set.
    pub fn count(&self) -> usize {
        self.bits.count()
    }

    /// The set's ids in ascending (declaration) order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits.iter()
    }
}

/// How a summarized member access livens its member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberAccessKind {
    /// The member's value is read.
    Read,
    /// The member's address is taken.
    AddressTaken,
    /// A pointer-to-member `&C::m` names it.
    PointerToMember,
    /// It is `volatile` and written.
    VolatileWrite,
}

/// Why a summarized `MarkAllContainedMembers` trigger fires. Causes that
/// depend on the analysis configuration are recorded with their gate so
/// the same summary serves every configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkAllCause {
    /// An unconditionally unsafe cast (reinterpret, unrelated classes,
    /// class ↔ arithmetic).
    UnsafeCast,
    /// A down-cast — unsafe only when the configuration does not assume
    /// down-casts were verified safe.
    UnsafeDowncast,
    /// A `sizeof` of the class — fires only under the conservative
    /// `sizeof` policy.
    Sizeof,
}

/// One liveness fact, in body order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveStep {
    /// A single member is livened.
    Access {
        /// The accessed member.
        member: MemberRef,
        /// How it is accessed.
        kind: MemberAccessKind,
    },
    /// All members contained in `class` are livened (Figure 2's
    /// `MarkAllContainedMembers`).
    MarkAll {
        /// The root class of the containment closure.
        class: ClassId,
        /// Why, including any configuration gate.
        cause: MarkAllCause,
    },
}

/// A virtual call site with its statically pre-resolved dispatch table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualSite {
    /// The statically resolved declaration (the fallback target while no
    /// candidate receiver is instantiated).
    pub decl: FuncId,
    /// The static receiver class the dispatch table was resolved
    /// against. Propagation never consults it, but the summary cache
    /// needs it to re-derive `candidates` after linking TUs.
    pub receiver: ClassId,
    /// Per candidate receiver class, the override the call dispatches to.
    /// Covers every subclass of the static receiver class; the
    /// propagation phase filters by the instantiated set.
    pub candidates: Vec<(ClassId, FuncId)>,
    /// The §3.1 points-to refinement: when the receiver is an analysable
    /// local pointer, the exact target set (independent of the
    /// instantiated set). `None` means no refinement applies.
    pub refined: Option<Vec<FuncId>>,
}

/// A `delete` site with its destructor obligations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeleteSite {
    /// The static class of the deleted pointer (the summary cache
    /// re-derives the destructor obligations from it after linking).
    pub class: ClassId,
    /// The deleted class's own destructor, if declared.
    pub dtor: Option<FuncId>,
    /// True when that destructor is virtual (dispatch applies).
    pub virtual_dtor: bool,
    /// Per candidate dynamic class, its destructor (populated only for
    /// virtual destructors; filtered by the instantiated set at
    /// propagation time).
    pub candidates: Vec<(ClassId, FuncId)>,
    /// Destructors of base subobjects, which always run.
    pub ancestor_dtors: Vec<FuncId>,
}

/// One call-graph fact, in body order. Order matters: the walk engine
/// interleaves instantiations and dispatch decisions, and the replay must
/// observe the instantiated set in the same intermediate states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgStep {
    /// A statically bound call (free function, non-virtual method,
    /// qualified call, constructor-initializer base call).
    Call(FuncId),
    /// A virtual dispatch site.
    VirtualCall(VirtualSite),
    /// An indirect call through a function pointer.
    FnPointerCall,
    /// A function whose address is taken.
    TakeAddress(FuncId),
    /// An object instantiation.
    Instantiate {
        /// The instantiated class.
        class: ClassId,
        /// The constructor that runs, when resolvable.
        ctor: Option<FuncId>,
    },
    /// A `delete` expression.
    Delete(DeleteSite),
}

/// Everything one body traversal learned, replayable by both the
/// call-graph propagation and the liveness scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Liveness facts in body order.
    pub live_steps: Vec<LiveStep>,
    /// Call-graph facts in body order.
    pub cg_steps: Vec<CgStep>,
}

impl FnSummary {
    /// The classes this body instantiates (seed set for the used-class
    /// computation).
    pub fn instantiated_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.cg_steps.iter().filter_map(|s| match s {
            CgStep::Instantiate { class, .. } => Some(*class),
            _ => None,
        })
    }
}

/// Static safety classification of a cast (§3). Configuration-dependent
/// outcomes are reported symbolically so summaries stay
/// configuration-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastSafety {
    /// Never livens anything.
    Safe,
    /// Always unsafe.
    Unsafe,
    /// A down-cast: unsafe unless the user verified down-casts safe.
    UnsafeDowncast,
}

/// Classifies a cast per §3: `reinterpret_cast` and unrelated-type casts
/// are unsafe, down-casts conditionally so; up-casts, identity casts,
/// arithmetic conversions, `dynamic_cast`, `const_cast`, and `void*`
/// casts are safe.
pub fn classify_cast(program: &Program, ev: &CastEvent) -> CastSafety {
    match ev.style {
        CastStyle::Dynamic | CastStyle::Const => return CastSafety::Safe,
        CastStyle::Reinterpret => return CastSafety::Unsafe,
        CastStyle::CStyle | CastStyle::Static => {}
    }
    let target = strip_indirections(&ev.target);
    let operand = strip_indirections(&ev.operand);
    // Arithmetic conversions are safe.
    if target.is_arithmetic() && operand.is_arithmetic() {
        return CastSafety::Safe;
    }
    // `void*` is the universal currency of the allocation interface.
    if matches!(target.kind, TypeKind::Void) || matches!(operand.kind, TypeKind::Void) {
        return CastSafety::Safe;
    }
    let (Some(tname), Some(oname)) = (target.named(), operand.named()) else {
        // Class ↔ arithmetic, or function-pointer reinterpretation.
        return CastSafety::Unsafe;
    };
    let (Some(tid), Some(oid)) = (program.class_by_name(tname), program.class_by_name(oname))
    else {
        return CastSafety::Unsafe;
    };
    if tid == oid {
        return CastSafety::Safe;
    }
    if program.derives_from(oid, tid) {
        return CastSafety::Safe; // up-cast
    }
    if program.derives_from(tid, oid) {
        return CastSafety::UnsafeDowncast;
    }
    CastSafety::Unsafe // unrelated classes
}

/// Strips pointers, references and arrays to reach the underlying type.
pub fn strip_indirections(ty: &Type) -> &Type {
    match &ty.kind {
        TypeKind::Pointer(inner) | TypeKind::Reference(inner) => strip_indirections(inner),
        TypeKind::Array(inner, _) => strip_indirections(inner),
        _ => ty,
    }
}

/// The summaries of a whole program: one [`FnSummary`] per function (all
/// of them, reachable or not, so the call-graph fixpoint can consult any
/// function it discovers), one for the global initializers, the dense
/// [`MemberIndex`], and the per-class containment closures.
///
/// Walk errors are stored per function rather than failing the build, so
/// each consuming phase surfaces the same error the walk engine would
/// surface at the same point in its own schedule.
#[derive(Debug, Clone)]
pub struct ProgramSummary {
    functions: Vec<Result<FnSummary, TypeError>>,
    globals: Result<FnSummary, TypeError>,
    index: MemberIndex,
    /// Per class: every class transitively contained in it (itself, its
    /// by-value member classes, and its base classes).
    closures: Vec<Vec<ClassId>>,
}

impl ProgramSummary {
    /// Extracts summaries for every function of `program`, walking each
    /// body exactly once, sharded across `jobs` worker threads.
    ///
    /// `refine_receivers` enables the §3.1 points-to refinement at
    /// virtual call sites (used by the PTA call graph); it costs one
    /// extra body scan per analysable receiver variable, so only enable
    /// it when the refinement is consumed.
    ///
    /// Extraction is a pure function of each body, so the result is
    /// identical for every `jobs` value.
    pub fn build(program: &Program, refine_receivers: bool, jobs: usize) -> ProgramSummary {
        Self::build_with(program, refine_receivers, jobs, &Telemetry::disabled())
    }

    /// [`ProgramSummary::build`] with telemetry: the extraction phase is
    /// spanned on the main lane, and each worker records its shard on its
    /// own lane (shard index + 1).
    pub fn build_with(
        program: &Program,
        refine_receivers: bool,
        jobs: usize,
        telemetry: &Telemetry,
    ) -> ProgramSummary {
        let n = program.function_count();
        let _extraction = telemetry.span(LANE_MAIN, || format!("summary extraction ({n} fns)"));
        let functions: Vec<Result<FnSummary, TypeError>> = if jobs <= 1
            || n < EXTRACTION_SHARD_THRESHOLD
        {
            let lookup = MemberLookup::new(program);
            (0..n)
                .map(|i| extract_function(program, &lookup, FuncId::from_index(i), refine_receivers))
                .collect()
        } else {
            // Contiguous shards, results concatenated in shard order: the
            // summary vector is indexed by FuncId regardless of which
            // worker produced which slice.
            let per_shard = n.div_ceil(jobs);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(per_shard)
                    .enumerate()
                    .map(|(shard_ix, start)| {
                        let end = (start + per_shard).min(n);
                        scope.spawn(move || {
                            let lane = u32::try_from(shard_ix + 1).unwrap_or(u32::MAX);
                            let _shard = telemetry.span(lane, || {
                                format!("extract shard {shard_ix} ({} fns)", end - start)
                            });
                            let lookup = MemberLookup::new(program);
                            (start..end)
                                .map(|i| {
                                    extract_function(
                                        program,
                                        &lookup,
                                        FuncId::from_index(i),
                                        refine_receivers,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("summary extraction worker panicked"))
                    .collect()
            })
        };
        let globals = {
            let lookup = MemberLookup::new(program);
            let mut ex = Extractor::new(program, &lookup, None, false);
            walk_globals(program, &lookup, &mut ex).map(|()| ex.out)
        };
        let index = MemberIndex::new(program);
        let closures = (0..program.class_count())
            .map(|i| containment_closure(program, ClassId::from_index(i)))
            .collect();
        ProgramSummary {
            functions,
            globals,
            index,
            closures,
        }
    }

    /// Assembles a `ProgramSummary` from already-known parts: the TU
    /// linker builds linked summaries from cached per-TU modules without
    /// re-walking any body. `functions` must be indexed by `FuncId` of
    /// `program` and the derived tables (member index, containment
    /// closures) are recomputed from `program` itself, so they cannot
    /// drift from a cold build.
    pub(crate) fn from_parts(
        program: &Program,
        functions: Vec<Result<FnSummary, TypeError>>,
        globals: Result<FnSummary, TypeError>,
    ) -> ProgramSummary {
        debug_assert_eq!(functions.len(), program.function_count());
        let index = MemberIndex::new(program);
        let closures = (0..program.class_count())
            .map(|i| containment_closure(program, ClassId::from_index(i)))
            .collect();
        ProgramSummary {
            functions,
            globals,
            index,
            closures,
        }
    }

    /// The summary of `func`, or the walk error its body produced.
    ///
    /// # Errors
    ///
    /// Returns the [`TypeError`] recorded while walking the body.
    pub fn function(&self, func: FuncId) -> Result<&FnSummary, TypeError> {
        self.functions[func.index()].as_ref().map_err(Clone::clone)
    }

    /// The summary of the global initializers.
    ///
    /// # Errors
    ///
    /// Returns the [`TypeError`] recorded while walking them.
    pub fn globals(&self) -> Result<&FnSummary, TypeError> {
        self.globals.as_ref().map_err(Clone::clone)
    }

    /// The dense member numbering.
    pub fn member_index(&self) -> &MemberIndex {
        &self.index
    }

    /// Every class transitively contained in `class` (itself, by-value
    /// member classes, bases) — the precomputed footprint of
    /// `MarkAllContainedMembers`.
    pub fn contained_classes(&self, class: ClassId) -> &[ClassId] {
        &self.closures[class.index()]
    }

    /// The used-class set (Table 1), derived from summaries instead of
    /// re-walking every body: a class is used iff some function or global
    /// instantiates it, or it is contained in a used class.
    ///
    /// # Errors
    ///
    /// Surfaces stored walk errors in the same order the walking
    /// [`crate::used_classes`] would: functions in id order, then
    /// globals.
    pub fn used_classes(&self, program: &Program) -> Result<HashSet<ClassId>, TypeError> {
        let mut seeds: HashSet<ClassId> = HashSet::new();
        for (fid, f) in program.functions() {
            if f.body.is_some() || !f.inits.is_empty() {
                seeds.extend(self.function(fid)?.instantiated_classes());
            }
        }
        seeds.extend(self.globals()?.instantiated_classes());
        let mut used = HashSet::new();
        for s in seeds {
            used.extend(self.contained_classes(s).iter().copied());
        }
        Ok(used)
    }
}

/// The containment closure of `class`: itself, plus (transitively) its
/// by-value member classes and base classes. Matches both the recursion
/// of the analysis's `MarkAllContainedMembers` and the used-class
/// closure, which traverse the same edges.
fn containment_closure(program: &Program, class: ClassId) -> Vec<ClassId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![class];
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        out.push(c);
        let info = program.class(c);
        for m in &info.members {
            if let Some(name) = by_value_class(&m.ty) {
                if let Some(id) = program.class_by_name(name) {
                    stack.push(id);
                }
            }
        }
        for b in &info.bases {
            stack.push(b.id);
        }
    }
    out
}

/// Extracts the summary of one function body, walking it exactly once.
///
/// Public because the call-graph fixpoint's parallel rounds pre-extract
/// the bodies of a round's batch on worker threads and replay the
/// summaries in slot order — the PR-2 walk-once equivalence (replaying
/// an extracted summary observes the same events as walking the body)
/// is what keeps that bit-identical to the sequential walk.
///
/// # Errors
///
/// Returns the [`TypeError`] the walk produced, exactly as the walk
/// engine would surface it at this body.
pub fn extract_function(
    program: &Program,
    lookup: &MemberLookup<'_>,
    func: FuncId,
    refine: bool,
) -> Result<FnSummary, TypeError> {
    let mut ex = Extractor::new(program, lookup, Some(func), refine);
    walk_function(program, lookup, func, &mut ex)?;
    Ok(ex.out)
}

/// The extraction visitor: transcribes one body's events into a
/// [`FnSummary`]. Mirrors the event handling of the call-graph builder's
/// sink and the analysis's marking sink, minus everything that depends on
/// propagation state.
struct Extractor<'p, 'l> {
    program: &'p Program,
    lookup: &'l MemberLookup<'p>,
    /// The function being summarized; `None` for global initializers
    /// (whose sites the walk engine never revisits or refines).
    func: Option<FuncId>,
    refine: bool,
    /// Memoized §3.1 points-to queries per receiver variable.
    pointees: HashMap<String, Option<BTreeSet<ClassId>>>,
    out: FnSummary,
}

impl<'p, 'l> Extractor<'p, 'l> {
    fn new(
        program: &'p Program,
        lookup: &'l MemberLookup<'p>,
        func: Option<FuncId>,
        refine: bool,
    ) -> Self {
        Extractor {
            program,
            lookup,
            func,
            refine,
            pointees: HashMap::new(),
            out: FnSummary::default(),
        }
    }

    fn refined_targets(&mut self, var: &str, method_name: &str) -> Option<Vec<FuncId>> {
        let owner = self.func?;
        let program = self.program;
        let pointees = self
            .pointees
            .entry(var.to_string())
            .or_insert_with(|| crate::pta::local_pointees(program, owner, var))
            .clone()?;
        let mut out = BTreeSet::new();
        for c in pointees {
            if let Some(f) = self.lookup.resolve_virtual(c, method_name) {
                out.insert(f);
            }
        }
        Some(out.into_iter().collect())
    }
}

impl EventVisitor for Extractor<'_, '_> {
    fn member_access(&mut self, ev: &MemberAccessEvent) {
        let member = &self.program.class(ev.member.class).members[ev.member.index as usize];
        if ev.is_store_target {
            // Pure writes liven nothing — except volatile members.
            if member.is_volatile {
                self.out.live_steps.push(LiveStep::Access {
                    member: ev.member,
                    kind: MemberAccessKind::VolatileWrite,
                });
            }
            return;
        }
        if ev.is_delete_operand {
            return;
        }
        let kind = if ev.address_taken {
            MemberAccessKind::AddressTaken
        } else {
            MemberAccessKind::Read
        };
        self.out.live_steps.push(LiveStep::Access {
            member: ev.member,
            kind,
        });
    }

    fn ptr_to_member(&mut self, member: MemberRef, _span: Span) {
        self.out.live_steps.push(LiveStep::Access {
            member,
            kind: MemberAccessKind::PointerToMember,
        });
    }

    fn cast(&mut self, ev: &CastEvent) {
        let cause = match classify_cast(self.program, ev) {
            CastSafety::Safe => return,
            CastSafety::Unsafe => MarkAllCause::UnsafeCast,
            CastSafety::UnsafeDowncast => MarkAllCause::UnsafeDowncast,
        };
        let operand = strip_indirections(&ev.operand);
        if let Some(name) = operand.named() {
            if let Some(id) = self.program.class_by_name(name) {
                self.out.live_steps.push(LiveStep::MarkAll { class: id, cause });
            }
        }
    }

    fn sizeof_of(&mut self, ty: &Type, _span: Span) {
        let ty = strip_indirections(ty);
        if let Some(name) = ty.named() {
            if let Some(id) = self.program.class_by_name(name) {
                self.out.live_steps.push(LiveStep::MarkAll {
                    class: id,
                    cause: MarkAllCause::Sizeof,
                });
            }
        }
    }

    fn call(&mut self, ev: &CallEvent) {
        match &ev.target {
            CallTarget::Free(f) => self.out.cg_steps.push(CgStep::Call(*f)),
            CallTarget::Builtin(_) => {}
            CallTarget::Method {
                func,
                receiver_class,
                is_virtual_dispatch,
                receiver_var,
            } => {
                if *is_virtual_dispatch {
                    let program = self.program;
                    let name: &str = &program.function(*func).name;
                    let refined = match (self.refine, receiver_var) {
                        (true, Some(var)) => self.refined_targets(var, name),
                        _ => None,
                    };
                    let candidates = self
                        .lookup
                        .dispatch_candidates_for(*receiver_class, *func)
                        .to_vec();
                    self.out.cg_steps.push(CgStep::VirtualCall(VirtualSite {
                        decl: *func,
                        receiver: *receiver_class,
                        candidates,
                        refined,
                    }));
                } else {
                    self.out.cg_steps.push(CgStep::Call(*func));
                }
            }
            CallTarget::FunctionPointer => self.out.cg_steps.push(CgStep::FnPointerCall),
        }
    }

    fn address_of_function(&mut self, func: FuncId, _span: Span) {
        self.out.cg_steps.push(CgStep::TakeAddress(func));
    }

    fn instantiation(&mut self, ev: &InstantiationEvent) {
        self.out.cg_steps.push(CgStep::Instantiate {
            class: ev.class,
            ctor: ev.ctor,
        });
    }

    fn delete_of(&mut self, ev: &DeleteEvent) {
        let Some(class) = ev.pointee_class else {
            return;
        };
        let dtor = self.program.destructor(class);
        let virtual_dtor = dtor.is_some_and(|d| self.program.function(d).is_virtual);
        let candidates = if virtual_dtor {
            self.lookup.destructor_candidates(class).to_vec()
        } else {
            Vec::new()
        };
        let ancestor_dtors = self
            .program
            .ancestors_of(class)
            .into_iter()
            .filter_map(|a| self.program.destructor(a))
            .collect();
        self.out.cg_steps.push(CgStep::Delete(DeleteSite {
            class,
            dtor,
            virtual_dtor,
            candidates,
            ancestor_dtors,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn program(src: &str) -> Program {
        Program::build(&parse(src).expect("parse")).expect("sema")
    }

    const THREE_CLASSES: &str = "class A { public: int a0; int a1; };\n\
         class B { public: int b0; };\n\
         class C { public: int c0; int c1; int c2; };\n\
         int main() { return 0; }";

    #[test]
    fn member_index_round_trips_every_member() {
        let p = program(THREE_CLASSES);
        let index = MemberIndex::new(&p);
        assert_eq!(index.len(), 6);
        for (cid, class) in p.classes() {
            for idx in 0..class.members.len() {
                let m = MemberRef::new(cid, idx);
                let id = index.id_of(m).expect("every member has a dense id");
                assert_eq!(index.member_at(id), m, "round trip through {id}");
            }
        }
    }

    #[test]
    fn member_index_iterates_in_declaration_order() {
        let p = program(THREE_CLASSES);
        let index = MemberIndex::new(&p);
        let dense: Vec<MemberRef> = index.members().collect();
        let mut declared = Vec::new();
        for (cid, class) in p.classes() {
            for idx in 0..class.members.len() {
                declared.push(MemberRef::new(cid, idx));
            }
        }
        assert_eq!(dense, declared, "dense order must match declaration order");
        // Dense ids themselves are assigned in that order.
        for (expect, m) in declared.iter().enumerate() {
            assert_eq!(index.id_of(*m), Some(expect as u32));
        }
    }

    #[test]
    fn member_index_rejects_out_of_range_refs() {
        let p = program(THREE_CLASSES);
        let index = MemberIndex::new(&p);
        // Member index past the class's member count.
        let a = p.class_by_name("A").unwrap();
        assert_eq!(index.id_of(MemberRef::new(a, 2)), None);
        // Class index past the class count.
        assert_eq!(index.id_of(MemberRef::new(ClassId::from_index(99), 0)), None);
    }

    #[test]
    fn bitset_insert_contains_and_count() {
        let mut s = MemberBitSet::with_capacity(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(129));
        assert!(!s.contains(128));
        assert_eq!(s.count(), 4);
        // Insert past the capacity grows the set.
        assert!(s.insert(1000));
        assert!(s.contains(1000));
    }

    #[test]
    fn bitset_iterates_ascending() {
        let mut s = MemberBitSet::default();
        for id in [70, 3, 128, 0, 65] {
            s.insert(id);
        }
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 65, 70, 128]);
    }

    #[test]
    fn bitset_union_semantics() {
        let mut a = MemberBitSet::default();
        a.insert(1);
        a.insert(64);
        let mut b = MemberBitSet::default();
        b.insert(2);
        b.insert(64);
        b.insert(200);
        assert!(a.union_with(&b), "new bits arrived");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 64, 200]);
        assert!(!a.union_with(&b), "idempotent once absorbed");
        let empty = MemberBitSet::default();
        assert!(!a.union_with(&empty));
    }

    #[test]
    fn containment_closure_covers_members_and_bases() {
        let p = program(
            "class Inner { public: int deep; };\n\
             class Base { public: int inherited; };\n\
             class Outer : public Base { public: Inner inner; int own; };\n\
             class Apart { public: int lone; };\n\
             int main() { return 0; }",
        );
        let s = ProgramSummary::build(&p, false, 1);
        let outer = p.class_by_name("Outer").unwrap();
        let closure: HashSet<ClassId> = s.contained_classes(outer).iter().copied().collect();
        for name in ["Outer", "Inner", "Base"] {
            assert!(closure.contains(&p.class_by_name(name).unwrap()), "{name}");
        }
        assert!(!closure.contains(&p.class_by_name("Apart").unwrap()));
        // A leaf class contains only itself.
        let inner = p.class_by_name("Inner").unwrap();
        assert_eq!(s.contained_classes(inner), &[inner]);
    }

    #[test]
    fn summaries_transcribe_liveness_steps_in_body_order() {
        let p = program(
            "class A { public: int r; int w; volatile int v; };\n\
             int main() { A a; a.w = 1; a.v = 2; int* q = &a.r; return a.r; }",
        );
        let s = ProgramSummary::build(&p, false, 1);
        let main = p.main_function().unwrap();
        let steps = &s.function(main).unwrap().live_steps;
        let a = p.class_by_name("A").unwrap();
        assert_eq!(
            steps,
            &vec![
                LiveStep::Access {
                    member: MemberRef::new(a, 2),
                    kind: MemberAccessKind::VolatileWrite
                },
                LiveStep::Access {
                    member: MemberRef::new(a, 0),
                    kind: MemberAccessKind::AddressTaken
                },
                LiveStep::Access {
                    member: MemberRef::new(a, 0),
                    kind: MemberAccessKind::Read
                },
            ],
            "store to w dropped, volatile write kept, order preserved"
        );
    }

    #[test]
    fn extraction_is_identical_at_any_worker_count() {
        let p = program(
            "class A { public: virtual int f() { return x; } int x; };\n\
             class B : public A { public: virtual int f() { return y; } int y; };\n\
             int helper(A* a) { return a->f(); }\n\
             int main() { B b; return helper(&b); }",
        );
        let one = ProgramSummary::build(&p, false, 1);
        let eight = ProgramSummary::build(&p, false, 8);
        for (fid, _) in p.functions() {
            assert_eq!(
                one.function(fid).unwrap(),
                eight.function(fid).unwrap(),
                "{fid}"
            );
        }
        assert_eq!(one.globals().unwrap(), eight.globals().unwrap());
    }

    #[test]
    fn walk_errors_are_stored_per_function() {
        let p = program(
            "int bad() { return mystery; }\n\
             int main() { return 0; }",
        );
        let s = ProgramSummary::build(&p, false, 1);
        let bad = p.free_function("bad").unwrap();
        assert!(s.function(bad).is_err());
        assert!(s.function(p.main_function().unwrap()).is_ok());
    }

    #[test]
    fn used_classes_match_the_walking_computation() {
        let src = "class L { }; class H { }; class G { }; class U { };\n\
             class Base { public: int b; }; class Derived : public Base { };\n\
             G g;\n\
             void never_called() { Derived d; }\n\
             int main() { L l; H* h = new H(); delete h; return 0; }";
        let p = program(src);
        let s = ProgramSummary::build(&p, false, 1);
        let from_summary = s.used_classes(&p).unwrap();
        let lookup = MemberLookup::new(&p);
        let from_walk = crate::used::used_classes(&p, &lookup).unwrap();
        assert_eq!(from_summary, from_walk);
    }
}
