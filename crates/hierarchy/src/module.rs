//! Per-translation-unit summary modules: the cache unit of the
//! multi-TU (project-mode) pipeline.
//!
//! A [`TuModule`] is everything the linker needs to know about one TU
//! *without re-parsing it*: the classes, enums, globals, and free
//! functions it defines, plus one walk-once [`FnSummary`] per function —
//! stored **symbolically** (names and per-class indices instead of
//! `ClassId`/`FuncId`), so a module stays valid no matter which other
//! TUs it is later linked with. Cross-TU candidate sets (virtual
//! dispatch tables, `delete` destructor obligations) are deliberately
//! *not* stored: the linker re-derives them from the linked hierarchy,
//! which is exactly what whole-program extraction would have computed.
//!
//! Modules serialize to a versioned JSON document (the workspace has no
//! serde; the codec reuses [`ddm_telemetry::json`]). The envelope
//! carries a format version, a configuration fingerprint, and the FNV-1a
//! content hash of the TU source; [`TuModule::from_json`] rejects any
//! mismatch and validates every symbolic reference against the module's
//! own records, so a corrupted, truncated, or stale cache entry is
//! discarded and recomputed rather than trusted.

use crate::ids::{ClassId, FuncId, MemberRef};
use crate::model::Program;
use crate::summary::{
    CgStep, DeleteSite, FnSummary, LiveStep, MarkAllCause, MemberAccessKind, ProgramSummary,
    VirtualSite,
};
use crate::typewalk::{TypeError, TypeErrorKind};
use crate::LookupError;
use ddm_cppfront::ast::{ClassKind, FnType, FunctionKind, Type, TypeKind};
use ddm_cppfront::{SourceMap, TranslationUnit};
use ddm_telemetry::json::{self, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Version of the on-disk module format. Bumped on any incompatible
/// codec change; entries with a different version are invalidated.
pub const MODULE_FORMAT_VERSION: i64 = 1;

/// FNV-1a 64-bit hash (the content hash of the cache key and the body
/// fingerprints used for ODR comparison).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a hash as the fixed-width hex form used in file names and
/// envelopes.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// A function reference by stable name rather than by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymFunc {
    /// A free function, by name (C-style linkage: names only).
    Free(String),
    /// A method, by declaring class name and position in that class's
    /// method list. Stable across TUs because ODR-identical class
    /// definitions have identical method lists.
    Method {
        /// Declaring class name.
        class: String,
        /// Index into the class's method list.
        index: u32,
    },
}

/// A data member reference by class name and declaration index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymMember {
    /// Declaring class name.
    pub class: String,
    /// Index into the class's data-member list.
    pub index: u32,
}

/// Symbolic form of [`LiveStep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymLiveStep {
    /// A single member is livened.
    Access {
        /// The accessed member.
        member: SymMember,
        /// How it is accessed.
        kind: MemberAccessKind,
    },
    /// All members contained in `class` are livened.
    MarkAll {
        /// Root class of the containment closure, by name.
        class: String,
        /// Why, including any configuration gate.
        cause: MarkAllCause,
    },
}

/// Symbolic form of [`CgStep`]. Virtual-call and `delete` sites store
/// only what is TU-local (the static receiver / deleted class and any
/// points-to refinement); the linker recomputes candidate tables from
/// the linked hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymCgStep {
    /// A statically bound call.
    Call(SymFunc),
    /// A virtual dispatch site.
    VirtualCall {
        /// The statically resolved declaration.
        decl: SymFunc,
        /// The static receiver class name.
        receiver: String,
        /// §3.1 points-to refinement, when it applied (TU-computable:
        /// a receiver's full ancestry is visible in its own TU).
        refined: Option<Vec<SymFunc>>,
    },
    /// An indirect call through a function pointer.
    FnPointerCall,
    /// A function whose address is taken.
    TakeAddress(SymFunc),
    /// An object instantiation.
    Instantiate {
        /// The instantiated class name.
        class: String,
        /// The constructor that runs, when resolvable.
        ctor: Option<SymFunc>,
    },
    /// A `delete` of a pointer to `class`.
    Delete {
        /// The static class of the deleted pointer.
        class: String,
    },
}

/// Symbolic form of [`FnSummary`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymFnSummary {
    /// Liveness facts in body order.
    pub live_steps: Vec<SymLiveStep>,
    /// Call-graph facts in body order.
    pub cg_steps: Vec<SymCgStep>,
}

/// A symbolic summary or the walk error the body produced.
pub type SymResult = Result<SymFnSummary, TypeError>;

/// One data member of a [`ClassRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberRecord {
    /// Member name.
    pub name: String,
    /// Resolved type (enums already normalized to `int`).
    pub ty: Type,
    /// Whether the member is `volatile`.
    pub is_volatile: bool,
}

/// One method of a [`ClassRecord`], with its summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRecord {
    /// Method name.
    pub name: String,
    /// Method / constructor / destructor.
    pub kind: FunctionKind,
    /// Resolved virtualness (per-TU propagation equals whole-program
    /// propagation: a class's complete ancestry is TU-visible).
    pub is_virtual: bool,
    /// Parameter count (constructor overloads resolve by arity).
    pub arity: u32,
    /// Whether the method has a body.
    pub has_body: bool,
    /// FNV-1a fingerprint of the method's source text, for ODR
    /// comparison across TUs.
    pub body_fp: u64,
    /// Whether the method has a constructor-initializer list.
    pub has_inits: bool,
    /// 1-based declaration line (diagnostics).
    pub line: u32,
    /// 1-based declaration column (diagnostics).
    pub col: u32,
    /// The walk-once summary, or the error the walk produced.
    pub summary: SymResult,
}

/// One class definition in a TU.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRecord {
    /// Class name.
    pub name: String,
    /// `class` / `struct` / `union`.
    pub kind: ClassKind,
    /// Direct bases: (name, is_virtual), in declaration order.
    pub bases: Vec<(String, bool)>,
    /// Data members in declaration order.
    pub members: Vec<MemberRecord>,
    /// Methods in declaration order.
    pub methods: Vec<MethodRecord>,
    /// 1-based definition line (diagnostics).
    pub line: u32,
    /// 1-based definition column (diagnostics).
    pub col: u32,
}

impl ClassRecord {
    /// ODR identity: two definitions merge iff everything that affects
    /// analysis is equal — name, kind, bases, members, and each method's
    /// signature-and-text identity. Locations and summaries are
    /// excluded (summaries of textually identical methods over
    /// ODR-identical hierarchies are equal by construction).
    pub fn odr_eq(&self, other: &ClassRecord) -> bool {
        self.name == other.name
            && self.kind == other.kind
            && self.bases == other.bases
            && self.members == other.members
            && self.methods.len() == other.methods.len()
            && self
                .methods
                .iter()
                .zip(&other.methods)
                .all(|(a, b)| {
                    a.name == b.name
                        && a.kind == b.kind
                        && a.is_virtual == b.is_virtual
                        && a.arity == b.arity
                        && a.has_body == b.has_body
                        && a.body_fp == b.body_fp
                        && a.has_inits == b.has_inits
                })
    }
}

/// One enum definition in a TU.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumRecord {
    /// Enum name.
    pub name: String,
    /// Enumerators with resolved values, in declaration order.
    pub variants: Vec<(String, i64)>,
    /// 1-based definition line.
    pub line: u32,
    /// 1-based definition column.
    pub col: u32,
}

/// One global variable definition in a TU.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRecord {
    /// Variable name.
    pub name: String,
    /// Resolved type.
    pub ty: Type,
    /// 1-based definition line.
    pub line: u32,
    /// 1-based definition column.
    pub col: u32,
}

/// One free function (definition or prototype) in a TU.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeFnRecord {
    /// Function name.
    pub name: String,
    /// Parameter count.
    pub arity: u32,
    /// Whether this record is a definition (`true`) or a body-less
    /// prototype (`false`).
    pub has_body: bool,
    /// FNV-1a fingerprint of the declaration's source text.
    pub body_fp: u64,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// The walk-once summary (empty for prototypes), or the walk error.
    pub summary: SymResult,
}

/// Everything one TU contributes to a linked program.
#[derive(Debug, Clone, PartialEq)]
pub struct TuModule {
    /// The TU's file name (display only; not part of the cache key).
    pub file: String,
    /// FNV-1a hash of the TU source text.
    pub source_hash: u64,
    /// Class definitions in declaration order. Shared (`Arc`) because
    /// snapshot decoding materializes one record per distinct class
    /// and every TU that repeats it (shared headers) references the
    /// same allocation.
    pub classes: Vec<Arc<ClassRecord>>,
    /// Enum definitions in declaration order.
    pub enums: Vec<EnumRecord>,
    /// Global variables in declaration order.
    pub globals: Vec<GlobalRecord>,
    /// Free functions (definitions and prototypes) in declaration order.
    pub free_fns: Vec<FreeFnRecord>,
    /// The global-initializer summary of this TU.
    pub globals_summary: SymResult,
}

impl TuModule {
    /// Extracts the module of one TU from its parsed and summarized
    /// forms. `map` provides the source text (for content hash, body
    /// fingerprints, and line/column positions).
    pub fn extract(
        tu: &TranslationUnit,
        program: &Program,
        summary: &ProgramSummary,
        map: &SourceMap,
    ) -> TuModule {
        let loc = |span: ddm_cppfront::Span| {
            let lc = map.lookup(span.lo);
            (lc.line, lc.col)
        };
        let classes = program
            .classes()
            .map(|(_, info)| {
                let (line, col) = loc(info.span);
                Arc::new(ClassRecord {
                    name: info.name.clone(),
                    kind: info.kind,
                    bases: info
                        .bases
                        .iter()
                        .map(|b| (program.class(b.id).name.clone(), b.is_virtual))
                        .collect(),
                    members: info
                        .members
                        .iter()
                        .map(|m| MemberRecord {
                            name: m.name.clone(),
                            ty: m.ty.clone(),
                            is_volatile: m.is_volatile,
                        })
                        .collect(),
                    methods: info
                        .methods
                        .iter()
                        .map(|&fid| {
                            let f = program.function(fid);
                            let (line, col) = loc(f.span);
                            MethodRecord {
                                name: f.name.clone(),
                                kind: f.kind,
                                is_virtual: f.is_virtual,
                                arity: f.params.len() as u32,
                                has_body: f.body.is_some(),
                                body_fp: fnv1a64(map.snippet(f.span).as_bytes()),
                                has_inits: !f.inits.is_empty(),
                                line,
                                col,
                                summary: sym_result(program, summary.function(fid)),
                            }
                        })
                        .collect(),
                    line,
                    col,
                })
            })
            .collect();
        let free_fns = program
            .functions()
            .filter(|(_, f)| f.class.is_none())
            .map(|(fid, f)| {
                let (line, col) = loc(f.span);
                FreeFnRecord {
                    name: f.name.clone(),
                    arity: f.params.len() as u32,
                    has_body: f.body.is_some(),
                    body_fp: fnv1a64(map.snippet(f.span).as_bytes()),
                    line,
                    col,
                    summary: sym_result(program, summary.function(fid)),
                }
            })
            .collect();
        let enums = tu
            .enums
            .iter()
            .map(|e| {
                let (line, col) = loc(e.span);
                EnumRecord {
                    name: e.name.clone(),
                    variants: e.variants.clone(),
                    line,
                    col,
                }
            })
            .collect();
        let globals = program
            .globals()
            .iter()
            .map(|g| {
                let (line, col) = loc(g.span);
                GlobalRecord {
                    name: g.name.clone(),
                    ty: g.ty.clone(),
                    line,
                    col,
                }
            })
            .collect();
        TuModule {
            file: map.name().to_string(),
            source_hash: fnv1a64(map.source().as_bytes()),
            classes,
            enums,
            globals,
            free_fns,
            globals_summary: sym_result(program, summary.globals()),
        }
    }

    /// Serializes the module with its envelope (version, configuration
    /// fingerprint, source hash).
    pub fn to_json(&self, fingerprint: &str) -> String {
        Value::Obj(vec![
            ("version".into(), Value::Int(MODULE_FORMAT_VERSION)),
            ("fingerprint".into(), Value::Str(fingerprint.to_string())),
            ("source_hash".into(), Value::Str(hash_hex(self.source_hash))),
            ("file".into(), Value::Str(self.file.clone())),
            (
                "classes".into(),
                Value::Arr(self.classes.iter().map(|c| class_to_json(c)).collect()),
            ),
            (
                "enums".into(),
                Value::Arr(self.enums.iter().map(enum_to_json).collect()),
            ),
            (
                "globals".into(),
                Value::Arr(self.globals.iter().map(global_to_json).collect()),
            ),
            (
                "free_fns".into(),
                Value::Arr(self.free_fns.iter().map(free_fn_to_json).collect()),
            ),
            (
                "globals_summary".into(),
                sym_result_to_json(&self.globals_summary),
            ),
        ])
        .render()
    }

    /// Deserializes a module, rejecting anything that does not match
    /// `fingerprint` and `source_hash` or fails internal validation.
    ///
    /// # Errors
    ///
    /// Any parse failure, envelope mismatch, or dangling symbolic
    /// reference — all of which mean "invalidate and recompute".
    pub fn from_json(doc: &str, fingerprint: &str, source_hash: u64) -> Result<TuModule, String> {
        let v = json::parse(doc)?;
        if v.get("version").and_then(Value::as_int) != Some(MODULE_FORMAT_VERSION) {
            return Err("format version mismatch".to_string());
        }
        if v.get("fingerprint").and_then(Value::as_str) != Some(fingerprint) {
            return Err("configuration fingerprint mismatch".to_string());
        }
        if v.get("source_hash").and_then(Value::as_str) != Some(hash_hex(source_hash).as_str()) {
            return Err("source hash mismatch".to_string());
        }
        let file = req_str(&v, "file")?.to_string();
        let classes = req_arr(&v, "classes")?
            .iter()
            .map(|c| class_from_json(c).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        let enums = req_arr(&v, "enums")?
            .iter()
            .map(enum_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let globals = req_arr(&v, "globals")?
            .iter()
            .map(global_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let free_fns = req_arr(&v, "free_fns")?
            .iter()
            .map(free_fn_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let globals_summary =
            sym_result_from_json(v.get("globals_summary").ok_or("missing globals_summary")?)?;
        let module = TuModule {
            file,
            source_hash,
            classes,
            enums,
            globals,
            free_fns,
            globals_summary,
        };
        module.validate()?;
        Ok(module)
    }

    /// Checks that every symbolic reference resolves within this
    /// module's own records. Genuine modules always pass: a per-TU
    /// summary can only reference names defined in its own TU (the
    /// self-containment contract), so a failure here proves the entry
    /// was corrupted or hand-crafted.
    pub fn validate(&self) -> Result<(), String> {
        let classes: HashMap<&str, &ClassRecord> = self
            .classes
            .iter()
            .map(|c| (c.name.as_str(), &**c))
            .collect();
        let free_fns: std::collections::HashSet<&str> =
            self.free_fns.iter().map(|f| f.name.as_str()).collect();
        let check_class = |name: &str| -> Result<&ClassRecord, String> {
            classes
                .get(name)
                .copied()
                .ok_or_else(|| format!("dangling class reference `{name}`"))
        };
        let check_func = |f: &SymFunc| -> Result<(), String> {
            match f {
                SymFunc::Free(name) => {
                    if free_fns.contains(name.as_str()) {
                        Ok(())
                    } else {
                        Err(format!("dangling free-function reference `{name}`"))
                    }
                }
                SymFunc::Method { class, index } => {
                    let c = check_class(class)?;
                    if (*index as usize) < c.methods.len() {
                        Ok(())
                    } else {
                        Err(format!("method index {index} out of range in `{class}`"))
                    }
                }
            }
        };
        let check_summary = |s: &SymResult| -> Result<(), String> {
            let Ok(s) = s else { return Ok(()) };
            for step in &s.live_steps {
                match step {
                    SymLiveStep::Access { member, .. } => {
                        let c = check_class(&member.class)?;
                        if member.index as usize >= c.members.len() {
                            return Err(format!(
                                "member index {} out of range in `{}`",
                                member.index, member.class
                            ));
                        }
                    }
                    SymLiveStep::MarkAll { class, .. } => {
                        check_class(class)?;
                    }
                }
            }
            for step in &s.cg_steps {
                match step {
                    SymCgStep::Call(f) | SymCgStep::TakeAddress(f) => check_func(f)?,
                    SymCgStep::VirtualCall {
                        decl,
                        receiver,
                        refined,
                    } => {
                        check_func(decl)?;
                        check_class(receiver)?;
                        for f in refined.iter().flatten() {
                            check_func(f)?;
                        }
                    }
                    SymCgStep::FnPointerCall => {}
                    SymCgStep::Instantiate { class, ctor } => {
                        check_class(class)?;
                        if let Some(c) = ctor {
                            check_func(c)?;
                        }
                    }
                    SymCgStep::Delete { class } => {
                        check_class(class)?;
                    }
                }
            }
            Ok(())
        };
        for c in &self.classes {
            for (base, _) in &c.bases {
                check_class(base)?;
            }
            for m in &c.methods {
                check_summary(&m.summary)?;
            }
        }
        for f in &self.free_fns {
            check_summary(&f.summary)?;
        }
        check_summary(&self.globals_summary)
    }
}

fn sym_result(program: &Program, r: Result<&FnSummary, TypeError>) -> SymResult {
    r.map(|s| sym_summary(program, s))
}

fn sym_func(program: &Program, fid: FuncId) -> SymFunc {
    let f = program.function(fid);
    match f.class {
        None => SymFunc::Free(f.name.clone()),
        Some(cid) => {
            let index = program
                .class(cid)
                .methods
                .iter()
                .position(|&m| m == fid)
                .expect("a method is listed by its declaring class") as u32;
            SymFunc::Method {
                class: program.class(cid).name.clone(),
                index,
            }
        }
    }
}

fn sym_member(program: &Program, m: MemberRef) -> SymMember {
    SymMember {
        class: program.class(m.class).name.clone(),
        index: m.index,
    }
}

fn class_name(program: &Program, c: ClassId) -> String {
    program.class(c).name.clone()
}

/// Converts an id-based summary to the symbolic form.
fn sym_summary(program: &Program, s: &FnSummary) -> SymFnSummary {
    let live_steps = s
        .live_steps
        .iter()
        .map(|step| match step {
            LiveStep::Access { member, kind } => SymLiveStep::Access {
                member: sym_member(program, *member),
                kind: *kind,
            },
            LiveStep::MarkAll { class, cause } => SymLiveStep::MarkAll {
                class: class_name(program, *class),
                cause: *cause,
            },
        })
        .collect();
    let cg_steps = s
        .cg_steps
        .iter()
        .map(|step| match step {
            CgStep::Call(f) => SymCgStep::Call(sym_func(program, *f)),
            CgStep::VirtualCall(site) => SymCgStep::VirtualCall {
                decl: sym_func(program, site.decl),
                receiver: class_name(program, site.receiver),
                refined: site
                    .refined
                    .as_ref()
                    .map(|fs| fs.iter().map(|&f| sym_func(program, f)).collect()),
            },
            CgStep::FnPointerCall => SymCgStep::FnPointerCall,
            CgStep::TakeAddress(f) => SymCgStep::TakeAddress(sym_func(program, *f)),
            CgStep::Instantiate { class, ctor } => SymCgStep::Instantiate {
                class: class_name(program, *class),
                ctor: ctor.map(|c| sym_func(program, c)),
            },
            CgStep::Delete(site) => SymCgStep::Delete {
                class: class_name(program, site.class),
            },
        })
        .collect();
    SymFnSummary {
        live_steps,
        cg_steps,
    }
}

/// A resolution context over a linked program: turns symbolic summaries
/// back into id-based [`FnSummary`]s and recomputes the link-dependent
/// candidate tables. Resolution is infallible on validated modules
/// whose classes and free functions were all linked in.
pub struct SymResolver<'p> {
    program: &'p Program,
    lookup: crate::MemberLookup<'p>,
}

impl<'p> SymResolver<'p> {
    /// Creates a resolver over the linked `program`.
    pub fn new(program: &'p Program) -> SymResolver<'p> {
        SymResolver {
            program,
            lookup: crate::MemberLookup::new(program),
        }
    }

    fn class(&self, name: &str) -> ClassId {
        self.program
            .class_by_name(name)
            .expect("validated module references a linked class")
    }

    fn func(&self, f: &SymFunc) -> FuncId {
        match f {
            SymFunc::Free(name) => self
                .program
                .free_function(name)
                .expect("validated module references a linked free function"),
            SymFunc::Method { class, index } => {
                self.program.class(self.class(class)).methods[*index as usize]
            }
        }
    }

    /// Resolves one symbolic result into the id space of the linked
    /// program, recomputing virtual-dispatch and `delete` candidate
    /// tables from the linked hierarchy (exactly what whole-program
    /// extraction computes).
    pub fn resolve(&self, r: &SymResult) -> Result<FnSummary, TypeError> {
        let s = r.as_ref().map_err(Clone::clone)?;
        let live_steps = s
            .live_steps
            .iter()
            .map(|step| match step {
                SymLiveStep::Access { member, kind } => LiveStep::Access {
                    member: MemberRef::new(self.class(&member.class), member.index as usize),
                    kind: *kind,
                },
                SymLiveStep::MarkAll { class, cause } => LiveStep::MarkAll {
                    class: self.class(class),
                    cause: *cause,
                },
            })
            .collect();
        let cg_steps = s
            .cg_steps
            .iter()
            .map(|step| match step {
                SymCgStep::Call(f) => CgStep::Call(self.func(f)),
                SymCgStep::VirtualCall {
                    decl,
                    receiver,
                    refined,
                } => {
                    let decl = self.func(decl);
                    let receiver = self.class(receiver);
                    let name = &self.program.function(decl).name;
                    CgStep::VirtualCall(VirtualSite {
                        decl,
                        receiver,
                        candidates: self.lookup.dispatch_candidates(receiver, name).to_vec(),
                        refined: refined
                            .as_ref()
                            .map(|fs| fs.iter().map(|f| self.func(f)).collect()),
                    })
                }
                SymCgStep::FnPointerCall => CgStep::FnPointerCall,
                SymCgStep::TakeAddress(f) => CgStep::TakeAddress(self.func(f)),
                SymCgStep::Instantiate { class, ctor } => CgStep::Instantiate {
                    class: self.class(class),
                    ctor: ctor.as_ref().map(|c| self.func(c)),
                },
                SymCgStep::Delete { class } => {
                    let class = self.class(class);
                    let dtor = self.program.destructor(class);
                    let virtual_dtor =
                        dtor.is_some_and(|d| self.program.function(d).is_virtual);
                    let candidates = if virtual_dtor {
                        self.lookup.destructor_candidates(class).to_vec()
                    } else {
                        Vec::new()
                    };
                    let ancestor_dtors = self
                        .program
                        .ancestors_of(class)
                        .into_iter()
                        .filter_map(|a| self.program.destructor(a))
                        .collect();
                    CgStep::Delete(DeleteSite {
                        class,
                        dtor,
                        virtual_dtor,
                        candidates,
                        ancestor_dtors,
                    })
                }
            })
            .collect();
        Ok(FnSummary {
            live_steps,
            cg_steps,
        })
    }
}

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn u(n: u32) -> Value {
    Value::Int(i64::from(n))
}

fn class_to_json(c: &ClassRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), s(&c.name)),
        (
            "kind".into(),
            s(match c.kind {
                ClassKind::Class => "class",
                ClassKind::Struct => "struct",
                ClassKind::Union => "union",
            }),
        ),
        (
            "bases".into(),
            Value::Arr(
                c.bases
                    .iter()
                    .map(|(n, v)| Value::Arr(vec![s(n), Value::Bool(*v)]))
                    .collect(),
            ),
        ),
        (
            "members".into(),
            Value::Arr(
                c.members
                    .iter()
                    .map(|m| {
                        Value::Obj(vec![
                            ("name".into(), s(&m.name)),
                            ("ty".into(), ty_to_json(&m.ty)),
                            ("vol".into(), Value::Bool(m.is_volatile)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "methods".into(),
            Value::Arr(c.methods.iter().map(method_to_json).collect()),
        ),
        ("line".into(), u(c.line)),
        ("col".into(), u(c.col)),
    ])
}

fn method_to_json(m: &MethodRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), s(&m.name)),
        (
            "kind".into(),
            s(match m.kind {
                FunctionKind::Free => "free",
                FunctionKind::Method => "method",
                FunctionKind::Constructor => "ctor",
                FunctionKind::Destructor => "dtor",
            }),
        ),
        ("virt".into(), Value::Bool(m.is_virtual)),
        ("arity".into(), u(m.arity)),
        ("has_body".into(), Value::Bool(m.has_body)),
        ("fp".into(), Value::Str(hash_hex(m.body_fp))),
        ("has_inits".into(), Value::Bool(m.has_inits)),
        ("line".into(), u(m.line)),
        ("col".into(), u(m.col)),
        ("summary".into(), sym_result_to_json(&m.summary)),
    ])
}

fn free_fn_to_json(f: &FreeFnRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), s(&f.name)),
        ("arity".into(), u(f.arity)),
        ("has_body".into(), Value::Bool(f.has_body)),
        ("fp".into(), Value::Str(hash_hex(f.body_fp))),
        ("line".into(), u(f.line)),
        ("col".into(), u(f.col)),
        ("summary".into(), sym_result_to_json(&f.summary)),
    ])
}

fn enum_to_json(e: &EnumRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), s(&e.name)),
        (
            "variants".into(),
            Value::Arr(
                e.variants
                    .iter()
                    .map(|(n, v)| Value::Arr(vec![s(n), Value::Int(*v)]))
                    .collect(),
            ),
        ),
        ("line".into(), u(e.line)),
        ("col".into(), u(e.col)),
    ])
}

fn global_to_json(g: &GlobalRecord) -> Value {
    Value::Obj(vec![
        ("name".into(), s(&g.name)),
        ("ty".into(), ty_to_json(&g.ty)),
        ("line".into(), u(g.line)),
        ("col".into(), u(g.col)),
    ])
}

/// Types encode as tagged arrays with the const/volatile qualifiers at
/// every level: `["ptr", c, v, <inner>]`, `["named", c, v, "A"]`, …
fn ty_to_json(ty: &Type) -> Value {
    let c = Value::Bool(ty.is_const);
    let v = Value::Bool(ty.is_volatile);
    let mut items = match &ty.kind {
        TypeKind::Void => vec![s("void")],
        TypeKind::Bool => vec![s("bool")],
        TypeKind::Char => vec![s("char")],
        TypeKind::Short => vec![s("short")],
        TypeKind::Int => vec![s("int")],
        TypeKind::Long => vec![s("long")],
        TypeKind::Float => vec![s("float")],
        TypeKind::Double => vec![s("double")],
        TypeKind::Named(n) => vec![s("named"), s(n)],
        TypeKind::Pointer(inner) => vec![s("ptr"), ty_to_json(inner)],
        TypeKind::Reference(inner) => vec![s("ref"), ty_to_json(inner)],
        TypeKind::Array(inner, n) => {
            vec![s("arr"), ty_to_json(inner), Value::Int(*n as i64)]
        }
        TypeKind::Function(ft) => vec![
            s("fn"),
            ty_to_json(&ft.ret),
            Value::Arr(ft.params.iter().map(ty_to_json).collect()),
        ],
        TypeKind::MemberPointer { class, pointee } => {
            vec![s("mptr"), s(class), ty_to_json(pointee)]
        }
    };
    items.insert(1, c);
    items.insert(2, v);
    Value::Arr(items)
}

fn sym_func_to_json(f: &SymFunc) -> Value {
    match f {
        SymFunc::Free(name) => Value::Arr(vec![s("f"), s(name)]),
        SymFunc::Method { class, index } => Value::Arr(vec![s("m"), s(class), u(*index)]),
    }
}

fn sym_result_to_json(r: &SymResult) -> Value {
    match r {
        Ok(summary) => Value::Obj(vec![
            (
                "live".into(),
                Value::Arr(summary.live_steps.iter().map(live_step_to_json).collect()),
            ),
            (
                "cg".into(),
                Value::Arr(summary.cg_steps.iter().map(cg_step_to_json).collect()),
            ),
        ]),
        Err(e) => Value::Obj(vec![("err".into(), type_error_to_json(e))]),
    }
}

fn live_step_to_json(step: &SymLiveStep) -> Value {
    match step {
        SymLiveStep::Access { member, kind } => Value::Arr(vec![
            s("acc"),
            s(&member.class),
            u(member.index),
            s(match kind {
                MemberAccessKind::Read => "read",
                MemberAccessKind::AddressTaken => "addr",
                MemberAccessKind::PointerToMember => "pm",
                MemberAccessKind::VolatileWrite => "vw",
            }),
        ]),
        SymLiveStep::MarkAll { class, cause } => Value::Arr(vec![
            s("all"),
            s(class),
            s(match cause {
                MarkAllCause::UnsafeCast => "cast",
                MarkAllCause::UnsafeDowncast => "down",
                MarkAllCause::Sizeof => "sizeof",
            }),
        ]),
    }
}

fn cg_step_to_json(step: &SymCgStep) -> Value {
    match step {
        SymCgStep::Call(f) => Value::Arr(vec![s("call"), sym_func_to_json(f)]),
        SymCgStep::VirtualCall {
            decl,
            receiver,
            refined,
        } => Value::Arr(vec![
            s("virt"),
            sym_func_to_json(decl),
            s(receiver),
            match refined {
                None => Value::Null,
                Some(fs) => Value::Arr(fs.iter().map(sym_func_to_json).collect()),
            },
        ]),
        SymCgStep::FnPointerCall => Value::Arr(vec![s("fp")]),
        SymCgStep::TakeAddress(f) => Value::Arr(vec![s("addr"), sym_func_to_json(f)]),
        SymCgStep::Instantiate { class, ctor } => Value::Arr(vec![
            s("new"),
            s(class),
            match ctor {
                None => Value::Null,
                Some(c) => sym_func_to_json(c),
            },
        ]),
        SymCgStep::Delete { class } => Value::Arr(vec![s("del"), s(class)]),
    }
}

fn type_error_to_json(e: &TypeError) -> Value {
    let span = e.span();
    let (tag, payload) = match e.kind() {
        TypeErrorKind::UnknownIdent(n) => ("unknown_ident", vec![s(n)]),
        TypeErrorKind::NotAClass(t) => ("not_a_class", vec![s(t)]),
        TypeErrorKind::NotAPointer(t) => ("not_a_pointer", vec![s(t)]),
        TypeErrorKind::NotCallable(t) => ("not_callable", vec![s(t)]),
        TypeErrorKind::Lookup(LookupError::NotFound { class, name }) => {
            ("lookup_not_found", vec![s(class), s(name)])
        }
        TypeErrorKind::Lookup(LookupError::Ambiguous { class, name }) => {
            ("lookup_ambiguous", vec![s(class), s(name)])
        }
        TypeErrorKind::ThisOutsideMethod => ("this_outside_method", vec![]),
        TypeErrorKind::UnknownQualifier(q) => ("unknown_qualifier", vec![s(q)]),
    };
    let mut items = vec![s(tag)];
    items.extend(payload);
    items.push(u(span.lo));
    items.push(u(span.hi));
    Value::Arr(items)
}

// ---------------------------------------------------------------------
// JSON decoding
// ---------------------------------------------------------------------

fn req<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn req_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn req_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], String> {
    req(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

fn req_bool(v: &Value, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn req_u32(v: &Value, key: &str) -> Result<u32, String> {
    let n = req(v, key)?
        .as_int()
        .ok_or_else(|| format!("field `{key}` is not an integer"))?;
    u32::try_from(n).map_err(|_| format!("field `{key}` out of range"))
}

fn req_hash(v: &Value, key: &str) -> Result<u64, String> {
    let text = req_str(v, key)?;
    if text.len() != 16 {
        return Err(format!("field `{key}` is not a 16-hex hash"));
    }
    u64::from_str_radix(text, 16).map_err(|_| format!("field `{key}` is not a 16-hex hash"))
}

fn arr_str(v: &Value) -> Result<&str, String> {
    v.as_str().ok_or_else(|| "expected a string".to_string())
}

fn arr_u32(v: &Value) -> Result<u32, String> {
    let n = v.as_int().ok_or("expected an integer")?;
    u32::try_from(n).map_err(|_| "integer out of range".to_string())
}

fn class_from_json(v: &Value) -> Result<ClassRecord, String> {
    let kind = match req_str(v, "kind")? {
        "class" => ClassKind::Class,
        "struct" => ClassKind::Struct,
        "union" => ClassKind::Union,
        other => return Err(format!("unknown class kind `{other}`")),
    };
    let bases = req_arr(v, "bases")?
        .iter()
        .map(|b| {
            let items = b.as_arr().ok_or("base is not an array")?;
            match items {
                [name, virt] => Ok((
                    arr_str(name)?.to_string(),
                    virt.as_bool().ok_or("base virtual flag is not a bool")?,
                )),
                _ => Err("base is not a [name, virtual] pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let members = req_arr(v, "members")?
        .iter()
        .map(|m| {
            Ok(MemberRecord {
                name: req_str(m, "name")?.to_string(),
                ty: ty_from_json(req(m, "ty")?)?,
                is_volatile: req_bool(m, "vol")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let methods = req_arr(v, "methods")?
        .iter()
        .map(method_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ClassRecord {
        name: req_str(v, "name")?.to_string(),
        kind,
        bases,
        members,
        methods,
        line: req_u32(v, "line")?,
        col: req_u32(v, "col")?,
    })
}

fn fn_kind_from_str(text: &str) -> Result<FunctionKind, String> {
    match text {
        "free" => Ok(FunctionKind::Free),
        "method" => Ok(FunctionKind::Method),
        "ctor" => Ok(FunctionKind::Constructor),
        "dtor" => Ok(FunctionKind::Destructor),
        other => Err(format!("unknown function kind `{other}`")),
    }
}

fn method_from_json(v: &Value) -> Result<MethodRecord, String> {
    Ok(MethodRecord {
        name: req_str(v, "name")?.to_string(),
        kind: fn_kind_from_str(req_str(v, "kind")?)?,
        is_virtual: req_bool(v, "virt")?,
        arity: req_u32(v, "arity")?,
        has_body: req_bool(v, "has_body")?,
        body_fp: req_hash(v, "fp")?,
        has_inits: req_bool(v, "has_inits")?,
        line: req_u32(v, "line")?,
        col: req_u32(v, "col")?,
        summary: sym_result_from_json(req(v, "summary")?)?,
    })
}

fn free_fn_from_json(v: &Value) -> Result<FreeFnRecord, String> {
    Ok(FreeFnRecord {
        name: req_str(v, "name")?.to_string(),
        arity: req_u32(v, "arity")?,
        has_body: req_bool(v, "has_body")?,
        body_fp: req_hash(v, "fp")?,
        line: req_u32(v, "line")?,
        col: req_u32(v, "col")?,
        summary: sym_result_from_json(req(v, "summary")?)?,
    })
}

fn enum_from_json(v: &Value) -> Result<EnumRecord, String> {
    let variants = req_arr(v, "variants")?
        .iter()
        .map(|e| {
            let items = e.as_arr().ok_or("variant is not an array")?;
            match items {
                [name, value] => Ok((
                    arr_str(name)?.to_string(),
                    value.as_int().ok_or("variant value is not an integer")?,
                )),
                _ => Err("variant is not a [name, value] pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(EnumRecord {
        name: req_str(v, "name")?.to_string(),
        variants,
        line: req_u32(v, "line")?,
        col: req_u32(v, "col")?,
    })
}

fn global_from_json(v: &Value) -> Result<GlobalRecord, String> {
    Ok(GlobalRecord {
        name: req_str(v, "name")?.to_string(),
        ty: ty_from_json(req(v, "ty")?)?,
        line: req_u32(v, "line")?,
        col: req_u32(v, "col")?,
    })
}

fn ty_from_json(v: &Value) -> Result<Type, String> {
    let items = v.as_arr().ok_or("type is not an array")?;
    let [tag, c, vol, rest @ ..] = items else {
        return Err("type array too short".to_string());
    };
    let tag = arr_str(tag)?;
    let is_const = c.as_bool().ok_or("type const flag is not a bool")?;
    let is_volatile = vol.as_bool().ok_or("type volatile flag is not a bool")?;
    let kind = match (tag, rest) {
        ("void", []) => TypeKind::Void,
        ("bool", []) => TypeKind::Bool,
        ("char", []) => TypeKind::Char,
        ("short", []) => TypeKind::Short,
        ("int", []) => TypeKind::Int,
        ("long", []) => TypeKind::Long,
        ("float", []) => TypeKind::Float,
        ("double", []) => TypeKind::Double,
        ("named", [name]) => TypeKind::Named(arr_str(name)?.to_string()),
        ("ptr", [inner]) => TypeKind::Pointer(Box::new(ty_from_json(inner)?)),
        ("ref", [inner]) => TypeKind::Reference(Box::new(ty_from_json(inner)?)),
        ("arr", [inner, len]) => {
            let len = len.as_int().ok_or("array length is not an integer")?;
            let len = usize::try_from(len).map_err(|_| "array length out of range".to_string())?;
            TypeKind::Array(Box::new(ty_from_json(inner)?), len)
        }
        ("fn", [ret, params]) => {
            let params = params
                .as_arr()
                .ok_or("fn params is not an array")?
                .iter()
                .map(ty_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            TypeKind::Function(Box::new(FnType {
                ret: ty_from_json(ret)?,
                params,
            }))
        }
        ("mptr", [class, pointee]) => TypeKind::MemberPointer {
            class: arr_str(class)?.to_string(),
            pointee: Box::new(ty_from_json(pointee)?),
        },
        _ => return Err(format!("malformed type `{tag}`")),
    };
    Ok(Type {
        kind,
        is_const,
        is_volatile,
    })
}

fn sym_func_from_json(v: &Value) -> Result<SymFunc, String> {
    let items = v.as_arr().ok_or("function ref is not an array")?;
    match items {
        [tag, name] if tag.as_str() == Some("f") => Ok(SymFunc::Free(arr_str(name)?.to_string())),
        [tag, class, index] if tag.as_str() == Some("m") => Ok(SymFunc::Method {
            class: arr_str(class)?.to_string(),
            index: arr_u32(index)?,
        }),
        _ => Err("malformed function ref".to_string()),
    }
}

fn sym_result_from_json(v: &Value) -> Result<SymResult, String> {
    if let Some(err) = v.get("err") {
        return Ok(Err(type_error_from_json(err)?));
    }
    let live_steps = req_arr(v, "live")?
        .iter()
        .map(live_step_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let cg_steps = req_arr(v, "cg")?
        .iter()
        .map(cg_step_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Ok(SymFnSummary {
        live_steps,
        cg_steps,
    }))
}

fn live_step_from_json(v: &Value) -> Result<SymLiveStep, String> {
    let items = v.as_arr().ok_or("live step is not an array")?;
    match items {
        [tag, class, index, kind] if tag.as_str() == Some("acc") => {
            let kind = match arr_str(kind)? {
                "read" => MemberAccessKind::Read,
                "addr" => MemberAccessKind::AddressTaken,
                "pm" => MemberAccessKind::PointerToMember,
                "vw" => MemberAccessKind::VolatileWrite,
                other => return Err(format!("unknown access kind `{other}`")),
            };
            Ok(SymLiveStep::Access {
                member: SymMember {
                    class: arr_str(class)?.to_string(),
                    index: arr_u32(index)?,
                },
                kind,
            })
        }
        [tag, class, cause] if tag.as_str() == Some("all") => {
            let cause = match arr_str(cause)? {
                "cast" => MarkAllCause::UnsafeCast,
                "down" => MarkAllCause::UnsafeDowncast,
                "sizeof" => MarkAllCause::Sizeof,
                other => return Err(format!("unknown mark-all cause `{other}`")),
            };
            Ok(SymLiveStep::MarkAll {
                class: arr_str(class)?.to_string(),
                cause,
            })
        }
        _ => Err("malformed live step".to_string()),
    }
}

fn cg_step_from_json(v: &Value) -> Result<SymCgStep, String> {
    let items = v.as_arr().ok_or("cg step is not an array")?;
    let tag = items
        .first()
        .and_then(Value::as_str)
        .ok_or("cg step has no tag")?;
    match (tag, &items[1..]) {
        ("call", [f]) => Ok(SymCgStep::Call(sym_func_from_json(f)?)),
        ("virt", [decl, receiver, refined]) => Ok(SymCgStep::VirtualCall {
            decl: sym_func_from_json(decl)?,
            receiver: arr_str(receiver)?.to_string(),
            refined: match refined {
                Value::Null => None,
                Value::Arr(fs) => Some(
                    fs.iter()
                        .map(sym_func_from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                _ => return Err("malformed refined list".to_string()),
            },
        }),
        ("fp", []) => Ok(SymCgStep::FnPointerCall),
        ("addr", [f]) => Ok(SymCgStep::TakeAddress(sym_func_from_json(f)?)),
        ("new", [class, ctor]) => Ok(SymCgStep::Instantiate {
            class: arr_str(class)?.to_string(),
            ctor: match ctor {
                Value::Null => None,
                other => Some(sym_func_from_json(other)?),
            },
        }),
        ("del", [class]) => Ok(SymCgStep::Delete {
            class: arr_str(class)?.to_string(),
        }),
        _ => Err(format!("malformed cg step `{tag}`")),
    }
}

fn type_error_from_json(v: &Value) -> Result<TypeError, String> {
    let items = v.as_arr().ok_or("type error is not an array")?;
    let tag = items
        .first()
        .and_then(Value::as_str)
        .ok_or("type error has no tag")?;
    let kind = match (tag, &items[1..]) {
        ("unknown_ident", [n, _, _]) => TypeErrorKind::UnknownIdent(arr_str(n)?.to_string()),
        ("not_a_class", [t, _, _]) => TypeErrorKind::NotAClass(arr_str(t)?.to_string()),
        ("not_a_pointer", [t, _, _]) => TypeErrorKind::NotAPointer(arr_str(t)?.to_string()),
        ("not_callable", [t, _, _]) => TypeErrorKind::NotCallable(arr_str(t)?.to_string()),
        ("lookup_not_found", [class, name, _, _]) => {
            TypeErrorKind::Lookup(LookupError::NotFound {
                class: arr_str(class)?.to_string(),
                name: arr_str(name)?.to_string(),
            })
        }
        ("lookup_ambiguous", [class, name, _, _]) => {
            TypeErrorKind::Lookup(LookupError::Ambiguous {
                class: arr_str(class)?.to_string(),
                name: arr_str(name)?.to_string(),
            })
        }
        ("this_outside_method", [_, _]) => TypeErrorKind::ThisOutsideMethod,
        ("unknown_qualifier", [q, _, _]) => TypeErrorKind::UnknownQualifier(arr_str(q)?.to_string()),
        _ => return Err(format!("malformed type error `{tag}`")),
    };
    let n = items.len();
    let lo = arr_u32(&items[n - 2])?;
    let hi = arr_u32(&items[n - 1])?;
    Ok(TypeError::from_parts(
        kind,
        ddm_cppfront::Span::new(lo, hi),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    const SRC: &str = "\
enum Mode { Off, On };
class Base { public: virtual int get() { return tag; } virtual ~Base() { } int tag; };
class Derived : public Base {
public:
    Derived(int s) : seed(s) { }
    virtual int get() { return seed; }
    int seed;
    volatile int flag;
    Mode mode;
};
int helper();
int spin(Base* b) { return b->get(); }
int main() {
    Derived d(3);
    Base* b = &d;
    int r = spin(b) + helper();
    delete b;
    return r;
}
int helper() { int (*fp)() = helper; return sizeof(Derived) + fp(); }
int fleet = helper();
";

    fn extract(src: &str, refine: bool) -> (TuModule, Program, ProgramSummary) {
        let tu = parse(src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let summary = ProgramSummary::build(&program, refine, 1);
        let map = SourceMap::new("t.cpp", src);
        let module = TuModule::extract(&tu, &program, &summary, &map);
        (module, program, summary)
    }

    #[test]
    fn extraction_captures_definitions() {
        let (m, _, _) = extract(SRC, false);
        assert_eq!(m.file, "t.cpp");
        assert_eq!(m.source_hash, fnv1a64(SRC.as_bytes()));
        assert_eq!(m.classes.len(), 2);
        assert_eq!(m.classes[1].name, "Derived");
        assert_eq!(m.classes[1].bases, vec![("Base".to_string(), false)]);
        assert_eq!(m.classes[1].members.len(), 3);
        assert!(m.classes[1].members[1].is_volatile);
        // Enum member type is already normalized to int.
        assert_eq!(m.classes[1].members[2].ty, Type::int());
        assert_eq!(m.enums.len(), 1);
        assert_eq!(m.enums[0].variants, vec![("Off".into(), 0), ("On".into(), 1)]);
        assert_eq!(m.globals.len(), 1);
        // The per-TU front end merges a prototype with its same-TU
        // definition into a single function slot, so one record remains
        // and it carries the body.
        let helpers: Vec<&FreeFnRecord> =
            m.free_fns.iter().filter(|f| f.name == "helper").collect();
        assert_eq!(helpers.len(), 1);
        assert!(helpers[0].has_body);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn json_roundtrip_is_identity() {
        for refine in [false, true] {
            let (m, _, _) = extract(SRC, refine);
            let doc = m.to_json("v1;refine=0");
            assert!(json::validate(&doc).is_ok());
            let back =
                TuModule::from_json(&doc, "v1;refine=0", m.source_hash).expect("roundtrip");
            assert_eq!(back, m, "refine={refine}");
        }
    }

    #[test]
    fn envelope_mismatches_are_rejected() {
        let (m, _, _) = extract(SRC, false);
        let doc = m.to_json("v1;refine=0");
        assert!(TuModule::from_json(&doc, "v1;refine=1", m.source_hash).is_err());
        assert!(TuModule::from_json(&doc, "v1;refine=0", m.source_hash ^ 1).is_err());
        let stale = doc.replace("\"version\":1", "\"version\":999");
        assert!(TuModule::from_json(&stale, "v1;refine=0", m.source_hash).is_err());
    }

    #[test]
    fn corruption_is_rejected() {
        let (m, _, _) = extract(SRC, false);
        let doc = m.to_json("v1;refine=0");
        // Truncation.
        assert!(TuModule::from_json(&doc[..doc.len() / 2], "v1;refine=0", m.source_hash).is_err());
        // A dangling class reference inside a summary.
        let crafted = doc.replace("[\"new\",\"Derived\"", "[\"new\",\"Ghost\"");
        assert_ne!(crafted, doc, "test must actually rewrite a step");
        assert!(TuModule::from_json(&crafted, "v1;refine=0", m.source_hash).is_err());
        // Not JSON at all.
        assert!(TuModule::from_json("{]", "v1;refine=0", m.source_hash).is_err());
    }

    #[test]
    fn resolver_reproduces_the_original_summaries() {
        // Self-link: resolving the symbolic summaries against the very
        // program they came from must reproduce them bit for bit.
        for refine in [false, true] {
            let (m, program, summary) = extract(SRC, refine);
            let resolver = SymResolver::new(&program);
            for (fid, f) in program.functions() {
                let record = match f.class {
                    Some(cid) => {
                        let idx = program
                            .class(cid)
                            .methods
                            .iter()
                            .position(|&x| x == fid)
                            .unwrap();
                        let class_ix = cid.index();
                        &m.classes[class_ix].methods[idx].summary
                    }
                    None => {
                        // Records are in id order for free functions.
                        let free_ix = program
                            .functions()
                            .filter(|(_, g)| g.class.is_none())
                            .position(|(gid, _)| gid == fid)
                            .unwrap();
                        &m.free_fns[free_ix].summary
                    }
                };
                let resolved = resolver.resolve(record);
                match (resolved, summary.function(fid)) {
                    (Ok(a), Ok(b)) => assert_eq!(&a, b, "fn {fid:?} refine={refine}"),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("result shape diverged: {a:?} vs {b:?}"),
                }
            }
            let globals = resolver.resolve(&m.globals_summary).unwrap();
            assert_eq!(&globals, summary.globals().unwrap());
        }
    }

    #[test]
    fn type_errors_roundtrip() {
        let src = "class A { public: int x; };\nint main() { A a; return a.ghost; }";
        let (m, _, _) = extract(src, false);
        let doc = m.to_json("fp");
        let back = TuModule::from_json(&doc, "fp", m.source_hash).unwrap();
        assert_eq!(back, m);
        let err = m.free_fns[0].summary.as_ref().unwrap_err();
        assert!(matches!(err.kind(), TypeErrorKind::Lookup(_)));
    }

    #[test]
    fn odr_identity_ignores_location_but_not_text() {
        let header = "class P { public: P() : x(1) { } int get() { return x; } int x; };\n";
        let (m1, _, _) = extract(&format!("{header}int main() {{ P p; return p.get(); }}"), false);
        let (m2, _, _) = extract(&format!("\n\n{header}int use(P* p) {{ return p->get(); }}\nint main() {{ return 0; }}"), false);
        assert!(m1.classes[0].odr_eq(&m2.classes[0]), "same text, different offsets");
        let (m3, _, _) = extract(
            "class P { public: P() : x(2) { } int get() { return x; } int x; };\nint main() { return 0; }",
            false,
        );
        assert!(!m1.classes[0].odr_eq(&m3.classes[0]), "different ctor body");
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_hex(0xaf63_dc4c_8601_ec8c), "af63dc4c8601ec8c");
    }
}
