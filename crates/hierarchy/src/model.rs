//! The semantic program model built from a parsed translation unit.
//!
//! [`Program::build`] resolves names (base classes, member types, enums),
//! detects inheritance cycles and duplicate members, resolves inherited
//! virtualness of methods, and produces a self-contained model that the
//! call-graph builders, the dead-member analysis, and the interpreter all
//! share.

use crate::ids::{ClassId, FuncId};
use crate::intern::{Interner, Symbol};
use ddm_cppfront::ast::{
    Block, ClassKind, CtorInit, DataMemberDecl, FunctionKind, Param, TranslationUnit, Type,
    TypeKind,
};
use ddm_cppfront::Span;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A semantic error found while building the model.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    kind: SemaErrorKind,
    span: Span,
}

impl SemaError {
    fn new(kind: SemaErrorKind, span: Span) -> Self {
        SemaError { kind, span }
    }

    /// The specific failure.
    pub fn kind(&self) -> &SemaErrorKind {
        &self.kind
    }

    /// Where the failure was detected.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl Error for SemaError {}

/// The kinds of semantic errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SemaErrorKind {
    /// A base class name that is not defined.
    UnknownBase {
        /// The derived class.
        class: String,
        /// The missing base name.
        base: String,
    },
    /// A type name that is neither a class nor an enum.
    UnknownType(String),
    /// The inheritance graph contains a cycle.
    InheritanceCycle(String),
    /// Two data members with the same name in one class.
    DuplicateMember {
        /// The class.
        class: String,
        /// The duplicated member name.
        member: String,
    },
    /// A data member whose type is (or contains by value) its own class.
    RecursiveByValueMember {
        /// The class.
        class: String,
        /// The offending member.
        member: String,
    },
}

impl fmt::Display for SemaErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemaErrorKind::UnknownBase { class, base } => {
                write!(f, "class `{class}` derives from unknown base `{base}`")
            }
            SemaErrorKind::UnknownType(name) => write!(f, "unknown type `{name}`"),
            SemaErrorKind::InheritanceCycle(name) => {
                write!(f, "inheritance cycle involving `{name}`")
            }
            SemaErrorKind::DuplicateMember { class, member } => {
                write!(f, "duplicate member `{member}` in class `{class}`")
            }
            SemaErrorKind::RecursiveByValueMember { class, member } => write!(
                f,
                "member `{member}` embeds class `{class}` by value into itself"
            ),
        }
    }
}

/// A resolved direct base-class edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseInfo {
    /// The base class.
    pub id: ClassId,
    /// True for `virtual` inheritance.
    pub is_virtual: bool,
}

/// A resolved data member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberInfo {
    /// Member name.
    pub name: String,
    /// Resolved type (enum names normalized to `int`).
    pub ty: Type,
    /// Whether the member is `volatile` (write-livens, per the paper).
    pub is_volatile: bool,
    /// Source location of the declaration.
    pub span: Span,
}

/// A resolved class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// `class` / `struct` / `union`.
    pub kind: ClassKind,
    /// Direct bases in declaration order.
    pub bases: Vec<BaseInfo>,
    /// Data members in declaration order.
    pub members: Vec<MemberInfo>,
    /// All methods (constructors, destructor, member functions).
    pub methods: Vec<FuncId>,
    /// Source location.
    pub span: Span,
}

/// A resolved function or method.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// Function name (class-qualified display name available via
    /// [`Program::func_display_name`]).
    pub name: String,
    /// Free function, method, constructor or destructor.
    pub kind: FunctionKind,
    /// The class a method belongs to; `None` for free functions.
    pub class: Option<ClassId>,
    /// True if the method is virtual, directly or by overriding a virtual
    /// method inherited from a base class.
    pub is_virtual: bool,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Constructor initializer list (constructors only).
    pub inits: Vec<CtorInit>,
    /// Body; `None` for pure-virtual or library (body-less) declarations.
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A resolved global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Variable name.
    pub name: String,
    /// Resolved type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<ddm_cppfront::ast::Expr>,
    /// Source location.
    pub span: Span,
}

/// The complete, resolved program.
#[derive(Debug, Clone)]
pub struct Program {
    classes: Vec<ClassInfo>,
    functions: Vec<FunctionInfo>,
    globals: Vec<GlobalInfo>,
    /// Enumerator name → value, flattened to global scope (C++98 enums).
    enum_consts: HashMap<String, i64>,
    enum_names: HashSet<String>,
    class_by_name: HashMap<String, ClassId>,
    free_fn_by_name: HashMap<String, FuncId>,
    /// Function names interned in `FuncId` order (so the numbering is
    /// deterministic for a given program); backs the integer-keyed
    /// dispatch cache in [`crate::MemberLookup`].
    interner: Interner,
    fn_name_syms: Vec<Symbol>,
    /// Per class, its direct subclasses — the inverted base relation,
    /// which makes [`Program::subclasses_of`] proportional to the
    /// subtree instead of the whole class table.
    children: Vec<Vec<ClassId>>,
}

impl Program {
    /// Builds a program model from a parsed translation unit.
    ///
    /// # Errors
    ///
    /// Returns a [`SemaError`] for unknown bases/types, inheritance cycles,
    /// duplicate members, and by-value recursive member embedding.
    pub fn build(tu: &TranslationUnit) -> Result<Program, SemaError> {
        let mut enum_consts = HashMap::new();
        let mut enum_names = HashSet::new();
        for e in &tu.enums {
            enum_names.insert(e.name.clone());
            for (n, v) in &e.variants {
                enum_consts.insert(n.clone(), *v);
            }
        }

        let mut class_by_name = HashMap::new();
        for (i, c) in tu.classes.iter().enumerate() {
            class_by_name.insert(c.name.clone(), ClassId(i as u32));
        }

        let mut prog = Program {
            classes: Vec::with_capacity(tu.classes.len()),
            functions: Vec::new(),
            globals: Vec::new(),
            enum_consts,
            enum_names,
            class_by_name,
            free_fn_by_name: HashMap::new(),
            interner: Interner::new(),
            fn_name_syms: Vec::new(),
            children: Vec::new(),
        };

        // Pass 1: classes with resolved bases and members.
        for decl in &tu.classes {
            let mut bases = Vec::new();
            for b in &decl.bases {
                let id = prog.class_by_name.get(&b.name).copied().ok_or_else(|| {
                    SemaError::new(
                        SemaErrorKind::UnknownBase {
                            class: decl.name.clone(),
                            base: b.name.clone(),
                        },
                        b.span,
                    )
                })?;
                bases.push(BaseInfo {
                    id,
                    is_virtual: b.is_virtual,
                });
            }
            let mut seen = HashSet::new();
            let mut members = Vec::new();
            for m in &decl.data_members {
                if !seen.insert(m.name.clone()) {
                    return Err(SemaError::new(
                        SemaErrorKind::DuplicateMember {
                            class: decl.name.clone(),
                            member: m.name.clone(),
                        },
                        m.span,
                    ));
                }
                let ty = prog.resolve_type(&m.ty, m.span)?;
                members.push(MemberInfo {
                    name: m.name.clone(),
                    ty,
                    is_volatile: member_is_volatile(m),
                    span: m.span,
                });
            }
            prog.classes.push(ClassInfo {
                name: decl.name.clone(),
                kind: decl.kind,
                bases,
                members,
                methods: Vec::new(),
                span: decl.span,
            });
        }

        prog.check_inheritance_acyclic()?;
        prog.check_no_by_value_recursion()?;

        // Pass 2: methods (class order, then declaration order) so that
        // virtualness can consult base classes already processed? Bases may
        // appear after derived classes in source; instead resolve direct
        // `virtual` flags first and propagate override-virtualness below.
        for (ci, decl) in tu.classes.iter().enumerate() {
            let class_id = ClassId(ci as u32);
            for m in &decl.methods {
                let ret = prog.resolve_type(&m.ret, m.span)?;
                let params = prog.resolve_params(&m.params)?;
                let fid = FuncId(prog.functions.len() as u32);
                prog.functions.push(FunctionInfo {
                    name: m.name.clone(),
                    kind: m.kind,
                    class: Some(class_id),
                    is_virtual: m.is_virtual,
                    ret,
                    params,
                    inits: m.inits.clone(),
                    body: m.body.clone(),
                    span: m.span,
                });
                prog.classes[ci].methods.push(fid);
            }
        }

        // Pass 3: free functions.
        for f in &tu.functions {
            let ret = prog.resolve_type(&f.ret, f.span)?;
            let params = prog.resolve_params(&f.params)?;
            let fid = FuncId(prog.functions.len() as u32);
            prog.free_fn_by_name.insert(f.name.clone(), fid);
            prog.functions.push(FunctionInfo {
                name: f.name.clone(),
                kind: FunctionKind::Free,
                class: None,
                is_virtual: false,
                ret,
                params,
                inits: Vec::new(),
                body: f.body.clone(),
                span: f.span,
            });
        }

        // Pass 4: globals.
        for g in &tu.globals {
            let ty = prog.resolve_type(&g.ty, g.span)?;
            prog.globals.push(GlobalInfo {
                name: g.name.clone(),
                ty,
                init: g.init.clone(),
                span: g.span,
            });
        }

        prog.propagate_virtualness();
        prog.build_derived_indexes();
        Ok(prog)
    }

    /// Assembles a program directly from already-resolved parts. Used by
    /// the TU linker, which merges per-TU models that each went through
    /// [`Program::build`]: types are resolved, ids are consistent, and
    /// virtualness was propagated per TU (identical to whole-program
    /// propagation, because a class definition always has its complete
    /// ancestry in its own TU under the header model). The name maps are
    /// recomputed here so they cannot disagree with the vectors.
    pub(crate) fn assemble(
        classes: Vec<ClassInfo>,
        functions: Vec<FunctionInfo>,
        globals: Vec<GlobalInfo>,
        enum_consts: HashMap<String, i64>,
        enum_names: HashSet<String>,
    ) -> Program {
        let class_by_name = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ClassId(i as u32)))
            .collect();
        let free_fn_by_name = functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class.is_none())
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        let mut prog = Program {
            classes,
            functions,
            globals,
            enum_consts,
            enum_names,
            class_by_name,
            free_fn_by_name,
            interner: Interner::new(),
            fn_name_syms: Vec::new(),
            children: Vec::new(),
        };
        prog.build_derived_indexes();
        prog
    }

    /// Builds the derived lookup structures both construction paths
    /// ([`Program::build`] and [`Program::assemble`]) share: the
    /// function-name interner and the direct-subclass adjacency.
    fn build_derived_indexes(&mut self) {
        let mut interner = Interner::new();
        self.fn_name_syms = self
            .functions
            .iter()
            .map(|f| interner.intern(&f.name))
            .collect();
        self.interner = interner;
        let mut children = vec![Vec::new(); self.classes.len()];
        for (i, c) in self.classes.iter().enumerate() {
            for b in &c.bases {
                children[b.id.index()].push(ClassId(i as u32));
            }
        }
        self.children = children;
    }

    /// Resolves a syntactic type: checks named types exist, rewrites enum
    /// names to `int`.
    fn resolve_type(&self, ty: &Type, span: Span) -> Result<Type, SemaError> {
        let mut out = ty.clone();
        self.resolve_type_mut(&mut out, span)?;
        Ok(out)
    }

    fn resolve_type_mut(&self, ty: &mut Type, span: Span) -> Result<(), SemaError> {
        match &mut ty.kind {
            TypeKind::Named(name) => {
                if self.enum_names.contains(name) {
                    ty.kind = TypeKind::Int;
                } else if !self.class_by_name.contains_key(name) {
                    return Err(SemaError::new(
                        SemaErrorKind::UnknownType(name.clone()),
                        span,
                    ));
                }
                Ok(())
            }
            TypeKind::Pointer(inner) | TypeKind::Reference(inner) => {
                self.resolve_type_mut(inner, span)
            }
            TypeKind::Array(inner, _) => self.resolve_type_mut(inner, span),
            TypeKind::Function(ft) => {
                self.resolve_type_mut(&mut ft.ret, span)?;
                for p in &mut ft.params {
                    self.resolve_type_mut(p, span)?;
                }
                Ok(())
            }
            TypeKind::MemberPointer { class, pointee } => {
                if !self.class_by_name.contains_key(class) {
                    return Err(SemaError::new(
                        SemaErrorKind::UnknownType(class.clone()),
                        span,
                    ));
                }
                self.resolve_type_mut(pointee, span)
            }
            _ => Ok(()),
        }
    }

    fn resolve_params(&self, params: &[Param]) -> Result<Vec<Param>, SemaError> {
        params
            .iter()
            .map(|p| {
                Ok(Param {
                    name: p.name.clone(),
                    ty: self.resolve_type(&p.ty, p.span)?,
                    span: p.span,
                })
            })
            .collect()
    }

    fn check_inheritance_acyclic(&self) -> Result<(), SemaError> {
        // Colors: 0 = unvisited, 1 = on stack, 2 = done.
        let mut color = vec![0u8; self.classes.len()];
        for start in 0..self.classes.len() {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&(node, edge)) = stack.last() {
                if edge < self.classes[node].bases.len() {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let next = self.classes[node].bases[edge].id.index();
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            return Err(SemaError::new(
                                SemaErrorKind::InheritanceCycle(self.classes[next].name.clone()),
                                self.classes[next].span,
                            ))
                        }
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    fn check_no_by_value_recursion(&self) -> Result<(), SemaError> {
        for (ci, class) in self.classes.iter().enumerate() {
            for m in &class.members {
                if let Some(embedded) = by_value_class(&m.ty) {
                    if let Some(&eid) = self.class_by_name.get(embedded) {
                        if self.embeds_by_value(eid, ClassId(ci as u32), &mut HashSet::new()) {
                            return Err(SemaError::new(
                                SemaErrorKind::RecursiveByValueMember {
                                    class: class.name.clone(),
                                    member: m.name.clone(),
                                },
                                m.span,
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// True if an object of `outer` transitively contains an object of
    /// `target` by value (through members or base classes), or is `target`.
    fn embeds_by_value(
        &self,
        outer: ClassId,
        target: ClassId,
        seen: &mut HashSet<ClassId>,
    ) -> bool {
        if outer == target {
            return true;
        }
        if !seen.insert(outer) {
            return false;
        }
        let class = &self.classes[outer.index()];
        for b in &class.bases {
            if self.embeds_by_value(b.id, target, seen) {
                return true;
            }
        }
        for m in &class.members {
            if let Some(name) = by_value_class(&m.ty) {
                if let Some(&mid) = self.class_by_name.get(name) {
                    if self.embeds_by_value(mid, target, seen) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Marks methods virtual when they override a virtual method of any
    /// (transitive) base class, iterating to a fixpoint over the hierarchy.
    fn propagate_virtualness(&mut self) {
        let order = self.topo_order();
        for &cid in &order {
            let method_ids = self.classes[cid.index()].methods.clone();
            for fid in method_ids {
                if self.functions[fid.index()].is_virtual
                    || self.functions[fid.index()].kind != FunctionKind::Method
                {
                    continue;
                }
                let name = self.functions[fid.index()].name.clone();
                if self.base_has_virtual_method(cid, &name) {
                    self.functions[fid.index()].is_virtual = true;
                }
            }
            // Destructors: virtual if any base destructor is virtual.
            let dtor = self.classes[cid.index()]
                .methods
                .iter()
                .copied()
                .find(|f| self.functions[f.index()].kind == FunctionKind::Destructor);
            if let Some(d) = dtor {
                if !self.functions[d.index()].is_virtual && self.base_has_virtual_dtor(cid) {
                    self.functions[d.index()].is_virtual = true;
                }
            }
        }
    }

    fn base_has_virtual_method(&self, class: ClassId, name: &str) -> bool {
        let mut stack: Vec<ClassId> = self.classes[class.index()]
            .bases
            .iter()
            .map(|b| b.id)
            .collect();
        let mut seen = HashSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &fid in &self.classes[c.index()].methods {
                let f = &self.functions[fid.index()];
                if f.kind == FunctionKind::Method && f.name == name && f.is_virtual {
                    return true;
                }
            }
            stack.extend(self.classes[c.index()].bases.iter().map(|b| b.id));
        }
        false
    }

    fn base_has_virtual_dtor(&self, class: ClassId) -> bool {
        let mut stack: Vec<ClassId> = self.classes[class.index()]
            .bases
            .iter()
            .map(|b| b.id)
            .collect();
        let mut seen = HashSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &fid in &self.classes[c.index()].methods {
                let f = &self.functions[fid.index()];
                if f.kind == FunctionKind::Destructor && f.is_virtual {
                    return true;
                }
            }
            stack.extend(self.classes[c.index()].bases.iter().map(|b| b.id));
        }
        false
    }

    /// Classes in an order where bases come before derived classes.
    pub fn topo_order(&self) -> Vec<ClassId> {
        let mut order = Vec::with_capacity(self.classes.len());
        let mut done = vec![false; self.classes.len()];
        fn visit(p: &Program, c: usize, done: &mut [bool], order: &mut Vec<ClassId>) {
            if done[c] {
                return;
            }
            done[c] = true;
            for b in &p.classes[c].bases {
                visit(p, b.id.index(), done, order);
            }
            order.push(ClassId(c as u32));
        }
        for c in 0..self.classes.len() {
            visit(self, c, &mut done, &mut order);
        }
        order
    }

    // ----- accessors -------------------------------------------------------

    /// All classes.
    pub fn classes(&self) -> impl ExactSizeIterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// The class with the given id.
    pub fn class(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.index()]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// All functions (free and methods).
    pub fn functions(&self) -> impl ExactSizeIterator<Item = (FuncId, &FunctionInfo)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The function with the given id.
    pub fn function(&self, id: FuncId) -> &FunctionInfo {
        &self.functions[id.index()]
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a free function by name.
    pub fn free_function(&self, name: &str) -> Option<FuncId> {
        self.free_fn_by_name.get(name).copied()
    }

    /// The interned symbol of the function's (unqualified) name.
    pub fn fn_name_symbol(&self, id: FuncId) -> Symbol {
        self.fn_name_syms[id.index()]
    }

    /// The function-name interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The `main` function, if present.
    pub fn main_function(&self) -> Option<FuncId> {
        self.free_function("main")
    }

    /// All global variables.
    pub fn globals(&self) -> &[GlobalInfo] {
        &self.globals
    }

    /// The value of an enumerator, if `name` is one.
    pub fn enum_const(&self, name: &str) -> Option<i64> {
        self.enum_consts.get(name).copied()
    }

    /// True if `name` names an enum type.
    pub fn is_enum_type(&self, name: &str) -> bool {
        self.enum_names.contains(name)
    }

    /// Human-readable function name, `Class::method` for methods.
    pub fn func_display_name(&self, id: FuncId) -> String {
        let f = &self.functions[id.index()];
        match f.class {
            Some(c) => format!("{}::{}", self.classes[c.index()].name, f.name),
            None => f.name.clone(),
        }
    }

    /// Finds a method declared *directly* in `class` by name.
    pub fn direct_method(&self, class: ClassId, name: &str) -> Option<FuncId> {
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&f| {
                let fi = &self.functions[f.index()];
                fi.name == name && fi.kind != FunctionKind::Constructor
            })
    }

    /// The constructors of `class`.
    pub fn constructors(&self, class: ClassId) -> Vec<FuncId> {
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .filter(|&f| self.functions[f.index()].kind == FunctionKind::Constructor)
            .collect()
    }

    /// The destructor of `class`, if declared.
    pub fn destructor(&self, class: ClassId) -> Option<FuncId> {
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&f| self.functions[f.index()].kind == FunctionKind::Destructor)
    }

    /// True if `sub` equals `sup` or transitively derives from it.
    pub fn derives_from(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        self.classes[sub.index()]
            .bases
            .iter()
            .any(|b| self.derives_from(b.id, sup))
    }

    /// All transitive subclasses of `class`, including itself, in
    /// ascending id order.
    ///
    /// Walks the inverted base relation, so the cost is proportional to
    /// the subtree (plus a sort), not to the whole class table — the
    /// old scan-every-class form made dispatch-candidate resolution
    /// quadratic on deep generated hierarchies. The output is exactly
    /// what the scan produced: reflexive, deduplicated, ascending.
    pub fn subclasses_of(&self, class: ClassId) -> Vec<ClassId> {
        let mut seen = crate::bitset::DenseBitSet::with_capacity(self.classes.len());
        let mut out = Vec::new();
        let mut stack = vec![class];
        seen.insert(class.0);
        while let Some(c) = stack.pop() {
            out.push(c);
            for &d in &self.children[c.index()] {
                if seen.insert(d.0) {
                    stack.push(d);
                }
            }
        }
        out.sort_unstable_by_key(|c| c.index());
        out
    }

    /// All direct and transitive base classes of `class` (no duplicates,
    /// excluding `class` itself).
    pub fn ancestors_of(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<ClassId> = self.classes[class.index()]
            .bases
            .iter()
            .map(|b| b.id)
            .collect();
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                out.push(c);
                stack.extend(self.classes[c.index()].bases.iter().map(|b| b.id));
            }
        }
        out
    }

    /// Total number of data members across all classes.
    pub fn total_data_members(&self) -> usize {
        self.classes.iter().map(|c| c.members.len()).sum()
    }
}

/// If `ty` embeds a class by value (directly or through arrays), its name.
pub fn by_value_class(ty: &Type) -> Option<&str> {
    match &ty.kind {
        TypeKind::Named(n) => Some(n),
        TypeKind::Array(inner, _) => by_value_class(inner),
        _ => None,
    }
}

fn member_is_volatile(m: &DataMemberDecl) -> bool {
    fn vol(ty: &Type) -> bool {
        if ty.is_volatile {
            return true;
        }
        match &ty.kind {
            TypeKind::Array(inner, _) => vol(inner),
            _ => false,
        }
    }
    vol(&m.ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn build(src: &str) -> Program {
        let tu = parse(src).expect("parse");
        Program::build(&tu).expect("sema")
    }

    #[test]
    fn builds_simple_hierarchy() {
        let p = build(
            "class A { public: int x; virtual int f() { return x; } };\n\
             class B : public A { public: int y; virtual int f() { return y; } };\n\
             int main() { B b; return b.f(); }",
        );
        assert_eq!(p.class_count(), 2);
        let b = p.class_by_name("B").unwrap();
        assert_eq!(p.class(b).bases.len(), 1);
        assert!(!p.class(b).bases[0].is_virtual);
        assert!(p.main_function().is_some());
    }

    #[test]
    fn enum_types_normalize_to_int() {
        let p = build(
            "enum Color { Red, Green };\n\
             class A { public: Color c; };\n\
             int main() { A a; a.c = Green; return a.c; }",
        );
        let a = p.class_by_name("A").unwrap();
        assert_eq!(p.class(a).members[0].ty, Type::int());
        assert_eq!(p.enum_const("Green"), Some(1));
        assert!(p.is_enum_type("Color"));
    }

    #[test]
    fn override_inherits_virtualness() {
        let p = build(
            "class A { public: virtual int f() { return 0; } virtual ~A() { } };\n\
             class B : public A { public: int f() { return 1; } ~B() { } };\n\
             int main() { return 0; }",
        );
        let b = p.class_by_name("B").unwrap();
        let f = p.direct_method(b, "f").unwrap();
        assert!(p.function(f).is_virtual, "override must become virtual");
        let d = p.destructor(b).unwrap();
        assert!(
            p.function(d).is_virtual,
            "dtor override must become virtual"
        );
    }

    #[test]
    fn non_override_stays_non_virtual() {
        let p = build(
            "class A { public: int f() { return 0; } };\n\
             class B : public A { public: int g() { return 1; } };\n\
             int main() { return 0; }",
        );
        let b = p.class_by_name("B").unwrap();
        let g = p.direct_method(b, "g").unwrap();
        assert!(!p.function(g).is_virtual);
    }

    #[test]
    fn unknown_base_is_error() {
        let tu = parse("class B : public Missing { }; int main() { return 0; }").unwrap();
        let err = Program::build(&tu).unwrap_err();
        assert!(matches!(err.kind(), SemaErrorKind::UnknownBase { .. }));
        let tu =
            parse("class Missing; class B : public Missing { }; int main() { return 0; }").unwrap();
        let err = Program::build(&tu).unwrap_err();
        assert!(matches!(err.kind(), SemaErrorKind::UnknownBase { .. }));
    }

    #[test]
    fn unknown_member_type_is_error() {
        let tu =
            parse("class Ghost; class A { public: Ghost g; }; int main() { return 0; }").unwrap();
        let err = Program::build(&tu).unwrap_err();
        assert!(matches!(err.kind(), SemaErrorKind::UnknownType(_)));
    }

    #[test]
    fn pointer_to_undefined_class_is_ok() {
        // Pointers to forward-declared classes are fine in C++; we only
        // require the name to be known.
        let tu =
            parse("class Node { public: Node* next; int v; }; int main() { return 0; }").unwrap();
        assert!(Program::build(&tu).is_ok());
    }

    #[test]
    fn duplicate_member_is_error() {
        let tu = parse("class A { public: int x; int x; }; int main() { return 0; }").unwrap();
        let err = Program::build(&tu).unwrap_err();
        assert!(matches!(err.kind(), SemaErrorKind::DuplicateMember { .. }));
    }

    #[test]
    fn by_value_self_embedding_is_error() {
        let tu = parse("class A { public: A a; }; int main() { return 0; }").unwrap();
        let err = Program::build(&tu).unwrap_err();
        assert!(matches!(
            err.kind(),
            SemaErrorKind::RecursiveByValueMember { .. }
        ));
    }

    #[test]
    fn mutual_by_value_embedding_is_error() {
        let tu = parse(
            "class B; class A { public: B* pb; }; class B { public: A a; };\n\
             class C { public: C* self; };\n\
             int main() { return 0; }",
        )
        .unwrap();
        assert!(Program::build(&tu).is_ok());
        let tu2 = parse(
            "class B; class A { public: B b; }; class B { public: A a; };\n\
             int main() { return 0; }",
        );
        // `class A { B b; }` with B defined later parses; sema must reject.
        let tu2 = tu2.unwrap();
        assert!(Program::build(&tu2).is_err());
    }

    #[test]
    fn derives_from_and_subclasses() {
        let p = build(
            "class A { }; class B : public A { }; class C : public B { }; class D { };\n\
             int main() { return 0; }",
        );
        let a = p.class_by_name("A").unwrap();
        let c = p.class_by_name("C").unwrap();
        let d = p.class_by_name("D").unwrap();
        assert!(p.derives_from(c, a));
        assert!(!p.derives_from(a, c));
        assert!(!p.derives_from(d, a));
        assert_eq!(p.subclasses_of(a).len(), 3);
        assert_eq!(p.ancestors_of(c).len(), 2);
    }

    #[test]
    fn subclasses_match_the_brute_force_scan() {
        // Diamond plus a chain hanging off one arm, declared out of
        // id order so the ascending-output contract is exercised.
        let p = build(
            "class Top { };\n\
             class R : public Top { };\n\
             class L : public Top { };\n\
             class D : public L, public R { };\n\
             class E : public D { };\n\
             class Apart { };\n\
             int main() { return 0; }",
        );
        for ci in 0..p.class_count() {
            let c = ClassId(ci as u32);
            let brute: Vec<ClassId> = (0..p.class_count())
                .map(|i| ClassId(i as u32))
                .filter(|&s| p.derives_from(s, c))
                .collect();
            assert_eq!(p.subclasses_of(c), brute, "class {}", p.class(c).name);
        }
        let top = p.class_by_name("Top").unwrap();
        assert_eq!(p.subclasses_of(top).len(), 5, "diamond counted once");
    }

    #[test]
    fn function_name_symbols_round_trip() {
        let p = build(
            "class A { public: int f() { return 0; } };\n\
             class B { public: int f() { return 1; } };\n\
             int g() { return 2; } int main() { return 0; }",
        );
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        let fa = p.direct_method(a, "f").unwrap();
        let fb = p.direct_method(b, "f").unwrap();
        assert_eq!(
            p.fn_name_symbol(fa),
            p.fn_name_symbol(fb),
            "same name, same symbol"
        );
        assert_ne!(
            p.fn_name_symbol(fa),
            p.fn_name_symbol(p.main_function().unwrap())
        );
        assert_eq!(p.interner().resolve(p.fn_name_symbol(fa)), "f");
        assert_eq!(p.interner().lookup("g"), Some(p.fn_name_symbol(p.free_function("g").unwrap())));
    }

    #[test]
    fn volatile_member_detected() {
        let p = build("class A { public: volatile int flag; int x; }; int main() { return 0; }");
        let a = p.class_by_name("A").unwrap();
        assert!(p.class(a).members[0].is_volatile);
        assert!(!p.class(a).members[1].is_volatile);
    }

    #[test]
    fn topo_order_puts_bases_first() {
        let p = build(
            "class C : public B { }; class B : public A { }; class A { };\n\
             int main() { return 0; }",
        );
        let order = p.topo_order();
        let pos = |name: &str| order.iter().position(|&c| p.class(c).name == name).unwrap();
        assert!(pos("A") < pos("B"));
        assert!(pos("B") < pos("C"));
    }

    #[test]
    fn func_display_names() {
        let p = build("class A { public: int f() { return 0; } }; int g() { return 1; } int main() { return 0; }");
        let a = p.class_by_name("A").unwrap();
        let f = p.direct_method(a, "f").unwrap();
        assert_eq!(p.func_display_name(f), "A::f");
        let g = p.free_function("g").unwrap();
        assert_eq!(p.func_display_name(g), "g");
    }
}
