//! Compact binary codec for [`TuModule`]s: the payload format of the
//! persisted analysis snapshot (`analysis.snap`).
//!
//! The JSON codec in [`module`](crate::module) stays the per-TU cache
//! format — it is self-describing and diff-friendly, which is what you
//! want for individually invalidated entries. The snapshot, by
//! contrast, is read as one blob on every warm start, and parsing ~64
//! TU documents of JSON dominated the warm path (the measured probe was
//! ~17 ms of an ~18.5 ms warm run). This codec decodes the same
//! modules in about a milliseconde-scale pass: length-prefixed fields,
//! little-endian fixed-width integers, one tag byte per enum variant.
//!
//! Integrity is the *container's* job: the snapshot envelope carries a
//! version, a configuration fingerprint, and a whole-payload FNV-1a
//! checksum, so the decoder here only defends against structural
//! nonsense (truncation, bad tags, non-UTF-8) and does not re-run
//! [`TuModule::validate`] — a payload that passes the checksum is the
//! same bytes a validated module produced.
//!
//! Encoding is deterministic: a module encodes to the same bytes on
//! every run (all containers are ordered `Vec`s), which is what lets
//! concurrent snapshot writers publish byte-identical files.

use crate::module::{
    ClassRecord, EnumRecord, FreeFnRecord, GlobalRecord, MemberRecord, MethodRecord, SymCgStep,
    SymFnSummary, SymFunc, SymLiveStep, SymMember, SymResult, TuModule,
};
use crate::typewalk::{TypeError, TypeErrorKind};
use crate::LookupError;
use ddm_cppfront::ast::{ClassKind, FnType, FunctionKind, Type, TypeKind};
use ddm_cppfront::Span;
use std::sync::Arc;

/// Version of the binary module encoding. Part of the snapshot
/// fingerprint: bumping it invalidates every existing snapshot.
pub const BINMOD_FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------

/// Append-only little-endian byte writer (snapshot serialization).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 / 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length (`u32`-prefixed; lengths above
    /// `u32::MAX` cannot occur in practice and would be a bug).
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("collection length fits in u32"));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a raw, length-prefixed byte blob.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked reader over a serialized buffer. Every accessor
/// returns `Err` instead of panicking, so a truncated or corrupt
/// snapshot degrades to "invalidate and recompute".
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {} (wanted {n} more)", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting anything but 0 / 1.
    pub fn get_bool(&mut self) -> Result<bool, String> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool byte {other}")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, String> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a collection length, bounding it by the bytes remaining so
    /// a corrupt length cannot trigger a huge pre-allocation.
    pub fn get_len(&mut self) -> Result<usize, String> {
        let n = self.get_u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(format!("length {n} exceeds remaining payload"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, String> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    /// Reads a raw, length-prefixed byte blob.
    pub fn get_blob(&mut self) -> Result<&'a [u8], String> {
        let n = self.get_len()?;
        self.take(n)
    }
}

// ---------------------------------------------------------------------
// Module encoding
// ---------------------------------------------------------------------

/// Serializes one module into `w`. The inverse of [`decode_module`].
pub fn encode_module(m: &TuModule, w: &mut ByteWriter) {
    w.put_str(&m.file);
    w.put_u64(m.source_hash);
    w.put_len(m.classes.len());
    for c in &m.classes {
        encode_class(c, w);
    }
    encode_module_tail(m, w);
}

/// Serializes a whole module list with cross-TU class-record
/// deduplication: each distinct class record (by encoded bytes) is
/// stored once in a table, and modules reference it by index. Class
/// records come from shared headers, so in a real project almost every
/// TU repeats the same ones — the table typically shrinks the encoding
/// severalfold, which is what makes the analysis snapshot cheap to
/// read and rewrite on every incremental run. The inverse of
/// [`decode_modules`]. Deterministic: the table is in first-appearance
/// order.
pub fn encode_modules(modules: &[TuModule], w: &mut ByteWriter) {
    let mut index: std::collections::HashMap<Vec<u8>, u32> = std::collections::HashMap::new();
    // Records decoded from a snapshot share one `Arc` per distinct
    // class, so a pointer hit skips re-encoding the record just to
    // discover bytes the table already holds. Distinct allocations
    // with equal bytes still merge through `index`.
    let mut by_ptr: std::collections::HashMap<*const ClassRecord, u32> =
        std::collections::HashMap::new();
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    let mut refs: Vec<Vec<u32>> = Vec::with_capacity(modules.len());
    for m in modules {
        let mut ids = Vec::with_capacity(m.classes.len());
        for c in &m.classes {
            if let Some(&id) = by_ptr.get(&Arc::as_ptr(c)) {
                ids.push(id);
                continue;
            }
            let mut cw = ByteWriter::new();
            encode_class(c, &mut cw);
            let blob = cw.into_bytes();
            let next = blobs.len() as u32;
            let id = match index.entry(blob) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    blobs.push(e.key().clone());
                    e.insert(next);
                    next
                }
            };
            by_ptr.insert(Arc::as_ptr(c), id);
            ids.push(id);
        }
        refs.push(ids);
    }
    w.put_len(blobs.len());
    for b in &blobs {
        w.put_blob(b);
    }
    w.put_len(modules.len());
    for (m, ids) in modules.iter().zip(&refs) {
        w.put_str(&m.file);
        w.put_u64(m.source_hash);
        w.put_len(ids.len());
        for &id in ids {
            w.put_u32(id);
        }
        encode_module_tail(m, w);
    }
}

/// Deserializes a module list written by [`encode_modules`].
///
/// # Errors
///
/// Any structural failure, including a class-table index out of range
/// or a table entry with trailing bytes.
pub fn decode_modules(r: &mut ByteReader<'_>) -> Result<Vec<TuModule>, String> {
    let table: Vec<Arc<ClassRecord>> = (0..r.get_len()?)
        .map(|_| {
            let blob = r.get_blob()?;
            let mut cr = ByteReader::new(blob);
            let class = decode_class(&mut cr)?;
            if !cr.is_at_end() {
                return Err("trailing bytes in class-table entry".to_string());
            }
            Ok(Arc::new(class))
        })
        .collect::<Result<_, _>>()?;
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let file = r.get_str()?;
        let source_hash = r.get_u64()?;
        let classes = (0..r.get_len()?)
            .map(|_| {
                let id = r.get_u32()? as usize;
                table
                    .get(id)
                    .cloned()
                    .ok_or_else(|| format!("class-table index {id} out of range"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let (enums, globals, free_fns, globals_summary) = decode_module_tail(r)?;
        out.push(TuModule {
            file,
            source_hash,
            classes,
            enums,
            globals,
            free_fns,
            globals_summary,
        });
    }
    Ok(out)
}

/// Everything in a module after the class records.
fn encode_module_tail(m: &TuModule, w: &mut ByteWriter) {
    w.put_len(m.enums.len());
    for e in &m.enums {
        w.put_str(&e.name);
        w.put_len(e.variants.len());
        for (name, value) in &e.variants {
            w.put_str(name);
            w.put_i64(*value);
        }
        w.put_u32(e.line);
        w.put_u32(e.col);
    }
    w.put_len(m.globals.len());
    for g in &m.globals {
        w.put_str(&g.name);
        encode_type(&g.ty, w);
        w.put_u32(g.line);
        w.put_u32(g.col);
    }
    w.put_len(m.free_fns.len());
    for f in &m.free_fns {
        w.put_str(&f.name);
        w.put_u32(f.arity);
        w.put_bool(f.has_body);
        w.put_u64(f.body_fp);
        w.put_u32(f.line);
        w.put_u32(f.col);
        encode_sym_result(&f.summary, w);
    }
    encode_sym_result(&m.globals_summary, w);
}

/// Deserializes one module from `r`.
///
/// # Errors
///
/// Any structural failure (truncation, bad tag, non-UTF-8). Envelope
/// and integrity checks are the snapshot container's responsibility.
pub fn decode_module(r: &mut ByteReader<'_>) -> Result<TuModule, String> {
    let file = r.get_str()?;
    let source_hash = r.get_u64()?;
    let classes = (0..r.get_len()?)
        .map(|_| decode_class(r).map(Arc::new))
        .collect::<Result<Vec<_>, _>>()?;
    let (enums, globals, free_fns, globals_summary) = decode_module_tail(r)?;
    Ok(TuModule {
        file,
        source_hash,
        classes,
        enums,
        globals,
        free_fns,
        globals_summary,
    })
}

type ModuleTail = (
    Vec<EnumRecord>,
    Vec<GlobalRecord>,
    Vec<FreeFnRecord>,
    SymResult,
);

fn decode_module_tail(r: &mut ByteReader<'_>) -> Result<ModuleTail, String> {
    let enums = (0..r.get_len()?)
        .map(|_| {
            let name = r.get_str()?;
            let variants = (0..r.get_len()?)
                .map(|_| Ok::<_, String>((r.get_str()?, r.get_i64()?)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, String>(EnumRecord {
                name,
                variants,
                line: r.get_u32()?,
                col: r.get_u32()?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let globals = (0..r.get_len()?)
        .map(|_| {
            Ok::<_, String>(GlobalRecord {
                name: r.get_str()?,
                ty: decode_type(r)?,
                line: r.get_u32()?,
                col: r.get_u32()?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let free_fns = (0..r.get_len()?)
        .map(|_| {
            Ok::<_, String>(FreeFnRecord {
                name: r.get_str()?,
                arity: r.get_u32()?,
                has_body: r.get_bool()?,
                body_fp: r.get_u64()?,
                line: r.get_u32()?,
                col: r.get_u32()?,
                summary: decode_sym_result(r)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let globals_summary = decode_sym_result(r)?;
    Ok((enums, globals, free_fns, globals_summary))
}

fn encode_class(c: &ClassRecord, w: &mut ByteWriter) {
    w.put_str(&c.name);
    w.put_u8(match c.kind {
        ClassKind::Class => 0,
        ClassKind::Struct => 1,
        ClassKind::Union => 2,
    });
    w.put_len(c.bases.len());
    for (name, is_virtual) in &c.bases {
        w.put_str(name);
        w.put_bool(*is_virtual);
    }
    w.put_len(c.members.len());
    for m in &c.members {
        w.put_str(&m.name);
        encode_type(&m.ty, w);
        w.put_bool(m.is_volatile);
    }
    w.put_len(c.methods.len());
    for m in &c.methods {
        w.put_str(&m.name);
        w.put_u8(fn_kind_tag(m.kind));
        w.put_bool(m.is_virtual);
        w.put_u32(m.arity);
        w.put_bool(m.has_body);
        w.put_u64(m.body_fp);
        w.put_bool(m.has_inits);
        w.put_u32(m.line);
        w.put_u32(m.col);
        encode_sym_result(&m.summary, w);
    }
    w.put_u32(c.line);
    w.put_u32(c.col);
}

fn decode_class(r: &mut ByteReader<'_>) -> Result<ClassRecord, String> {
    let name = r.get_str()?;
    let kind = match r.get_u8()? {
        0 => ClassKind::Class,
        1 => ClassKind::Struct,
        2 => ClassKind::Union,
        other => return Err(format!("bad class kind tag {other}")),
    };
    let bases = (0..r.get_len()?)
        .map(|_| Ok::<_, String>((r.get_str()?, r.get_bool()?)))
        .collect::<Result<Vec<_>, _>>()?;
    let members = (0..r.get_len()?)
        .map(|_| {
            Ok::<_, String>(MemberRecord {
                name: r.get_str()?,
                ty: decode_type(r)?,
                is_volatile: r.get_bool()?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let methods = (0..r.get_len()?)
        .map(|_| {
            Ok::<_, String>(MethodRecord {
                name: r.get_str()?,
                kind: fn_kind_from_tag(r.get_u8()?)?,
                is_virtual: r.get_bool()?,
                arity: r.get_u32()?,
                has_body: r.get_bool()?,
                body_fp: r.get_u64()?,
                has_inits: r.get_bool()?,
                line: r.get_u32()?,
                col: r.get_u32()?,
                summary: decode_sym_result(r)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ClassRecord {
        name,
        kind,
        bases,
        members,
        methods,
        line: r.get_u32()?,
        col: r.get_u32()?,
    })
}

fn fn_kind_tag(kind: FunctionKind) -> u8 {
    match kind {
        FunctionKind::Free => 0,
        FunctionKind::Method => 1,
        FunctionKind::Constructor => 2,
        FunctionKind::Destructor => 3,
    }
}

fn fn_kind_from_tag(tag: u8) -> Result<FunctionKind, String> {
    match tag {
        0 => Ok(FunctionKind::Free),
        1 => Ok(FunctionKind::Method),
        2 => Ok(FunctionKind::Constructor),
        3 => Ok(FunctionKind::Destructor),
        other => Err(format!("bad function kind tag {other}")),
    }
}

fn encode_type(ty: &Type, w: &mut ByteWriter) {
    let flags = u8::from(ty.is_const) | (u8::from(ty.is_volatile) << 1);
    match &ty.kind {
        TypeKind::Void => w.put_u8(0),
        TypeKind::Bool => w.put_u8(1),
        TypeKind::Char => w.put_u8(2),
        TypeKind::Short => w.put_u8(3),
        TypeKind::Int => w.put_u8(4),
        TypeKind::Long => w.put_u8(5),
        TypeKind::Float => w.put_u8(6),
        TypeKind::Double => w.put_u8(7),
        TypeKind::Named(_) => w.put_u8(8),
        TypeKind::Pointer(_) => w.put_u8(9),
        TypeKind::Reference(_) => w.put_u8(10),
        TypeKind::Array(..) => w.put_u8(11),
        TypeKind::Function(_) => w.put_u8(12),
        TypeKind::MemberPointer { .. } => w.put_u8(13),
    }
    w.put_u8(flags);
    match &ty.kind {
        TypeKind::Named(n) => w.put_str(n),
        TypeKind::Pointer(inner) | TypeKind::Reference(inner) => encode_type(inner, w),
        TypeKind::Array(inner, n) => {
            encode_type(inner, w);
            w.put_u64(*n as u64);
        }
        TypeKind::Function(ft) => {
            encode_type(&ft.ret, w);
            w.put_len(ft.params.len());
            for p in &ft.params {
                encode_type(p, w);
            }
        }
        TypeKind::MemberPointer { class, pointee } => {
            w.put_str(class);
            encode_type(pointee, w);
        }
        _ => {}
    }
}

fn decode_type(r: &mut ByteReader<'_>) -> Result<Type, String> {
    let tag = r.get_u8()?;
    let flags = r.get_u8()?;
    if flags > 3 {
        return Err(format!("bad type qualifier flags {flags}"));
    }
    let kind = match tag {
        0 => TypeKind::Void,
        1 => TypeKind::Bool,
        2 => TypeKind::Char,
        3 => TypeKind::Short,
        4 => TypeKind::Int,
        5 => TypeKind::Long,
        6 => TypeKind::Float,
        7 => TypeKind::Double,
        8 => TypeKind::Named(r.get_str()?),
        9 => TypeKind::Pointer(Box::new(decode_type(r)?)),
        10 => TypeKind::Reference(Box::new(decode_type(r)?)),
        11 => {
            let inner = decode_type(r)?;
            let n = usize::try_from(r.get_u64()?)
                .map_err(|_| "array length out of range".to_string())?;
            TypeKind::Array(Box::new(inner), n)
        }
        12 => {
            let ret = decode_type(r)?;
            let params = (0..r.get_len()?)
                .map(|_| decode_type(r))
                .collect::<Result<Vec<_>, _>>()?;
            TypeKind::Function(Box::new(FnType { ret, params }))
        }
        13 => TypeKind::MemberPointer {
            class: r.get_str()?,
            pointee: Box::new(decode_type(r)?),
        },
        other => return Err(format!("bad type tag {other}")),
    };
    Ok(Type {
        kind,
        is_const: flags & 1 != 0,
        is_volatile: flags & 2 != 0,
    })
}

fn encode_sym_func(f: &SymFunc, w: &mut ByteWriter) {
    match f {
        SymFunc::Free(name) => {
            w.put_u8(0);
            w.put_str(name);
        }
        SymFunc::Method { class, index } => {
            w.put_u8(1);
            w.put_str(class);
            w.put_u32(*index);
        }
    }
}

fn decode_sym_func(r: &mut ByteReader<'_>) -> Result<SymFunc, String> {
    match r.get_u8()? {
        0 => Ok(SymFunc::Free(r.get_str()?)),
        1 => Ok(SymFunc::Method {
            class: r.get_str()?,
            index: r.get_u32()?,
        }),
        other => Err(format!("bad function-ref tag {other}")),
    }
}

fn encode_sym_result(res: &SymResult, w: &mut ByteWriter) {
    match res {
        Ok(summary) => {
            w.put_u8(0);
            w.put_len(summary.live_steps.len());
            for step in &summary.live_steps {
                match step {
                    SymLiveStep::Access { member, kind } => {
                        w.put_u8(0);
                        w.put_str(&member.class);
                        w.put_u32(member.index);
                        w.put_u8(match kind {
                            crate::summary::MemberAccessKind::Read => 0,
                            crate::summary::MemberAccessKind::AddressTaken => 1,
                            crate::summary::MemberAccessKind::PointerToMember => 2,
                            crate::summary::MemberAccessKind::VolatileWrite => 3,
                        });
                    }
                    SymLiveStep::MarkAll { class, cause } => {
                        w.put_u8(1);
                        w.put_str(class);
                        w.put_u8(match cause {
                            crate::summary::MarkAllCause::UnsafeCast => 0,
                            crate::summary::MarkAllCause::UnsafeDowncast => 1,
                            crate::summary::MarkAllCause::Sizeof => 2,
                        });
                    }
                }
            }
            w.put_len(summary.cg_steps.len());
            for step in &summary.cg_steps {
                match step {
                    SymCgStep::Call(f) => {
                        w.put_u8(0);
                        encode_sym_func(f, w);
                    }
                    SymCgStep::VirtualCall {
                        decl,
                        receiver,
                        refined,
                    } => {
                        w.put_u8(1);
                        encode_sym_func(decl, w);
                        w.put_str(receiver);
                        match refined {
                            None => w.put_u8(0),
                            Some(fs) => {
                                w.put_u8(1);
                                w.put_len(fs.len());
                                for f in fs {
                                    encode_sym_func(f, w);
                                }
                            }
                        }
                    }
                    SymCgStep::FnPointerCall => w.put_u8(2),
                    SymCgStep::TakeAddress(f) => {
                        w.put_u8(3);
                        encode_sym_func(f, w);
                    }
                    SymCgStep::Instantiate { class, ctor } => {
                        w.put_u8(4);
                        w.put_str(class);
                        match ctor {
                            None => w.put_u8(0),
                            Some(c) => {
                                w.put_u8(1);
                                encode_sym_func(c, w);
                            }
                        }
                    }
                    SymCgStep::Delete { class } => {
                        w.put_u8(5);
                        w.put_str(class);
                    }
                }
            }
        }
        Err(e) => {
            w.put_u8(1);
            encode_type_error(e, w);
        }
    }
}

fn decode_sym_result(r: &mut ByteReader<'_>) -> Result<SymResult, String> {
    match r.get_u8()? {
        0 => {
            let live_steps = (0..r.get_len()?)
                .map(|_| match r.get_u8()? {
                    0 => {
                        let member = SymMember {
                            class: r.get_str()?,
                            index: r.get_u32()?,
                        };
                        let kind = match r.get_u8()? {
                            0 => crate::summary::MemberAccessKind::Read,
                            1 => crate::summary::MemberAccessKind::AddressTaken,
                            2 => crate::summary::MemberAccessKind::PointerToMember,
                            3 => crate::summary::MemberAccessKind::VolatileWrite,
                            other => return Err(format!("bad access kind tag {other}")),
                        };
                        Ok(SymLiveStep::Access { member, kind })
                    }
                    1 => {
                        let class = r.get_str()?;
                        let cause = match r.get_u8()? {
                            0 => crate::summary::MarkAllCause::UnsafeCast,
                            1 => crate::summary::MarkAllCause::UnsafeDowncast,
                            2 => crate::summary::MarkAllCause::Sizeof,
                            other => return Err(format!("bad mark-all cause tag {other}")),
                        };
                        Ok(SymLiveStep::MarkAll { class, cause })
                    }
                    other => Err(format!("bad live-step tag {other}")),
                })
                .collect::<Result<Vec<_>, String>>()?;
            let cg_steps = (0..r.get_len()?)
                .map(|_| match r.get_u8()? {
                    0 => Ok(SymCgStep::Call(decode_sym_func(r)?)),
                    1 => {
                        let decl = decode_sym_func(r)?;
                        let receiver = r.get_str()?;
                        let refined = match r.get_u8()? {
                            0 => None,
                            1 => Some(
                                (0..r.get_len()?)
                                    .map(|_| decode_sym_func(r))
                                    .collect::<Result<Vec<_>, _>>()?,
                            ),
                            other => return Err(format!("bad refined tag {other}")),
                        };
                        Ok(SymCgStep::VirtualCall {
                            decl,
                            receiver,
                            refined,
                        })
                    }
                    2 => Ok(SymCgStep::FnPointerCall),
                    3 => Ok(SymCgStep::TakeAddress(decode_sym_func(r)?)),
                    4 => {
                        let class = r.get_str()?;
                        let ctor = match r.get_u8()? {
                            0 => None,
                            1 => Some(decode_sym_func(r)?),
                            other => return Err(format!("bad ctor tag {other}")),
                        };
                        Ok(SymCgStep::Instantiate { class, ctor })
                    }
                    5 => Ok(SymCgStep::Delete {
                        class: r.get_str()?,
                    }),
                    other => Err(format!("bad cg-step tag {other}")),
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Ok(SymFnSummary {
                live_steps,
                cg_steps,
            }))
        }
        1 => Ok(Err(decode_type_error(r)?)),
        other => Err(format!("bad summary-result tag {other}")),
    }
}

fn encode_type_error(e: &TypeError, w: &mut ByteWriter) {
    match e.kind() {
        TypeErrorKind::UnknownIdent(n) => {
            w.put_u8(0);
            w.put_str(n);
        }
        TypeErrorKind::NotAClass(t) => {
            w.put_u8(1);
            w.put_str(t);
        }
        TypeErrorKind::NotAPointer(t) => {
            w.put_u8(2);
            w.put_str(t);
        }
        TypeErrorKind::NotCallable(t) => {
            w.put_u8(3);
            w.put_str(t);
        }
        TypeErrorKind::Lookup(LookupError::NotFound { class, name }) => {
            w.put_u8(4);
            w.put_str(class);
            w.put_str(name);
        }
        TypeErrorKind::Lookup(LookupError::Ambiguous { class, name }) => {
            w.put_u8(5);
            w.put_str(class);
            w.put_str(name);
        }
        TypeErrorKind::ThisOutsideMethod => w.put_u8(6),
        TypeErrorKind::UnknownQualifier(q) => {
            w.put_u8(7);
            w.put_str(q);
        }
    }
    let span = e.span();
    w.put_u32(span.lo);
    w.put_u32(span.hi);
}

fn decode_type_error(r: &mut ByteReader<'_>) -> Result<TypeError, String> {
    let kind = match r.get_u8()? {
        0 => TypeErrorKind::UnknownIdent(r.get_str()?),
        1 => TypeErrorKind::NotAClass(r.get_str()?),
        2 => TypeErrorKind::NotAPointer(r.get_str()?),
        3 => TypeErrorKind::NotCallable(r.get_str()?),
        4 => TypeErrorKind::Lookup(LookupError::NotFound {
            class: r.get_str()?,
            name: r.get_str()?,
        }),
        5 => TypeErrorKind::Lookup(LookupError::Ambiguous {
            class: r.get_str()?,
            name: r.get_str()?,
        }),
        6 => TypeErrorKind::ThisOutsideMethod,
        7 => TypeErrorKind::UnknownQualifier(r.get_str()?),
        other => return Err(format!("bad type-error tag {other}")),
    };
    let lo = r.get_u32()?;
    let hi = r.get_u32()?;
    Ok(TypeError::from_parts(kind, Span::new(lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Program;
    use crate::summary::ProgramSummary;
    use ddm_cppfront::{parse, SourceMap};

    const SRC: &str = "\
enum Mode { Off, On };
class Base { public: virtual int get() { return tag; } virtual ~Base() { } int tag; };
class Derived : public Base {
public:
    Derived(int s) : seed(s) { }
    virtual int get() { return seed; }
    int seed;
    volatile int flag;
    Mode mode;
};
int helper();
int spin(Base* b) { return b->get(); }
int main() {
    Derived d(3);
    Base* b = &d;
    int r = spin(b) + helper();
    delete b;
    return r;
}
int helper() { int (*fp)() = helper; return sizeof(Derived) + fp(); }
int fleet = helper();
";

    fn extract(src: &str, refine: bool) -> TuModule {
        let tu = parse(src).expect("parse");
        let program = Program::build(&tu).expect("sema");
        let summary = ProgramSummary::build(&program, refine, 1);
        let map = SourceMap::new("t.cpp", src);
        TuModule::extract(&tu, &program, &summary, &map)
    }

    #[test]
    fn binary_roundtrip_is_identity() {
        for refine in [false, true] {
            let m = extract(SRC, refine);
            let mut w = ByteWriter::new();
            encode_module(&m, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = decode_module(&mut r).expect("decode");
            assert!(r.is_at_end(), "trailing bytes after module");
            assert_eq!(back, m, "refine={refine}");
        }
    }

    #[test]
    fn module_list_roundtrip_dedups_shared_classes() {
        // Three TUs sharing the same header classes, differing only in
        // their free functions — the shape of every real project.
        let header = "class Base {\npublic:\n    Base(int s) : seed(s), pad(0) { }\n    \
                      virtual ~Base() { }\n    virtual int spin() { return seed; }\n    \
                      int seed;\n    int pad;\n};\n";
        let mods: Vec<TuModule> = (0..3)
            .map(|i| {
                let src = format!("{header}int f{i}(Base* b) {{ return b->spin() + {i}; }}");
                let tu = parse(&src).expect("parse");
                let program = Program::build(&tu).expect("sema");
                let summary = ProgramSummary::build(&program, false, 1);
                let map = SourceMap::new(format!("t{i}.cpp"), src);
                TuModule::extract(&tu, &program, &summary, &map)
            })
            .collect();

        let mut w = ByteWriter::new();
        encode_modules(&mods, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_modules(&mut r).expect("decode");
        assert!(r.is_at_end(), "trailing bytes after module list");
        assert_eq!(back, mods);

        // The shared class is stored once, so the list encodes in far
        // less than the sum of its standalone modules.
        let standalone: usize = mods
            .iter()
            .map(|m| {
                let mut w = ByteWriter::new();
                encode_module(m, &mut w);
                w.into_bytes().len()
            })
            .sum();
        assert!(
            bytes.len() < standalone - standalone / 3,
            "dedup saved too little: list {} vs standalone sum {standalone}",
            bytes.len()
        );

        // Deterministic, like the single-module codec.
        let mut w2 = ByteWriter::new();
        encode_modules(&mods, &mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // A class-table index out of range is a decode error, not a
        // panic (second line of defense behind the envelope checksum).
        let mut broken = bytes.clone();
        let pos = bytes.len() - 1;
        broken[pos] ^= 0x10;
        let _ = decode_modules(&mut ByteReader::new(&broken));
    }

    #[test]
    fn type_errors_roundtrip() {
        let m = extract(
            "class A { public: int x; };\nint main() { A a; return a.ghost; }",
            false,
        );
        assert!(m.free_fns[0].summary.is_err(), "fixture must carry an error");
        let mut w = ByteWriter::new();
        encode_module(&m, &mut w);
        let bytes = w.into_bytes();
        let back = decode_module(&mut ByteReader::new(&bytes)).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = extract(SRC, false);
        let encode = |m: &TuModule| {
            let mut w = ByteWriter::new();
            encode_module(m, &mut w);
            w.into_bytes()
        };
        assert_eq!(encode(&m), encode(&m.clone()));
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let m = extract(SRC, false);
        let mut w = ByteWriter::new();
        encode_module(&m, &mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_module(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        // A single out-of-range enum tag anywhere in the stream fails
        // decoding (the checksum normally catches this first; the codec
        // is the second line of defense).
        let m = extract(SRC, false);
        let mut w = ByteWriter::new();
        encode_module(&m, &mut w);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 0xEE;
        assert!(decode_module(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn reader_bounds_are_checked() {
        let mut r = ByteReader::new(&[1, 0]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(r.get_len().is_err(), "oversized length must be rejected");
        let mut r = ByteReader::new(&[7]);
        assert!(r.get_bool().is_err());
    }
}
