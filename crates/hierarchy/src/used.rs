//! Used-class computation.
//!
//! The paper's Table 1 counts *used classes*: "classes for which a
//! constructor is called in user code". A class is used if it is
//! instantiated anywhere in the program text (local, heap, or global), or
//! if it is a base class or by-value member class of a used class (those
//! constructors run implicitly).
//!
//! Data members in *unused* classes are excluded from the paper's static
//! percentages, "since eliminating such members does not affect the size
//! of any objects that are created at run-time" (§4.2).

use crate::ids::ClassId;
use crate::lookup::MemberLookup;
use crate::model::{by_value_class, Program};
use crate::typewalk::{walk_function, walk_globals, EventVisitor, InstantiationEvent, TypeError};
use std::collections::HashSet;

struct InstantiationCollector {
    seeds: HashSet<ClassId>,
}

impl EventVisitor for InstantiationCollector {
    fn instantiation(&mut self, ev: &InstantiationEvent) {
        self.seeds.insert(ev.class);
    }
}

/// Computes the set of used classes of `program`.
///
/// # Errors
///
/// Propagates [`TypeError`]s from walking function bodies.
///
/// # Examples
///
/// ```
/// use ddm_hierarchy::{Program, MemberLookup, used_classes};
/// let tu = ddm_cppfront::parse(
///     "class Used { public: int a; }; class Unused { public: int b; };\n\
///      int main() { Used u; return u.a; }",
/// ).unwrap();
/// let program = Program::build(&tu).unwrap();
/// let lookup = MemberLookup::new(&program);
/// let used = used_classes(&program, &lookup).unwrap();
/// assert!(used.contains(&program.class_by_name("Used").unwrap()));
/// assert!(!used.contains(&program.class_by_name("Unused").unwrap()));
/// ```
pub fn used_classes(
    program: &Program,
    lookup: &MemberLookup<'_>,
) -> Result<HashSet<ClassId>, TypeError> {
    let mut collector = InstantiationCollector {
        seeds: HashSet::new(),
    };
    for (fid, f) in program.functions() {
        if f.body.is_some() || !f.inits.is_empty() {
            walk_function(program, lookup, fid, &mut collector)?;
        }
    }
    walk_globals(program, lookup, &mut collector)?;

    // Closure: instantiating a class constructs its bases and by-value
    // member classes.
    let mut used = HashSet::new();
    let mut stack: Vec<ClassId> = collector.seeds.into_iter().collect();
    while let Some(c) = stack.pop() {
        if !used.insert(c) {
            continue;
        }
        let info = program.class(c);
        for b in &info.bases {
            stack.push(b.id);
        }
        for m in &info.members {
            if let Some(name) = by_value_class(&m.ty) {
                if let Some(id) = program.class_by_name(name) {
                    stack.push(id);
                }
            }
        }
    }
    Ok(used)
}

/// Counts data members declared in used classes (the denominator of the
/// paper's Figure 3 percentages and the last column of Table 1).
pub fn data_members_in_used_classes(program: &Program, used: &HashSet<ClassId>) -> usize {
    program
        .classes()
        .filter(|(id, _)| used.contains(id))
        .map(|(_, c)| c.members.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    fn compute(src: &str) -> (Program, HashSet<ClassId>) {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let used = {
            let lk = MemberLookup::new(&p);
            used_classes(&p, &lk).expect("walk")
        };
        (p, used)
    }

    #[test]
    fn locals_heap_and_globals_seed_usage() {
        let (p, used) = compute(
            "class L { }; class H { }; class G { }; class U { };\n\
             G g;\n\
             int main() { L l; H* h = new H(); delete h; return 0; }",
        );
        assert!(used.contains(&p.class_by_name("L").unwrap()));
        assert!(used.contains(&p.class_by_name("H").unwrap()));
        assert!(used.contains(&p.class_by_name("G").unwrap()));
        assert!(!used.contains(&p.class_by_name("U").unwrap()));
    }

    #[test]
    fn bases_of_used_classes_are_used() {
        let (p, used) = compute(
            "class Base { public: int b; }; class Derived : public Base { };\n\
             class OtherBase { };\n\
             int main() { Derived d; return 0; }",
        );
        assert!(used.contains(&p.class_by_name("Base").unwrap()));
        assert!(used.contains(&p.class_by_name("Derived").unwrap()));
        assert!(!used.contains(&p.class_by_name("OtherBase").unwrap()));
    }

    #[test]
    fn by_value_members_are_used_pointer_members_are_not() {
        let (p, used) = compute(
            "class Embedded { public: int e; }; class Pointed { public: int p; };\n\
             class Holder { public: Embedded em; Pointed* pp; };\n\
             int main() { Holder h; return 0; }",
        );
        assert!(used.contains(&p.class_by_name("Embedded").unwrap()));
        assert!(!used.contains(&p.class_by_name("Pointed").unwrap()));
    }

    #[test]
    fn instantiation_in_unreachable_function_still_counts_as_used() {
        // "Used" is a static, whole-program-text notion in Table 1.
        let (p, used) = compute(
            "class OnlyInDeadCode { };\n\
             void never_called() { OnlyInDeadCode x; }\n\
             int main() { return 0; }",
        );
        assert!(used.contains(&p.class_by_name("OnlyInDeadCode").unwrap()));
    }

    #[test]
    fn member_counting_in_used_classes() {
        let (p, used) = compute(
            "class A { public: int a1; int a2; }; class B { public: int b1; };\n\
             int main() { A a; return 0; }",
        );
        assert_eq!(data_members_in_used_classes(&p, &used), 2);
    }
}
