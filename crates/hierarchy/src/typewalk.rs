//! Typed traversal of function bodies.
//!
//! [`walk_function`] drives an [`EventVisitor`] over every statement and
//! expression of one function, maintaining local scopes and inferring
//! static types, and reports the semantic *events* the downstream analyses
//! care about: member accesses (with read/write classification), calls
//! (with virtual-dispatch information), casts, `sizeof`, allocation,
//! deallocation, and address-taken functions.
//!
//! Both the call-graph builders and the dead-member analysis consume this
//! single traversal, so the two phases agree on name resolution by
//! construction.

use crate::ids::{ClassId, FuncId, MemberRef};
use crate::lookup::{Found, LookupError, MemberLookup};
use crate::model::Program;
use ddm_cppfront::ast::{
    AssignOp, Block, CastStyle, Expr, ExprKind, FnType, FunctionKind, LocalInit, Stmt, StmtKind,
    Type, TypeKind, UnaryOp,
};
use ddm_cppfront::Span;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of body traversals ([`walk_function`] and
/// [`walk_globals`] invocations), for asserting the summary engine's
/// walk-once property in tests and benchmarks.
static BODY_WALKS: AtomicU64 = AtomicU64::new(0);

/// The number of body traversals performed so far by this process.
pub fn body_walk_count() -> u64 {
    BODY_WALKS.load(Ordering::Relaxed)
}

/// Built-in functions the runtime provides. Calls to these are not user
/// code; `free` gets the paper's special treatment (its argument is not a
/// liveness-inducing access) and the `print_*` family is the program's
/// observable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print_int(int)` — writes an integer to the output.
    PrintInt,
    /// `print_char(char)` — writes a character to the output.
    PrintChar,
    /// `print_float(double)` — writes a float to the output.
    PrintFloat,
    /// `print_str(char*)` — writes a string literal to the output.
    PrintStr,
    /// `free(void*)` — releases heap memory (C allocation interface).
    Free,
}

impl Builtin {
    /// Looks up a builtin by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print_int" => Builtin::PrintInt,
            "print_char" => Builtin::PrintChar,
            "print_float" => Builtin::PrintFloat,
            "print_str" => Builtin::PrintStr,
            "free" => Builtin::Free,
            _ => return None,
        })
    }

    /// The builtin's return type (they all return `void`).
    pub fn return_type(self) -> Type {
        Type::void()
    }
}

/// A type or resolution error found while walking a body.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    kind: TypeErrorKind,
    span: Span,
}

impl TypeError {
    fn new(kind: TypeErrorKind, span: Span) -> Self {
        TypeError { kind, span }
    }

    /// Reassembles a `TypeError` from its parts. Used by the persistent
    /// summary cache, which serializes errors recorded in per-TU
    /// summaries and must reconstruct them bit-identically on a warm run.
    pub fn from_parts(kind: TypeErrorKind, span: Span) -> Self {
        TypeError { kind, span }
    }

    /// The specific failure.
    pub fn kind(&self) -> &TypeErrorKind {
        &self.kind
    }

    /// Where it occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl Error for TypeError {}

/// Kinds of type errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeErrorKind {
    /// A name that resolves to nothing.
    UnknownIdent(String),
    /// Member access on a non-class type.
    NotAClass(String),
    /// Dereference/arrow on a non-pointer.
    NotAPointer(String),
    /// Call of something that is not a function.
    NotCallable(String),
    /// Member lookup failed.
    Lookup(LookupError),
    /// `this` outside a method.
    ThisOutsideMethod,
    /// A qualifier that names no class.
    UnknownQualifier(String),
}

impl fmt::Display for TypeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeErrorKind::UnknownIdent(n) => write!(f, "unknown identifier `{n}`"),
            TypeErrorKind::NotAClass(t) => write!(f, "member access on non-class type `{t}`"),
            TypeErrorKind::NotAPointer(t) => write!(f, "`->` or `*` applied to non-pointer `{t}`"),
            TypeErrorKind::NotCallable(t) => write!(f, "cannot call value of type `{t}`"),
            TypeErrorKind::Lookup(e) => write!(f, "{e}"),
            TypeErrorKind::ThisOutsideMethod => write!(f, "`this` used outside a member function"),
            TypeErrorKind::UnknownQualifier(q) => write!(f, "unknown qualifier `{q}`"),
        }
    }
}

impl From<LookupError> for TypeErrorKind {
    fn from(e: LookupError) -> Self {
        TypeErrorKind::Lookup(e)
    }
}

/// A data-member access event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberAccessEvent {
    /// The resolved member (`C::m` in the paper's terms).
    pub member: MemberRef,
    /// The static class of the object expression.
    pub object_class: ClassId,
    /// Whether the access used `base.Qual::m` syntax.
    pub qualified: bool,
    /// True when this access is the *direct* left-hand side of a simple
    /// `=` assignment — a pure write, which the analysis ignores (unless
    /// the member is `volatile`).
    pub is_store_target: bool,
    /// True when this access is the direct operand of `delete` or the
    /// direct argument of `free` — exempt from livening, per the paper.
    pub is_delete_operand: bool,
    /// True when the *address* of the member is taken (`&e.m`).
    pub address_taken: bool,
    /// Source location of the access.
    pub span: Span,
}

/// How a call site resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A free function.
    Free(FuncId),
    /// A runtime builtin.
    Builtin(Builtin),
    /// A method call on an object of static class `receiver_class`.
    Method {
        /// The statically resolved declaration.
        func: FuncId,
        /// Static class of the receiver.
        receiver_class: ClassId,
        /// True when dynamic dispatch applies (virtual method, unqualified
        /// call, receiver accessed through a pointer or reference).
        is_virtual_dispatch: bool,
        /// For dispatched calls whose receiver is a plain local/parameter
        /// pointer (`p->f()`), the variable name — the hook a points-to
        /// refinement (§3.1) uses to narrow the candidate set.
        receiver_var: Option<String>,
    },
    /// An indirect call through a function pointer (unknown target).
    FunctionPointer,
}

/// A call event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEvent {
    /// Where the call goes.
    pub target: CallTarget,
    /// Number of arguments at the call site.
    pub arg_count: usize,
    /// Source location.
    pub span: Span,
}

/// A cast event (any style).
#[derive(Debug, Clone, PartialEq)]
pub struct CastEvent {
    /// Which syntax was used.
    pub style: CastStyle,
    /// The target type.
    pub target: Type,
    /// The operand's static type (the paper's `S` in
    /// `MarkAllContainedMembers(S)`).
    pub operand: Type,
    /// Source location.
    pub span: Span,
}

/// An object allocation/instantiation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantiationEvent {
    /// The instantiated class.
    pub class: ClassId,
    /// The constructor that runs, when one is declared and resolvable by
    /// arity. `None` for classes without declared constructors.
    pub ctor: Option<FuncId>,
    /// How the object comes into being.
    pub kind: InstantiationKind,
    /// Source location.
    pub span: Span,
}

/// The different ways an object gets created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantiationKind {
    /// A local (stack) variable.
    Local,
    /// A `new` expression.
    Heap,
    /// A `new T[n]` expression.
    HeapArray,
    /// A global variable.
    Global,
}

/// A `delete` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeleteEvent {
    /// Static class of the deleted pointee, if it is a class.
    pub pointee_class: Option<ClassId>,
    /// True for `delete[]`.
    pub is_array: bool,
    /// Source location.
    pub span: Span,
}

/// Visitor over the semantic events of one function body. All methods
/// default to no-ops so implementations override only what they need.
pub trait EventVisitor {
    /// A data-member access (read, write, or address-taken).
    fn member_access(&mut self, _ev: &MemberAccessEvent) {}
    /// A pointer-to-data-member creation `&C::m`.
    fn ptr_to_member(&mut self, _member: MemberRef, _span: Span) {}
    /// A call site.
    fn call(&mut self, _ev: &CallEvent) {}
    /// A function whose address is taken (named without calling it).
    fn address_of_function(&mut self, _func: FuncId, _span: Span) {}
    /// A cast of any style.
    fn cast(&mut self, _ev: &CastEvent) {}
    /// A `sizeof(T)` or `sizeof expr` with the resolved type.
    fn sizeof_of(&mut self, _ty: &Type, _span: Span) {}
    /// An object instantiation (local, heap, or global).
    fn instantiation(&mut self, _ev: &InstantiationEvent) {}
    /// A `delete` expression.
    fn delete_of(&mut self, _ev: &DeleteEvent) {}
}

/// Walks one function body (including constructor initializer lists),
/// reporting events to `visitor`.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered. Body-less functions
/// produce no events and succeed.
pub fn walk_function(
    program: &Program,
    lookup: &MemberLookup<'_>,
    func: FuncId,
    visitor: &mut dyn EventVisitor,
) -> Result<(), TypeError> {
    BODY_WALKS.fetch_add(1, Ordering::Relaxed);
    let info = program.function(func);
    let mut walker = Walker {
        program,
        lookup,
        visitor,
        scopes: vec![HashMap::new()],
        this_class: info.class,
    };
    for p in &info.params {
        walker.declare(&p.name, p.ty.clone());
    }
    // Constructor initializer lists: member entries are pure writes (the
    // arguments are evaluated, the target member is not livened); base
    // entries are constructor calls.
    if info.kind == FunctionKind::Constructor {
        let class = info.class.expect("constructors always have a class");
        for init in &info.inits {
            for arg in &init.args {
                walker.expr(arg, Ctx::value())?;
            }
            if let Some(base_id) = program.class_by_name(&init.name) {
                if program.class(class).bases.iter().any(|b| b.id == base_id) {
                    let ctor = resolve_ctor(program, base_id, init.args.len());
                    walker.visitor.call(&CallEvent {
                        target: CallTarget::Method {
                            func: match ctor {
                                Some(c) => c,
                                None => continue,
                            },
                            receiver_class: base_id,
                            is_virtual_dispatch: false,
                            receiver_var: None,
                        },
                        arg_count: init.args.len(),
                        span: init.span,
                    });
                }
            }
        }
    }
    if let Some(body) = &info.body {
        walker.block(body)?;
    }
    Ok(())
}

/// Walks every global-variable initializer (these run before `main`, so
/// their member accesses are always reachable).
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn walk_globals(
    program: &Program,
    lookup: &MemberLookup<'_>,
    visitor: &mut dyn EventVisitor,
) -> Result<(), TypeError> {
    BODY_WALKS.fetch_add(1, Ordering::Relaxed);
    let mut walker = Walker {
        program,
        lookup,
        visitor,
        scopes: vec![HashMap::new()],
        this_class: None,
    };
    for g in program.globals() {
        if let Some(init) = &g.init {
            walker.expr(init, Ctx::value())?;
        }
        if let Some(class_name) = crate::model::by_value_class(&g.ty) {
            if let Some(class) = walker.program.class_by_name(class_name) {
                let ctor = resolve_ctor(walker.program, class, 0);
                walker.visitor.instantiation(&InstantiationEvent {
                    class,
                    ctor,
                    kind: InstantiationKind::Global,
                    span: g.span,
                });
            }
        }
    }
    Ok(())
}

/// Resolves a constructor of `class` by argument count: an exact-arity
/// match wins; otherwise any constructor (our subset does not model default
/// arguments); `None` when the class declares no constructors.
pub fn resolve_ctor(program: &Program, class: ClassId, arity: usize) -> Option<FuncId> {
    let ctors = program.constructors(class);
    ctors
        .iter()
        .copied()
        .find(|&c| program.function(c).params.len() == arity)
        .or_else(|| ctors.first().copied())
}

/// Expression evaluation context, threaded top-down.
#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    /// This expression is the direct LHS of a simple `=`.
    store_target: bool,
    /// This expression is the direct operand of `delete` / argument of `free`.
    delete_operand: bool,
    /// This expression is the direct operand of `&`.
    address_of: bool,
    /// This expression is being called (so a bare function name is not an
    /// address-taken event).
    callee: bool,
}

impl Ctx {
    fn value() -> Ctx {
        Ctx::default()
    }
}

struct Walker<'a> {
    program: &'a Program,
    lookup: &'a MemberLookup<'a>,
    visitor: &'a mut dyn EventVisitor,
    scopes: Vec<HashMap<String, Type>>,
    this_class: Option<ClassId>,
}

impl<'a> Walker<'a> {
    fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), ty);
    }

    fn lookup_local(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn block(&mut self, b: &Block) -> Result<(), TypeError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), TypeError> {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.expr(e, Ctx::value())?;
            }
            StmtKind::Decl(d) => self.local_decl(d, s.span)?,
            StmtKind::If { cond, then, els } => {
                self.expr(cond, Ctx::value())?;
                self.stmt(then)?;
                if let Some(e) = els {
                    self.stmt(e)?;
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond, Ctx::value())?;
                self.stmt(body)?;
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmt(body)?;
                self.expr(cond, Ctx::value())?;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c, Ctx::value())?;
                }
                if let Some(st) = step {
                    self.expr(st, Ctx::value())?;
                }
                self.stmt(body)?;
                self.scopes.pop();
            }
            StmtKind::Switch { scrutinee, arms } => {
                self.expr(scrutinee, Ctx::value())?;
                self.scopes.push(HashMap::new());
                for arm in arms {
                    if let Some(v) = &arm.value {
                        self.expr(v, Ctx::value())?;
                    }
                    for st in &arm.stmts {
                        self.stmt(st)?;
                    }
                }
                self.scopes.pop();
            }
            StmtKind::Return(Some(e)) => {
                self.expr(e, Ctx::value())?;
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
            StmtKind::Block(b) => self.block(b)?,
        }
        Ok(())
    }

    fn local_decl(
        &mut self,
        d: &ddm_cppfront::ast::LocalDecl,
        span: Span,
    ) -> Result<(), TypeError> {
        let ty = self.resolve_decl_type(&d.ty);
        match &d.init {
            LocalInit::Default => {}
            LocalInit::Expr(e) => {
                self.expr(e, Ctx::value())?;
            }
            LocalInit::Ctor(args) => {
                for a in args {
                    self.expr(a, Ctx::value())?;
                }
            }
        }
        // Instantiation events for by-value class locals.
        if let Some(class_name) = crate::model::by_value_class(&ty) {
            if let Some(class) = self.program.class_by_name(class_name) {
                let arity = match &d.init {
                    LocalInit::Ctor(args) => args.len(),
                    _ => 0,
                };
                let ctor = resolve_ctor(self.program, class, arity);
                self.visitor.instantiation(&InstantiationEvent {
                    class,
                    ctor,
                    kind: InstantiationKind::Local,
                    span,
                });
            }
        }
        self.declare(&d.name, ty);
        Ok(())
    }

    /// Normalizes enum-named types to `int` in declared types (the model's
    /// stored types are already normalized; local declarations come from
    /// the raw AST).
    fn resolve_decl_type(&self, ty: &Type) -> Type {
        let mut out = ty.clone();
        fn fix(p: &Program, t: &mut Type) {
            match &mut t.kind {
                TypeKind::Named(n) if p.is_enum_type(n) => t.kind = TypeKind::Int,
                TypeKind::Pointer(i) | TypeKind::Reference(i) => fix(p, i),
                TypeKind::Array(i, _) => fix(p, i),
                TypeKind::Function(ft) => {
                    fix(p, &mut ft.ret);
                    for q in &mut ft.params {
                        fix(p, q);
                    }
                }
                TypeKind::MemberPointer { pointee, .. } => fix(p, pointee),
                _ => {}
            }
        }
        fix(self.program, &mut out);
        out
    }

    /// Walks `e`, emitting events, and returns its static type.
    fn expr(&mut self, e: &Expr, ctx: Ctx) -> Result<Type, TypeError> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::int()),
            ExprKind::FloatLit(_) => Ok(Type::plain(TypeKind::Double)),
            ExprKind::BoolLit(_) => Ok(Type::plain(TypeKind::Bool)),
            ExprKind::CharLit(_) => Ok(Type::plain(TypeKind::Char)),
            ExprKind::StrLit(_) => Ok(Type::plain(TypeKind::Char).pointer_to()),
            ExprKind::Null => Ok(Type::void().pointer_to()),
            ExprKind::This => match self.this_class {
                Some(c) => Ok(
                    Type::plain(TypeKind::Named(self.program.class(c).name.clone())).pointer_to(),
                ),
                None => Err(TypeError::new(TypeErrorKind::ThisOutsideMethod, e.span)),
            },
            ExprKind::Ident(name) => self.ident(name, e.span, ctx),
            ExprKind::Member {
                base,
                arrow,
                qualifier,
                name,
            } => self.member(base, *arrow, qualifier.as_deref(), name, e.span, ctx),
            ExprKind::Index { base, index } => {
                let base_ty = self.expr(base, Ctx::value())?;
                self.expr(index, Ctx::value())?;
                let stripped = base_ty.strip_reference();
                match &stripped.kind {
                    TypeKind::Array(elem, _) => Ok((**elem).clone()),
                    TypeKind::Pointer(p) => Ok((**p).clone()),
                    _ => Err(TypeError::new(
                        TypeErrorKind::NotAPointer(base_ty.to_string()),
                        e.span,
                    )),
                }
            }
            ExprKind::Call { callee, args } => self.call(callee, args, e.span),
            ExprKind::Unary { op, expr } => self.unary(*op, expr, e.span, ctx),
            ExprKind::Postfix { expr, .. } => self.expr(expr, Ctx::value()),
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs, Ctx::value())?;
                let rt = self.expr(rhs, Ctx::value())?;
                Ok(binary_result(*op, &lt, &rt))
            }
            ExprKind::Assign { op, lhs, rhs } => {
                // `lhs = rhs`: the direct target of a simple assignment is a
                // pure write; compound assignments read their target.
                let target_ctx = Ctx {
                    store_target: *op == AssignOp::Assign,
                    ..Ctx::value()
                };
                let lt = self.expr(lhs, target_ctx)?;
                self.expr(rhs, Ctx::value())?;
                Ok(lt)
            }
            ExprKind::Cond { cond, then, els } => {
                self.expr(cond, Ctx::value())?;
                let tt = self.expr(then, Ctx::value())?;
                self.expr(els, Ctx::value())?;
                Ok(tt)
            }
            ExprKind::Cast { style, ty, expr } => {
                let operand = self.expr(expr, Ctx::value())?;
                let target = self.resolve_decl_type(ty);
                self.visitor.cast(&CastEvent {
                    style: *style,
                    target: target.clone(),
                    operand,
                    span: e.span,
                });
                Ok(target)
            }
            ExprKind::New {
                ty,
                args,
                array_len,
            } => {
                for a in args {
                    self.expr(a, Ctx::value())?;
                }
                if let Some(len) = array_len {
                    self.expr(len, Ctx::value())?;
                }
                let ty = self.resolve_decl_type(ty);
                if let Some(class_name) = crate::model::by_value_class(&ty) {
                    if let Some(class) = self.program.class_by_name(class_name) {
                        let kind = if array_len.is_some() {
                            InstantiationKind::HeapArray
                        } else {
                            InstantiationKind::Heap
                        };
                        let arity = if array_len.is_some() { 0 } else { args.len() };
                        let ctor = resolve_ctor(self.program, class, arity);
                        self.visitor.instantiation(&InstantiationEvent {
                            class,
                            ctor,
                            kind,
                            span: e.span,
                        });
                    }
                }
                Ok(ty.pointer_to())
            }
            ExprKind::Delete { expr, is_array } => {
                let ty = self.expr(
                    expr,
                    Ctx {
                        delete_operand: true,
                        ..Ctx::value()
                    },
                )?;
                let pointee_class = ty
                    .pointee()
                    .and_then(|p| p.named())
                    .and_then(|n| self.program.class_by_name(n));
                self.visitor.delete_of(&DeleteEvent {
                    pointee_class,
                    is_array: *is_array,
                    span: e.span,
                });
                Ok(Type::void())
            }
            ExprKind::SizeofType(ty) => {
                let ty = self.resolve_decl_type(ty);
                self.visitor.sizeof_of(&ty, e.span);
                Ok(Type::int())
            }
            ExprKind::SizeofExpr(inner) => {
                // The operand of sizeof is NOT evaluated in C++, so member
                // accesses inside it are not livening accesses; only the
                // resulting type matters.
                let ty = self.type_only(inner)?;
                self.visitor.sizeof_of(&ty, e.span);
                Ok(Type::int())
            }
            ExprKind::PtrToMember { class, member } => {
                let class_id = self.program.class_by_name(class).ok_or_else(|| {
                    TypeError::new(TypeErrorKind::UnknownQualifier(class.clone()), e.span)
                })?;
                match self.lookup.member(class_id, member) {
                    Ok(Found::Data(m)) => {
                        self.visitor.ptr_to_member(m, e.span);
                        let mty = self.program.class(m.class).members[m.index as usize]
                            .ty
                            .clone();
                        Ok(Type::plain(TypeKind::MemberPointer {
                            class: class.clone(),
                            pointee: Box::new(mty),
                        }))
                    }
                    Ok(Found::Method { func, .. }) => {
                        // Pointer to member function: the function's address
                        // is taken.
                        self.visitor.address_of_function(func, e.span);
                        Ok(Type::void().pointer_to())
                    }
                    Err(err) => Err(TypeError::new(err.into(), e.span)),
                }
            }
            ExprKind::PtrMemApply { base, arrow, ptr } => {
                let base_ty = self.expr(base, Ctx::value())?;
                let ptr_ty = self.expr(ptr, Ctx::value())?;
                let _ = self.class_of_base(&base_ty, *arrow, e.span)?;
                match &ptr_ty.kind {
                    TypeKind::MemberPointer { pointee, .. } => Ok((**pointee).clone()),
                    _ => Ok(Type::int()),
                }
            }
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, Ctx::value())?;
                self.expr(rhs, Ctx::value())
            }
        }
    }

    /// Type of an unevaluated expression (`sizeof` operand): no events.
    fn type_only(&mut self, e: &Expr) -> Result<Type, TypeError> {
        struct Silent;
        impl EventVisitor for Silent {}
        let mut silent = Silent;
        let mut sub = Walker {
            program: self.program,
            lookup: self.lookup,
            visitor: &mut silent,
            scopes: std::mem::take(&mut self.scopes),
            this_class: self.this_class,
        };
        let result = sub.expr(e, Ctx::value());
        self.scopes = std::mem::take(&mut sub.scopes);
        result
    }

    fn ident(&mut self, name: &str, span: Span, ctx: Ctx) -> Result<Type, TypeError> {
        // Resolution order: locals/params, enclosing-class members,
        // globals, enumerators, functions, builtins.
        if let Some(ty) = self.lookup_local(name) {
            return Ok(ty.clone());
        }
        if let Some(this_class) = self.this_class {
            if let Ok(found) = self.lookup.member(this_class, name) {
                match found {
                    Found::Data(m) => {
                        let member = &self.program.class(m.class).members[m.index as usize];
                        let ty = member.ty.clone();
                        self.visitor.member_access(&MemberAccessEvent {
                            member: m,
                            object_class: this_class,
                            qualified: false,
                            is_store_target: ctx.store_target,
                            is_delete_operand: ctx.delete_operand,
                            address_taken: ctx.address_of,
                            span,
                        });
                        return Ok(ty);
                    }
                    Found::Method { func, .. } => {
                        if !ctx.callee {
                            self.visitor.address_of_function(func, span);
                        }
                        return Ok(fn_type_of(self.program, func));
                    }
                }
            }
        }
        if let Some(g) = self.program.globals().iter().find(|g| g.name == name) {
            return Ok(g.ty.clone());
        }
        if self.program.enum_const(name).is_some() {
            return Ok(Type::int());
        }
        if let Some(f) = self.program.free_function(name) {
            if !ctx.callee {
                self.visitor.address_of_function(f, span);
            }
            return Ok(fn_type_of(self.program, f));
        }
        if Builtin::from_name(name).is_some() {
            return Ok(Type::void().pointer_to());
        }
        Err(TypeError::new(
            TypeErrorKind::UnknownIdent(name.to_string()),
            span,
        ))
    }

    /// The class a member access goes through, given the base expression's
    /// type and the access operator.
    fn class_of_base(&self, base_ty: &Type, arrow: bool, span: Span) -> Result<ClassId, TypeError> {
        let stripped = base_ty.strip_reference();
        let class_ty = if arrow {
            stripped.pointee().ok_or_else(|| {
                TypeError::new(TypeErrorKind::NotAPointer(base_ty.to_string()), span)
            })?
        } else {
            stripped
        };
        let name = class_ty
            .named()
            .ok_or_else(|| TypeError::new(TypeErrorKind::NotAClass(class_ty.to_string()), span))?;
        self.program
            .class_by_name(name)
            .ok_or_else(|| TypeError::new(TypeErrorKind::NotAClass(name.to_string()), span))
    }

    fn member(
        &mut self,
        base: &Expr,
        arrow: bool,
        qualifier: Option<&str>,
        name: &str,
        span: Span,
        ctx: Ctx,
    ) -> Result<Type, TypeError> {
        let base_ty = self.expr(base, Ctx::value())?;
        let base_class = self.class_of_base(&base_ty, arrow, span)?;
        // Qualified access `e.Y::m` looks up in Y (which must be a base of,
        // or equal to, the static class).
        let lookup_class = match qualifier {
            Some(q) => self.program.class_by_name(q).ok_or_else(|| {
                TypeError::new(TypeErrorKind::UnknownQualifier(q.to_string()), span)
            })?,
            None => base_class,
        };
        match self
            .lookup
            .member(lookup_class, name)
            .map_err(|e| TypeError::new(e.into(), span))?
        {
            Found::Data(m) => {
                let ty = self.program.class(m.class).members[m.index as usize]
                    .ty
                    .clone();
                self.visitor.member_access(&MemberAccessEvent {
                    member: m,
                    object_class: base_class,
                    qualified: qualifier.is_some(),
                    is_store_target: ctx.store_target,
                    is_delete_operand: ctx.delete_operand,
                    address_taken: ctx.address_of,
                    span,
                });
                Ok(ty)
            }
            Found::Method { func, .. } => {
                if !ctx.callee {
                    self.visitor.address_of_function(func, span);
                }
                Ok(fn_type_of(self.program, func))
            }
        }
    }

    fn unary(
        &mut self,
        op: UnaryOp,
        operand: &Expr,
        span: Span,
        _ctx: Ctx,
    ) -> Result<Type, TypeError> {
        match op {
            UnaryOp::AddrOf => {
                let inner_ctx = Ctx {
                    address_of: true,
                    ..Ctx::value()
                };
                let ty = self.expr(operand, inner_ctx)?;
                Ok(ty.strip_reference().clone().pointer_to())
            }
            UnaryOp::Deref => {
                let ty = self.expr(operand, Ctx::value())?;
                match ty.strip_reference().pointee() {
                    Some(p) => Ok(p.clone()),
                    None => Err(TypeError::new(
                        TypeErrorKind::NotAPointer(ty.to_string()),
                        span,
                    )),
                }
            }
            UnaryOp::Not => {
                self.expr(operand, Ctx::value())?;
                Ok(Type::plain(TypeKind::Bool))
            }
            UnaryOp::Neg | UnaryOp::Plus | UnaryOp::BitNot | UnaryOp::PreInc | UnaryOp::PreDec => {
                self.expr(operand, Ctx::value())
            }
        }
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], span: Span) -> Result<Type, TypeError> {
        for a in args {
            // `free(e.m)` exempts a direct member-access argument.
            let is_free_call = matches!(
                &callee.kind,
                ExprKind::Ident(n) if Builtin::from_name(n) == Some(Builtin::Free)
            );
            let ctx = Ctx {
                delete_operand: is_free_call,
                ..Ctx::value()
            };
            self.expr(a, ctx)?;
        }
        match &callee.kind {
            ExprKind::Ident(name) => {
                if let Some(b) = Builtin::from_name(name) {
                    // Builtins are shadowed by any user definition.
                    if self.program.free_function(name).is_none()
                        && self.lookup_local(name).is_none()
                    {
                        self.visitor.call(&CallEvent {
                            target: CallTarget::Builtin(b),
                            arg_count: args.len(),
                            span,
                        });
                        return Ok(b.return_type());
                    }
                }
                // Local function pointer?
                if let Some(ty) = self.lookup_local(name).cloned() {
                    return self.indirect_call(&ty, args.len(), span);
                }
                // Implicit `this->method(...)`.
                if let Some(this_class) = self.this_class {
                    if let Ok(Found::Method { func, .. }) = self.lookup.member(this_class, name) {
                        let fi = self.program.function(func);
                        self.visitor.call(&CallEvent {
                            target: CallTarget::Method {
                                func,
                                receiver_class: this_class,
                                is_virtual_dispatch: fi.is_virtual,
                                receiver_var: None,
                            },
                            arg_count: args.len(),
                            span,
                        });
                        return Ok(fi.ret.clone());
                    }
                }
                if let Some(f) = self.program.free_function(name) {
                    self.visitor.call(&CallEvent {
                        target: CallTarget::Free(f),
                        arg_count: args.len(),
                        span,
                    });
                    return Ok(self.program.function(f).ret.clone());
                }
                // Global function pointer?
                if let Some(g) = self.program.globals().iter().find(|g| &g.name == name) {
                    let ty = g.ty.clone();
                    return self.indirect_call(&ty, args.len(), span);
                }
                Err(TypeError::new(
                    TypeErrorKind::UnknownIdent(name.clone()),
                    span,
                ))
            }
            ExprKind::Member {
                base,
                arrow,
                qualifier,
                name,
            } => {
                let base_ty = self.expr(base, Ctx::value())?;
                let base_class = self.class_of_base(&base_ty, *arrow, span)?;
                let lookup_class = match qualifier.as_deref() {
                    Some(q) => self.program.class_by_name(q).ok_or_else(|| {
                        TypeError::new(TypeErrorKind::UnknownQualifier(q.to_string()), span)
                    })?,
                    None => base_class,
                };
                match self
                    .lookup
                    .member(lookup_class, name)
                    .map_err(|e| TypeError::new(e.into(), span))?
                {
                    Found::Method { func, .. } => {
                        let fi = self.program.function(func);
                        // Dynamic dispatch applies to unqualified calls of
                        // virtual methods; `e.f()` on a by-value object has
                        // a known dynamic type, but the analyses treat it
                        // like dispatch for conservatism parity with the
                        // paper's call-graph construction when the receiver
                        // is a pointer/reference.
                        let via_indirection =
                            *arrow || matches!(base_ty.kind, TypeKind::Reference(_));
                        let is_virtual_dispatch =
                            fi.is_virtual && qualifier.is_none() && via_indirection;
                        let receiver_var = match &base.kind {
                            ExprKind::Ident(n) if self.lookup_local(n).is_some() => Some(n.clone()),
                            _ => None,
                        };
                        self.visitor.call(&CallEvent {
                            target: CallTarget::Method {
                                func,
                                receiver_class: base_class,
                                is_virtual_dispatch,
                                receiver_var,
                            },
                            arg_count: args.len(),
                            span,
                        });
                        Ok(fi.ret.clone())
                    }
                    Found::Data(m) => {
                        // Calling a data member: must be a function pointer.
                        let mty = self.program.class(m.class).members[m.index as usize]
                            .ty
                            .clone();
                        self.visitor.member_access(&MemberAccessEvent {
                            member: m,
                            object_class: base_class,
                            qualified: qualifier.is_some(),
                            is_store_target: false,
                            is_delete_operand: false,
                            address_taken: false,
                            span,
                        });
                        self.indirect_call(&mty, args.len(), span)
                    }
                }
            }
            _ => {
                let ty = self.expr(callee, Ctx::value())?;
                self.indirect_call(&ty, args.len(), span)
            }
        }
    }

    fn indirect_call(
        &mut self,
        ty: &Type,
        arg_count: usize,
        span: Span,
    ) -> Result<Type, TypeError> {
        let stripped = ty.strip_reference();
        let fn_ty: Option<&FnType> = match &stripped.kind {
            TypeKind::Function(ft) => Some(ft),
            TypeKind::Pointer(p) => match &p.kind {
                TypeKind::Function(ft) => Some(ft),
                _ => None,
            },
            _ => None,
        };
        match fn_ty {
            Some(ft) => {
                self.visitor.call(&CallEvent {
                    target: CallTarget::FunctionPointer,
                    arg_count,
                    span,
                });
                Ok(ft.ret.clone())
            }
            None => Err(TypeError::new(
                TypeErrorKind::NotCallable(ty.to_string()),
                span,
            )),
        }
    }
}

/// The function-pointer type of a named function.
fn fn_type_of(program: &Program, func: FuncId) -> Type {
    let f = program.function(func);
    Type::plain(TypeKind::Function(Box::new(FnType {
        ret: f.ret.clone(),
        params: f.params.iter().map(|p| p.ty.clone()).collect(),
    })))
    .pointer_to()
}

/// Result type of a binary operation under the usual arithmetic
/// conversions (simplified: comparisons yield `bool`, mixed float/int
/// yields the float, pointer arithmetic yields the pointer).
fn binary_result(op: ddm_cppfront::ast::BinaryOp, lt: &Type, rt: &Type) -> Type {
    use ddm_cppfront::ast::BinaryOp as B;
    match op {
        B::Lt | B::Gt | B::Le | B::Ge | B::Eq | B::Ne | B::LogAnd | B::LogOr => {
            Type::plain(TypeKind::Bool)
        }
        _ => {
            let l = lt.strip_reference();
            let r = rt.strip_reference();
            if matches!(l.kind, TypeKind::Pointer(_) | TypeKind::Array(..)) {
                return l.clone();
            }
            if matches!(r.kind, TypeKind::Pointer(_) | TypeKind::Array(..)) {
                return r.clone();
            }
            if matches!(l.kind, TypeKind::Double) || matches!(r.kind, TypeKind::Double) {
                return Type::plain(TypeKind::Double);
            }
            if matches!(l.kind, TypeKind::Float) || matches!(r.kind, TypeKind::Float) {
                return Type::plain(TypeKind::Float);
            }
            if matches!(l.kind, TypeKind::Long) || matches!(r.kind, TypeKind::Long) {
                return Type::plain(TypeKind::Long);
            }
            Type::int()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddm_cppfront::parse;

    /// Collects every event for assertions.
    #[derive(Default)]
    struct Collect {
        accesses: Vec<MemberAccessEvent>,
        calls: Vec<CallEvent>,
        casts: Vec<CastEvent>,
        instantiations: Vec<InstantiationEvent>,
        deletes: Vec<DeleteEvent>,
        ptr_members: Vec<MemberRef>,
        fn_addrs: Vec<FuncId>,
        sizeofs: Vec<Type>,
    }

    impl EventVisitor for Collect {
        fn member_access(&mut self, ev: &MemberAccessEvent) {
            self.accesses.push(ev.clone());
        }
        fn ptr_to_member(&mut self, m: MemberRef, _s: Span) {
            self.ptr_members.push(m);
        }
        fn call(&mut self, ev: &CallEvent) {
            self.calls.push(ev.clone());
        }
        fn address_of_function(&mut self, f: FuncId, _s: Span) {
            self.fn_addrs.push(f);
        }
        fn cast(&mut self, ev: &CastEvent) {
            self.casts.push(ev.clone());
        }
        fn sizeof_of(&mut self, t: &Type, _s: Span) {
            self.sizeofs.push(t.clone());
        }
        fn instantiation(&mut self, ev: &InstantiationEvent) {
            self.instantiations.push(ev.clone());
        }
        fn delete_of(&mut self, ev: &DeleteEvent) {
            self.deletes.push(ev.clone());
        }
    }

    fn walk_main(src: &str) -> (Program, Collect) {
        let tu = parse(src).expect("parse");
        let p = Program::build(&tu).expect("sema");
        let lk = MemberLookup::new(&p);
        let mut c = Collect::default();
        let main = p.main_function().expect("main");
        walk_function(&p, &lk, main, &mut c).expect("walk");
        (p, c)
    }

    #[test]
    fn read_access_is_reported() {
        let (p, c) = walk_main("class A { public: int x; }; int main() { A a; return a.x; }");
        assert_eq!(c.accesses.len(), 1);
        let a = p.class_by_name("A").unwrap();
        assert_eq!(c.accesses[0].member, MemberRef::new(a, 0));
        assert!(!c.accesses[0].is_store_target);
    }

    #[test]
    fn simple_store_is_flagged_as_store_target() {
        let (_, c) =
            walk_main("class A { public: int x; }; int main() { A a; a.x = 5; return 0; }");
        assert_eq!(c.accesses.len(), 1);
        assert!(c.accesses[0].is_store_target);
    }

    #[test]
    fn compound_assignment_reads_target() {
        let (_, c) =
            walk_main("class A { public: int x; }; int main() { A a; a.x += 5; return 0; }");
        assert_eq!(c.accesses.len(), 1);
        assert!(!c.accesses[0].is_store_target, "`+=` reads its target");
    }

    #[test]
    fn nested_member_path_reports_both_members() {
        let (p, c) = walk_main(
            "class N { public: int v; }; class M { public: N n; };\n\
             int main() { M m; return m.n.v; }",
        );
        assert_eq!(c.accesses.len(), 2);
        let n = p.class_by_name("N").unwrap();
        let m = p.class_by_name("M").unwrap();
        assert!(c.accesses.iter().any(|a| a.member.class == m));
        assert!(c.accesses.iter().any(|a| a.member.class == n));
    }

    #[test]
    fn store_through_path_reads_intermediate_writes_final() {
        let (p, c) = walk_main(
            "class N { public: int v; }; class M { public: N n; };\n\
             int main() { M m; m.n.v = 3; return 0; }",
        );
        let n = p.class_by_name("N").unwrap();
        let m = p.class_by_name("M").unwrap();
        let v_acc = c.accesses.iter().find(|a| a.member.class == n).unwrap();
        assert!(v_acc.is_store_target);
        let n_acc = c.accesses.iter().find(|a| a.member.class == m).unwrap();
        assert!(
            !n_acc.is_store_target,
            "path member is an access, not a store"
        );
    }

    #[test]
    fn address_of_member_is_flagged() {
        let (_, c) =
            walk_main("class A { public: int x; }; int main() { A a; int* p = &a.x; return *p; }");
        assert_eq!(c.accesses.len(), 1);
        assert!(c.accesses[0].address_taken);
    }

    #[test]
    fn implicit_this_member_read_in_method() {
        let tu = parse(
            "class A { public: int x; int f() { return x; } };\n\
             int main() { A a; return a.f(); }",
        )
        .unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let f = p.direct_method(a, "f").unwrap();
        let mut c = Collect::default();
        walk_function(&p, &lk, f, &mut c).unwrap();
        assert_eq!(c.accesses.len(), 1);
        assert_eq!(c.accesses[0].member, MemberRef::new(a, 0));
    }

    #[test]
    fn ctor_init_list_is_write_and_walks_args() {
        let tu = parse(
            "class A { public: int x; int y; A(int v) : x(v), y(0) { } };\n\
             int main() { A a(1); return 0; }",
        )
        .unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let a = p.class_by_name("A").unwrap();
        let ctor = p.constructors(a)[0];
        let mut c = Collect::default();
        walk_function(&p, &lk, ctor, &mut c).unwrap();
        // Member initializers are writes; no member-access events fire for
        // the targets, and `v`/`0` are not members.
        assert!(c.accesses.is_empty());
    }

    #[test]
    fn base_ctor_init_emits_call() {
        let tu = parse(
            "class A { public: int x; A(int v) { x = v; } };\n\
             class B : public A { public: B() : A(3) { } };\n\
             int main() { B b; return 0; }",
        )
        .unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let b = p.class_by_name("B").unwrap();
        let ctor = p.constructors(b)[0];
        let mut c = Collect::default();
        walk_function(&p, &lk, ctor, &mut c).unwrap();
        assert_eq!(c.calls.len(), 1);
        assert!(matches!(
            c.calls[0].target,
            CallTarget::Method {
                is_virtual_dispatch: false,
                ..
            }
        ));
    }

    #[test]
    fn virtual_call_through_pointer_is_dispatch() {
        let (p, c) = walk_main(
            "class A { public: virtual int f() { return 0; } };\n\
             class B : public A { public: virtual int f() { return 1; } };\n\
             int main() { B b; A* ap = &b; return ap->f(); }",
        );
        let call = c
            .calls
            .iter()
            .find(|ev| matches!(ev.target, CallTarget::Method { .. }))
            .unwrap();
        let CallTarget::Method {
            receiver_class,
            is_virtual_dispatch,
            ..
        } = &call.target
        else {
            unreachable!()
        };
        assert_eq!(*receiver_class, p.class_by_name("A").unwrap());
        assert!(*is_virtual_dispatch);
    }

    #[test]
    fn qualified_call_suppresses_dispatch() {
        let (_, c) = walk_main(
            "class A { public: virtual int f() { return 0; } };\n\
             class B : public A { public: virtual int f() { return 1; } };\n\
             int main() { B b; B* p = &b; return p->A::f(); }",
        );
        let call = c
            .calls
            .iter()
            .find(|ev| matches!(ev.target, CallTarget::Method { .. }))
            .unwrap();
        let CallTarget::Method {
            is_virtual_dispatch,
            ..
        } = &call.target
        else {
            unreachable!()
        };
        assert!(!*is_virtual_dispatch);
    }

    #[test]
    fn builtin_call_and_free_exemption() {
        let (_, c) = walk_main(
            "class A { public: int* buf; };\n\
             int main() { A a; print_int(3); free(a.buf); return 0; }",
        );
        assert_eq!(c.calls.len(), 2);
        assert!(matches!(
            c.calls[0].target,
            CallTarget::Builtin(Builtin::PrintInt)
        ));
        assert!(matches!(
            c.calls[1].target,
            CallTarget::Builtin(Builtin::Free)
        ));
        assert_eq!(c.accesses.len(), 1);
        assert!(c.accesses[0].is_delete_operand);
    }

    #[test]
    fn delete_member_operand_is_exempt() {
        let (_, c) = walk_main(
            "class Node { public: Node* next; };\n\
             int main() { Node n; delete n.next; return 0; }",
        );
        assert_eq!(c.accesses.len(), 1);
        assert!(c.accesses[0].is_delete_operand);
        assert_eq!(c.deletes.len(), 1);
        assert!(c.deletes[0].pointee_class.is_some());
    }

    #[test]
    fn new_and_local_instantiations_reported() {
        let (p, c) = walk_main(
            "class A { public: int x; A(int v) { x = v; } };\n\
             int main() { A a(1); A* p = new A(2); A* arr = new A[3]; delete p; delete[] arr; return 0; }",
        );
        let a = p.class_by_name("A").unwrap();
        assert_eq!(c.instantiations.len(), 3);
        assert_eq!(c.instantiations[0].kind, InstantiationKind::Local);
        assert_eq!(c.instantiations[1].kind, InstantiationKind::Heap);
        assert_eq!(c.instantiations[2].kind, InstantiationKind::HeapArray);
        assert!(c.instantiations.iter().all(|i| i.class == a));
        assert!(c.instantiations[0].ctor.is_some());
    }

    #[test]
    fn casts_report_operand_type() {
        let (_, c) = walk_main(
            "class A { public: int x; }; class B : public A { public: int y; };\n\
             int main() { A* a = new B(); B* b = (B*)a; return 0; }",
        );
        assert_eq!(c.casts.len(), 1);
        assert_eq!(c.casts[0].operand.to_string(), "A*");
        assert_eq!(c.casts[0].target.to_string(), "B*");
    }

    #[test]
    fn sizeof_reports_type_and_does_not_liven_operand() {
        let (_, c) = walk_main(
            "class A { public: int x; }; int main() { A a; int s = sizeof(a.x); return s + sizeof(A); }",
        );
        assert_eq!(c.sizeofs.len(), 2);
        assert!(
            c.accesses.is_empty(),
            "sizeof operands are unevaluated; no access events"
        );
    }

    #[test]
    fn function_address_taken_detected() {
        let (p, c) = walk_main(
            "int add(int a, int b) { return a + b; }\n\
             int main() { int (*fp)(int, int) = &add; return fp(1, 2); }",
        );
        let add = p.free_function("add").unwrap();
        assert_eq!(c.fn_addrs, vec![add]);
        assert!(c
            .calls
            .iter()
            .any(|ev| matches!(ev.target, CallTarget::FunctionPointer)));
    }

    #[test]
    fn bare_function_name_without_call_is_address_taken() {
        let (p, c) = walk_main(
            "int f() { return 1; }\n\
             int main() { int (*fp)() = f; return fp(); }",
        );
        assert_eq!(c.fn_addrs, vec![p.free_function("f").unwrap()]);
    }

    #[test]
    fn called_function_is_not_address_taken() {
        let (_, c) = walk_main("int f() { return 1; } int main() { return f(); }");
        assert!(c.fn_addrs.is_empty());
        assert!(matches!(c.calls[0].target, CallTarget::Free(_)));
    }

    #[test]
    fn ptr_to_member_event() {
        let (p, c) = walk_main(
            "class A { public: int m; };\n\
             int main() { int A::* pm = &A::m; A a; return a.*pm; }",
        );
        let a = p.class_by_name("A").unwrap();
        assert_eq!(c.ptr_members, vec![MemberRef::new(a, 0)]);
    }

    #[test]
    fn qualified_member_access_resolves_in_qualifier() {
        let (p, c) = walk_main(
            "class A { public: int m; }; class B : public A { public: int m; };\n\
             int main() { B b; return b.A::m; }",
        );
        let a = p.class_by_name("A").unwrap();
        assert_eq!(c.accesses.len(), 1);
        assert_eq!(c.accesses[0].member, MemberRef::new(a, 0));
        assert!(c.accesses[0].qualified);
    }

    #[test]
    fn global_initializers_walk() {
        let tu = parse(
            "class A { public: int x; };\n\
             A ga;\n\
             int gi = 5;\n\
             int main() { return gi; }",
        )
        .unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let mut c = Collect::default();
        walk_globals(&p, &lk, &mut c).unwrap();
        assert_eq!(c.instantiations.len(), 1);
        assert_eq!(c.instantiations[0].kind, InstantiationKind::Global);
    }

    #[test]
    fn type_errors_are_reported() {
        let tu = parse("int main() { return nope; }").unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        struct S;
        impl EventVisitor for S {}
        let err = walk_function(&p, &lk, p.main_function().unwrap(), &mut S).unwrap_err();
        assert!(matches!(err.kind(), TypeErrorKind::UnknownIdent(_)));

        let tu = parse("class A { public: int x; }; int main() { int y = 0; return y.x; }");
        let tu = tu.unwrap();
        let p = Program::build(&tu).unwrap();
        let lk = MemberLookup::new(&p);
        let err = walk_function(&p, &lk, p.main_function().unwrap(), &mut S).unwrap_err();
        assert!(matches!(err.kind(), TypeErrorKind::NotAClass(_)));
    }
}
